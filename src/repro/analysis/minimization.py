"""Root store minimization (the Section 8 related-work experiments).

Braun et al. found ~90% of roots go unused by an individual's browsing;
Smith et al. computed minimal root sets covering 99% of scanned
certificates.  This module reruns that analysis against the simulated
ecosystem: a deterministic Zipf-weighted traffic model assigns issuance
volume to each trusted root, and a greedy set cover finds the smallest
anchor set reaching a target coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRandom
from repro.errors import AnalysisError
from repro.store.snapshot import RootStoreSnapshot


@dataclass(frozen=True)
class TrafficModel:
    """Issuance volume per root: fingerprint -> weight (sums to 1)."""

    weights: tuple[tuple[str, float], ...]

    @property
    def as_dict(self) -> dict[str, float]:
        return dict(self.weights)


def zipf_traffic(
    snapshot: RootStoreSnapshot, *, seed: str = "traffic-v1", exponent: float = 2.0
) -> TrafficModel:
    """A Zipf-distributed traffic model over a store's TLS roots.

    Rank order is a deterministic shuffle of the store (so the heavy
    hitters are not biased by fingerprint sort order), mirroring the
    real ecosystem's concentration: a few CAs issue most certificates.
    """
    fingerprints = sorted(snapshot.tls_fingerprints())
    if not fingerprints:
        raise AnalysisError("store has no TLS-trusted roots")
    rng = DeterministicRandom(seed)
    rng.shuffle(fingerprints)
    raw = [1.0 / (rank + 1) ** exponent for rank in range(len(fingerprints))]
    total = sum(raw)
    return TrafficModel(
        weights=tuple((fp, weight / total) for fp, weight in zip(fingerprints, raw))
    )


@dataclass(frozen=True)
class MinimizationResult:
    """Greedy set cover output."""

    store_size: int
    selected: tuple[str, ...]
    coverage: float
    target: float

    @property
    def selected_count(self) -> int:
        return len(self.selected)

    @property
    def unused_fraction(self) -> float:
        """Braun et al.'s headline: the fraction of shipped roots not needed."""
        return 1.0 - self.selected_count / self.store_size if self.store_size else 0.0


def minimal_root_set(
    snapshot: RootStoreSnapshot, traffic: TrafficModel, *, target: float = 0.99
) -> MinimizationResult:
    """Smallest anchor subset whose traffic share reaches ``target``.

    With one root per observation this is exact (sort by weight); kept
    as an explicit greedy loop to document the general algorithm.
    """
    if not 0 < target <= 1:
        raise AnalysisError(f"coverage target out of range: {target}")
    store = snapshot.tls_fingerprints()
    weights = {fp: w for fp, w in traffic.weights if fp in store}
    selected: list[str] = []
    covered = 0.0
    for fp, weight in sorted(weights.items(), key=lambda kv: (-kv[1], kv[0])):
        if covered >= target:
            break
        selected.append(fp)
        covered += weight
    return MinimizationResult(
        store_size=len(store),
        selected=tuple(selected),
        coverage=covered,
        target=target,
    )


def coverage_curve(
    snapshot: RootStoreSnapshot, traffic: TrafficModel
) -> list[tuple[int, float]]:
    """(roots kept, traffic covered) points — the Smith et al. curve."""
    store = snapshot.tls_fingerprints()
    weights = sorted(
        (w for fp, w in traffic.weights if fp in store), reverse=True
    )
    points = []
    covered = 0.0
    for count, weight in enumerate(weights, start=1):
        covered += weight
        points.append((count, covered))
    return points
