"""The fingerprint incidence matrix — the vectorized analysis substrate.

The ordination (Section 4) needs every pairwise set comparison between
snapshot fingerprint sets.  Doing that per pair is O(n² · |store|) in
pure Python; at the paper's 619 snapshots it is already the dominant
cost, and at CT-log scale (Korzhitskii & Carlsson) it is intractable.

This module maps the snapshot list onto a single boolean *incidence
matrix* ``M`` of shape (snapshots × fingerprint-universe): ``M[i, k]``
is true when snapshot ``i`` contains fingerprint ``k``.  Every pairwise
statistic then falls out of one matrix product:

- intersections: ``M @ M.T`` (exact — counts are small integers, and
  float64 represents them and their quotients identically to Python's
  int/int division),
- set sizes: the diagonal of that product,
- unions: inclusion–exclusion, ``|A| + |B| − |A ∩ B|``.

:func:`jaccard_distances` and :func:`overlap_distances` reproduce the
per-pair formulas of :mod:`repro.analysis.jaccard` element-for-element
(including the empty-set conventions), which the equivalence tests
assert to 1e-12.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

import numpy as np

from repro.errors import AnalysisError
from repro.obs.instrument import stage_timer
from repro.store.purposes import TrustPurpose
from repro.store.snapshot import RootStoreSnapshot


@dataclass(frozen=True)
class IncidenceMatrix:
    """Snapshots × fingerprint-universe boolean membership matrix.

    Attributes:
        labels: (provider, taken_at, version) per row, in input order.
        fingerprints: the sorted fingerprint universe, one per column.
        matrix: boolean (len(labels), len(fingerprints)) array.
    """

    labels: tuple[tuple[str, date, str], ...]
    fingerprints: tuple[str, ...]
    matrix: np.ndarray

    def __post_init__(self):
        expected = (len(self.labels), len(self.fingerprints))
        if self.matrix.shape != expected:
            raise AnalysisError(
                f"incidence shape {self.matrix.shape} does not match {expected}"
            )

    @property
    def set_sizes(self) -> np.ndarray:
        """Per-snapshot fingerprint-set cardinality (int64 vector)."""
        return self.matrix.sum(axis=1)

    def row_set(self, index: int) -> frozenset[str]:
        """The fingerprint set of one snapshot, reconstructed from the row."""
        columns = np.flatnonzero(self.matrix[index])
        return frozenset(self.fingerprints[k] for k in columns)


def build_incidence(
    snapshots: list[RootStoreSnapshot],
    *,
    purpose: TrustPurpose | None = TrustPurpose.SERVER_AUTH,
) -> IncidenceMatrix:
    """Build the incidence matrix over ``snapshots``' fingerprint sets.

    The fingerprint universe is the sorted union across all snapshots,
    so column order is deterministic regardless of snapshot order.
    """
    if not snapshots:
        raise AnalysisError("no snapshots to index")
    with stage_timer(
        "analysis.incidence",
        "repro_analysis_stage_seconds",
        metric_labels={"stage": "incidence"},
        snapshots=len(snapshots),
    ):
        sets = [s.fingerprints(purpose) for s in snapshots]
        universe = sorted(frozenset().union(*sets))
        column = {fingerprint: k for k, fingerprint in enumerate(universe)}
        matrix = np.zeros((len(sets), len(universe)), dtype=bool)
        for row, fingerprints in enumerate(sets):
            if fingerprints:
                matrix[row, [column[f] for f in fingerprints]] = True
        labels = tuple((s.provider, s.taken_at, s.version) for s in snapshots)
        return IncidenceMatrix(labels=labels, fingerprints=tuple(universe), matrix=matrix)


def intersection_counts(incidence: IncidenceMatrix) -> np.ndarray:
    """|A ∩ B| for every snapshot pair, as an exact float64 matrix."""
    m = incidence.matrix.astype(np.float64)
    return m @ m.T


def jaccard_distances(incidence: IncidenceMatrix) -> np.ndarray:
    """The full Jaccard distance matrix, 1 − |A∩B| / |A∪B|.

    Two empty sets are at distance 0.0, matching
    :func:`repro.analysis.jaccard.jaccard_distance`.

    Peak memory is two (n, n) float64 buffers plus one boolean mask —
    the ``np.where`` chain this replaces allocated 3–4 extra float64
    temporaries, which at corpus scale was most of the working set.
    Every count is a small exact integer, so the in-place arithmetic is
    bit-identical to the expression form.
    """
    distances = intersection_counts(incidence)  # reused in place as the result
    sizes = distances.diagonal().copy()
    unions = np.add.outer(sizes, sizes)
    unions -= distances  # |A| + |B| − |A∩B|, in place
    empty = unions == 0.0  # both sets empty (intersection is 0 there too)
    np.maximum(unions, 1.0, out=unions)  # safe divisor; numerator is 0 where it mattered
    distances /= unions
    np.subtract(1.0, distances, out=distances)
    distances[empty] = 0.0
    np.fill_diagonal(distances, 0.0)
    return distances


def overlap_distances(incidence: IncidenceMatrix) -> np.ndarray:
    """The overlap-coefficient distance matrix, 1 − |A∩B| / min(|A|,|B|).

    When the smaller set is empty the distance is 0.0 for two empty
    sets and 1.0 otherwise, matching
    :func:`repro.analysis.jaccard.overlap_distance`.

    Same in-place discipline as :func:`jaccard_distances`: two (n, n)
    float64 buffers plus two boolean masks, element-wise identical to
    the expression form it replaces.
    """
    distances = intersection_counts(incidence)  # reused in place as the result
    sizes = distances.diagonal().copy()
    empty_row = sizes == 0.0  # length-n, not (n, n)
    smaller = np.minimum.outer(sizes, sizes)
    some_empty = smaller == 0.0
    both_empty = np.logical_and.outer(empty_row, empty_row)
    np.maximum(smaller, 1.0, out=smaller)
    distances /= smaller
    np.subtract(1.0, distances, out=distances)
    distances[some_empty] = 1.0
    distances[both_empty] = 0.0
    np.fill_diagonal(distances, 0.0)
    return distances
