"""Update agility: release cadence and projected incident response.

Section 7 asks for "future work around CA performance and root provider
performance".  This module supplies the provider-performance half: from
a snapshot history it measures the release cadence (inter-snapshot gap
distribution) and the *substantial* cadence (gaps between TLS-changing
releases), then projects how long an incident would sit unpatched —
and validates the projection against the measured Table 4 lags.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median

from repro.errors import AnalysisError
from repro.store.history import Dataset, StoreHistory


@dataclass(frozen=True)
class AgilityProfile:
    """One provider's release-cadence statistics (days)."""

    provider: str
    releases: int
    mean_gap: float
    median_gap: float
    max_gap: float
    substantial_releases: int
    mean_substantial_gap: float

    @property
    def projected_response_days(self) -> float:
        """Expected incident exposure under memoryless release timing.

        A removal landing uniformly at random inside a release cycle
        waits half a substantial gap on average before the next
        TLS-changing release can ship it.
        """
        return self.mean_substantial_gap / 2.0


def agility_profile(history: StoreHistory) -> AgilityProfile:
    """Cadence statistics for one provider."""
    dates = [s.taken_at for s in history]
    if len(dates) < 2:
        raise AnalysisError(f"{history.provider} has too few snapshots for cadence analysis")
    gaps = [(b - a).days for a, b in zip(dates, dates[1:])]

    substantial = history.substantial_snapshots()
    substantial_dates = [s.taken_at for s in substantial]
    if len(substantial_dates) >= 2:
        substantial_gaps = [
            (b - a).days for a, b in zip(substantial_dates, substantial_dates[1:])
        ]
    else:
        substantial_gaps = [float((dates[-1] - dates[0]).days)]

    return AgilityProfile(
        provider=history.provider,
        releases=len(dates),
        mean_gap=mean(gaps),
        median_gap=median(gaps),
        max_gap=float(max(gaps)),
        substantial_releases=len(substantial),
        mean_substantial_gap=mean(substantial_gaps),
    )


def agility_report(dataset: Dataset, providers: tuple[str, ...]) -> list[AgilityProfile]:
    """Cadence profiles, most agile (shortest substantial gap) first."""
    profiles = [
        agility_profile(dataset[p]) for p in providers if p in dataset and len(dataset[p]) >= 2
    ]
    profiles.sort(key=lambda p: p.mean_substantial_gap)
    return profiles


@dataclass(frozen=True)
class ProjectionCheck:
    """Projected vs. measured incident response for one provider."""

    provider: str
    projected_days: float
    measured_mean_lag: float
    incidents: int

    @property
    def proactive(self) -> bool:
        """The provider removed ahead of NSS on average (negative lag)."""
        return self.measured_mean_lag < 0

    @property
    def lag_dominated(self) -> bool:
        """Measured response is far above the cadence bound: the delay
        comes from copy lag / inattention, not from release scarcity."""
        return self.measured_mean_lag > 2 * self.projected_days


def projection_check(
    dataset: Dataset,
    provider: str,
    measured_lags: list[int],
) -> ProjectionCheck:
    """Compare the cadence projection with measured Table 4 lags."""
    profile = agility_profile(dataset[provider])
    if not measured_lags:
        raise AnalysisError(f"no measured lags for {provider}")
    return ProjectionCheck(
        provider=provider,
        projected_days=profile.projected_response_days,
        measured_mean_lag=mean(measured_lags),
        incidents=len(measured_lags),
    )
