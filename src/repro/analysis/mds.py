"""Metric multidimensional scaling (stress-majorization SMACOF).

A from-scratch numpy implementation of the algorithm behind
``sklearn.manifold.MDS(metric=True)``, which the paper uses for
Figure 1's ordination.  Also provides classical (Torgerson) MDS for the
ablation benchmark, the Kruskal stress-1 quality metric, and
:func:`landmark_mds` — the O(k² + nk) landmark/pivot variant that keeps
ordination tractable at corpus scales where full SMACOF's O(n²) per
iteration is intractable (see :mod:`repro.analysis.sparse` for the
matching distance substrate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.obs.instrument import stage_timer


@dataclass(frozen=True)
class MDSResult:
    """An embedding with the stress of exactly that embedding.

    Both stress numbers are measured on the *returned* point
    configuration — historically ``stress`` lagged the embedding by one
    Guttman step and ``stress1`` aliased raw stress outright; both are
    now recomputed on the final points before the result is built, so
    ``stress1 == kruskal_stress(delta, result.embedding)`` always holds.
    """

    embedding: np.ndarray  # (n, dims)
    stress: float  # raw stress of the embedding: sum (d_ij - delta_ij)^2 over i<j
    stress1: float  # Kruskal stress-1 of the embedding: sqrt(raw / sum d_ij^2)
    iterations: int
    converged: bool


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix of an (n, d) point set.

    Uses the Gram formulation ``||x−y||² = x·x + y·y − 2 x·y`` so peak
    memory is one (n, n) matrix instead of the (n, n, d) broadcast
    tensor the naive ``x[:,None,:] − x[None,:,:]`` form materializes —
    SMACOF calls this every iteration, so at n=619 snapshots the
    difference is the whole working set.  Cancellation can drive tiny
    squared distances a hair below zero; they are clamped before the
    square root and the diagonal is pinned to exactly 0.
    """
    squared_norms = np.einsum("ij,ij->i", points, points)
    gram = points @ points.T
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram
    np.maximum(squared, 0.0, out=squared)
    distances = np.sqrt(squared, out=squared)
    np.fill_diagonal(distances, 0.0)
    return distances


def _cross_point_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distances between two point sets, (len(a), len(b)).

    Same Gram trick as :func:`_pairwise_distances`, for the rectangular
    landmark-to-everything case."""
    a_norms = np.einsum("ij,ij->i", a, a)
    b_norms = np.einsum("ij,ij->i", b, b)
    squared = a_norms[:, None] + b_norms[None, :] - 2.0 * (a @ b.T)
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared, out=squared)


def _stress_pair(distances: np.ndarray, delta: np.ndarray) -> tuple[float, float]:
    """(raw stress, Kruskal stress-1) of one distance/dissimilarity pair."""
    raw = float(((distances - delta) ** 2).sum() / 2.0)
    denominator = float((distances**2).sum() / 2.0)
    stress1 = float(np.sqrt(raw / denominator)) if denominator > 0.0 else 0.0
    return raw, stress1


def _validate(dissimilarities: np.ndarray) -> np.ndarray:
    d = np.asarray(dissimilarities, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise AnalysisError(f"dissimilarity matrix must be square, got {d.shape}")
    if not np.allclose(d, d.T, atol=1e-9):
        raise AnalysisError("dissimilarity matrix must be symmetric")
    if (d < -1e-12).any():
        raise AnalysisError("dissimilarities must be non-negative")
    if not np.allclose(np.diag(d), 0.0, atol=1e-9):
        raise AnalysisError("dissimilarity diagonal must be zero")
    return d


def smacof(
    dissimilarities: np.ndarray,
    *,
    dims: int = 2,
    max_iterations: int = 300,
    tolerance: float = 1e-6,
    seed: int = 7,
    init: np.ndarray | None = None,
) -> MDSResult:
    """Stress-majorization MDS.

    Minimizes raw stress sum_{i<j} (||x_i - x_j|| - delta_ij)^2 via the
    Guttman transform.  Deterministic for a fixed seed.

    When ``init`` is not given the starting configuration is the
    classical (Torgerson) solution rather than a random one: on the
    full-corpus Jaccard matrix random starts left the 300-iteration run
    unconverged at a worse local minimum, while the spectral start
    converges in ~120 iterations to ~35% lower stress.  ``seed`` only
    matters for the random fallback used when the spectral start is
    degenerate (all eigenvalues non-positive).
    """
    delta = _validate(dissimilarities)
    n = delta.shape[0]
    if n < 2:
        raise AnalysisError("need at least two points to embed")

    with stage_timer(
        "analysis.smacof",
        "repro_analysis_stage_seconds",
        metric_labels={"stage": "smacof"},
        points=n,
        dims=dims,
    ):
        return _smacof_iterate(
            delta, n, dims=dims, max_iterations=max_iterations, tolerance=tolerance,
            seed=seed, init=init,
        )


def _smacof_iterate(
    delta: np.ndarray,
    n: int,
    *,
    dims: int,
    max_iterations: int,
    tolerance: float,
    seed: int,
    init: np.ndarray | None,
) -> MDSResult:
    if init is not None:
        points = np.asarray(init, dtype=float).copy()
    else:
        points = _torgerson_embedding(delta, dims)
        if not np.linalg.norm(points) > 0.0:
            # Degenerate spectral start (no positive eigenvalue to embed
            # along, e.g. an all-zero matrix): fall back to random.
            rng = np.random.default_rng(seed)
            points = rng.uniform(-0.5, 0.5, size=(n, dims))

    previous_stress = np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        distances = _pairwise_distances(points)
        # Raw stress over unordered pairs.
        stress = float(((distances - delta) ** 2).sum() / 2.0)

        # Guttman transform: X <- (1/n) B(X) X
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(distances > 1e-12, delta / distances, 0.0)
        b = -ratio
        np.fill_diagonal(b, 0.0)
        np.fill_diagonal(b, -b.sum(axis=1))
        points = b @ points / n

        # Convergence: the *relative* stress decrease over one Guttman
        # step fell below ``tolerance``.  The max(..., 1e-12) guard
        # keeps the test meaningful when stress is already ~0.
        if previous_stress - stress < tolerance * max(previous_stress, 1e-12):
            converged = True
            break
        previous_stress = stress

    # The loop measures stress *before* each Guttman step, so the last
    # measured value describes a configuration one step older than
    # ``points``.  Recompute on the returned embedding: the result's
    # stress must describe the result's points (the Guttman transform
    # is monotone, so this can only be lower than the lagged value).
    final_stress, final_stress1 = _stress_pair(_pairwise_distances(points), delta)
    return MDSResult(
        embedding=points,
        stress=final_stress,
        stress1=final_stress1,
        iterations=iteration,
        converged=converged,
    )


def _torgerson_embedding(delta: np.ndarray, dims: int) -> np.ndarray:
    """The classical-MDS point configuration for a validated matrix."""
    n = delta.shape[0]
    squared = delta**2
    centering = np.eye(n) - np.ones((n, n)) / n
    b = -0.5 * centering @ squared @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(b)
    order = np.argsort(eigenvalues)[::-1][:dims]
    values = np.clip(eigenvalues[order], 0.0, None)
    embedding = eigenvectors[:, order] * np.sqrt(values)[None, :]
    if embedding.shape[1] < dims:  # dims > n: pad flat coordinates
        pad = np.zeros((n, dims - embedding.shape[1]))
        embedding = np.hstack([embedding, pad])
    return embedding


def classical_mds(dissimilarities: np.ndarray, *, dims: int = 2) -> MDSResult:
    """Torgerson classical MDS (eigendecomposition of the doubly-centered
    squared-distance matrix).  The ablation baseline for SMACOF."""
    delta = _validate(dissimilarities)
    embedding = _torgerson_embedding(delta, dims)
    stress, stress1 = _stress_pair(_pairwise_distances(embedding), delta)
    return MDSResult(
        embedding=embedding, stress=stress, stress1=stress1, iterations=1, converged=True
    )


def kruskal_stress(dissimilarities: np.ndarray, embedding: np.ndarray) -> float:
    """Kruskal stress-1: sqrt(sum (d-delta)^2 / sum d^2) over pairs."""
    delta = _validate(dissimilarities)
    distances = _pairwise_distances(np.asarray(embedding, dtype=float))
    numerator = ((distances - delta) ** 2).sum() / 2.0
    denominator = (distances**2).sum() / 2.0
    if denominator == 0:
        return 0.0
    return float(np.sqrt(numerator / denominator))


@dataclass(frozen=True)
class LandmarkMDSResult:
    """A full-corpus embedding produced from k landmark rows only.

    ``cross_stress1`` is Kruskal stress-1 restricted to the
    landmark × point pair set — the only pairs whose true
    dissimilarities the landmark algorithm ever saw, and the quality
    number that stays computable at scales where the full pair set
    does not fit.  (Landmark self-pairs contribute zero to both sums,
    so including them is harmless.)
    """

    embedding: np.ndarray  # (n, dims), landmark rows pinned to their SMACOF positions
    landmark_indices: tuple[int, ...]
    landmark_result: MDSResult  # the full-SMACOF run over the k landmarks
    cross_stress1: float

    @property
    def dims(self) -> int:
        return self.embedding.shape[1]


def select_landmarks(n: int, k: int) -> tuple[int, ...]:
    """Evenly strided landmark indices — the zero-information fallback.

    :func:`repro.analysis.sparse.maxmin_landmarks` picks better-spread
    pivots when a sparse incidence is available; this exists for plain
    dissimilarity-matrix callers.
    """
    if k < 2:
        raise AnalysisError(f"need at least two landmarks, got {k}")
    if k > n:
        raise AnalysisError(f"cannot pick {k} landmarks from {n} points")
    stride = n / k
    indices = sorted({int(i * stride) for i in range(k)})
    return tuple(indices)


def landmark_mds(
    cross_dissimilarities: np.ndarray,
    landmark_indices,
    *,
    dims: int = 2,
    max_iterations: int = 300,
    tolerance: float = 1e-6,
    seed: int = 7,
) -> LandmarkMDSResult:
    """Landmark (pivot) MDS: embed k landmarks fully, triangulate the rest.

    ``cross_dissimilarities`` is the (k, n) matrix of dissimilarities
    from each landmark to every point; column ``landmark_indices[i]``
    of row ``i`` must be zero (a landmark is at distance 0 from
    itself).  The k × k landmark block is embedded with full SMACOF —
    O(k²) per iteration instead of O(n²) — and every other point is
    placed by distance-based triangulation against the embedded
    landmarks (the linearized least-squares system of de Silva &
    Tenenbaum's Landmark MDS, an O(nk) solve), then refined with
    fixed-landmark Guttman sweeps — O(nk) each — that majorize each
    point's stress against its cross-strip distances (the
    linearization alone crowds points toward the landmark centroid on
    non-Euclidean dissimilarities).  Landmark rows of the returned
    embedding are exactly the SMACOF positions.
    """
    cross = np.asarray(cross_dissimilarities, dtype=float)
    if cross.ndim != 2:
        raise AnalysisError(f"cross-dissimilarities must be 2-D, got {cross.shape}")
    landmarks = tuple(int(i) for i in landmark_indices)
    k, n = cross.shape
    if len(landmarks) != k:
        raise AnalysisError(
            f"{k} cross-dissimilarity rows but {len(landmarks)} landmark indices"
        )
    if k < 2:
        raise AnalysisError(f"need at least two landmarks, got {k}")
    if k > n:
        raise AnalysisError(f"more landmarks ({k}) than points ({n})")
    if len(set(landmarks)) != k:
        raise AnalysisError("landmark indices must be distinct")
    if any(i < 0 or i >= n for i in landmarks):
        raise AnalysisError(f"landmark index out of range for {n} points")
    if (cross < -1e-12).any():
        raise AnalysisError("dissimilarities must be non-negative")
    self_distances = cross[np.arange(k), list(landmarks)]
    # Distances computed via the Gram formulation carry sqrt-of-
    # cancellation noise (~1e-8) on self-pairs; tolerate that scale.
    tolerance_zero = 1e-7 * max(1.0, float(cross.max(initial=0.0)))
    if not np.allclose(self_distances, 0.0, atol=tolerance_zero):
        raise AnalysisError("each landmark must be at distance zero from itself")
    if self_distances.any():
        cross = cross.copy()
        cross[np.arange(k), list(landmarks)] = 0.0  # exact zeros for SMACOF

    with stage_timer(
        "analysis.landmark_mds",
        "repro_analysis_stage_seconds",
        metric_labels={"stage": "landmark_mds"},
        points=n,
        landmarks=k,
        dims=dims,
    ):
        landmark_delta = cross[:, list(landmarks)]
        landmark_result = smacof(
            landmark_delta,
            dims=dims,
            max_iterations=max_iterations,
            tolerance=tolerance,
            seed=seed,
        )
        embedding = _triangulate(landmark_result.embedding, cross)
        embedding[list(landmarks)] = landmark_result.embedding
        embedding = _refine_against_landmarks(
            landmark_result.embedding,
            embedding,
            cross,
            max_iterations=max_iterations,
            tolerance=tolerance,
        )
        embedding[list(landmarks)] = landmark_result.embedding
        distances = _cross_point_distances(landmark_result.embedding, embedding)
        _, cross_stress1 = _stress_pair(distances, cross)

    return LandmarkMDSResult(
        embedding=embedding,
        landmark_indices=landmarks,
        landmark_result=landmark_result,
        cross_stress1=cross_stress1,
    )


def _refine_against_landmarks(
    landmark_points: np.ndarray,
    points: np.ndarray,
    cross: np.ndarray,
    *,
    max_iterations: int,
    tolerance: float,
) -> np.ndarray:
    """Majorize each point's stress to the (fixed) landmarks.

    The linearized triangulation is exact only for Euclidean-consistent
    dissimilarities; on a jaccard geometry it crowds points toward the
    landmark centroid.  With the landmarks held fixed, the per-point
    Guttman update ``x_j ← (1/k) Σ_i [L_i + (δ_ij/e_ij)(x_j − L_i)]``
    monotonically decreases each point's raw stress against the cross
    strip, stays O(kn) per sweep, and decouples across points — one
    vectorized update moves all n at once.
    """
    k = landmark_points.shape[0]
    landmark_sum = landmark_points.sum(axis=0)
    points = points.copy()
    previous_stress = np.inf
    for _ in range(max_iterations):
        distances = _cross_point_distances(landmark_points, points)
        stress = float(((distances - cross) ** 2).sum())
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(distances > 1e-12, cross / distances, 0.0)
        points = (
            landmark_sum[None, :]
            + ratio.sum(axis=0)[:, None] * points
            - ratio.T @ landmark_points
        ) / k
        if previous_stress - stress < tolerance * max(previous_stress, 1e-12):
            break
        previous_stress = stress
    return points


def _triangulate(landmark_points: np.ndarray, cross: np.ndarray) -> np.ndarray:
    """Place every point from its distances to the embedded landmarks.

    Linearization of ``||x − L_i||² = d_i²``: subtracting the
    landmark-mean equation cancels the ``||x||²`` term, leaving the
    linear system ``2 (L_i − L̄) · (x − L̄) = (||L_i − L̄||² − m̄) −
    (d_i² − d̄²)`` solved for all points at once via the pseudo-inverse
    — exact when the dissimilarities are Euclidean-consistent, least
    squares otherwise.
    """
    center = landmark_points.mean(axis=0)
    centered = landmark_points - center  # (k, dims)
    norms = np.einsum("ij,ij->i", centered, centered)  # ||L_i - L̄||²
    squared = cross**2  # (k, n)
    rhs = (norms - norms.mean())[:, None] - (squared - squared.mean(axis=0)[None, :])
    pinv = np.linalg.pinv(2.0 * centered)  # (dims, k)
    return (pinv @ rhs).T + center
