"""Metric multidimensional scaling (stress-majorization SMACOF).

A from-scratch numpy implementation of the algorithm behind
``sklearn.manifold.MDS(metric=True)``, which the paper uses for
Figure 1's ordination.  Also provides classical (Torgerson) MDS for the
ablation benchmark and the Kruskal stress-1 quality metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.obs.instrument import stage_timer


@dataclass(frozen=True)
class MDSResult:
    """An embedding with its stress trajectory."""

    embedding: np.ndarray  # (n, dims)
    stress: float  # final raw stress: sum (d_ij - delta_ij)^2 over i<j
    iterations: int
    converged: bool

    @property
    def stress1(self) -> float:
        """Kruskal stress-1 of the final embedding (needs the original
        dissimilarities, so this is recomputed lazily by callers via
        :func:`kruskal_stress`); kept for API symmetry."""
        return self.stress


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix of an (n, d) point set.

    Uses the Gram formulation ``||x−y||² = x·x + y·y − 2 x·y`` so peak
    memory is one (n, n) matrix instead of the (n, n, d) broadcast
    tensor the naive ``x[:,None,:] − x[None,:,:]`` form materializes —
    SMACOF calls this every iteration, so at n=619 snapshots the
    difference is the whole working set.  Cancellation can drive tiny
    squared distances a hair below zero; they are clamped before the
    square root and the diagonal is pinned to exactly 0.
    """
    squared_norms = np.einsum("ij,ij->i", points, points)
    gram = points @ points.T
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram
    np.maximum(squared, 0.0, out=squared)
    distances = np.sqrt(squared, out=squared)
    np.fill_diagonal(distances, 0.0)
    return distances


def _validate(dissimilarities: np.ndarray) -> np.ndarray:
    d = np.asarray(dissimilarities, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise AnalysisError(f"dissimilarity matrix must be square, got {d.shape}")
    if not np.allclose(d, d.T, atol=1e-9):
        raise AnalysisError("dissimilarity matrix must be symmetric")
    if (d < -1e-12).any():
        raise AnalysisError("dissimilarities must be non-negative")
    if not np.allclose(np.diag(d), 0.0, atol=1e-9):
        raise AnalysisError("dissimilarity diagonal must be zero")
    return d


def smacof(
    dissimilarities: np.ndarray,
    *,
    dims: int = 2,
    max_iterations: int = 300,
    tolerance: float = 1e-6,
    seed: int = 7,
    init: np.ndarray | None = None,
) -> MDSResult:
    """Stress-majorization MDS.

    Minimizes raw stress sum_{i<j} (||x_i - x_j|| - delta_ij)^2 via the
    Guttman transform.  Deterministic for a fixed seed.

    When ``init`` is not given the starting configuration is the
    classical (Torgerson) solution rather than a random one: on the
    full-corpus Jaccard matrix random starts left the 300-iteration run
    unconverged at a worse local minimum, while the spectral start
    converges in ~120 iterations to ~35% lower stress.  ``seed`` only
    matters for the random fallback used when the spectral start is
    degenerate (all eigenvalues non-positive).
    """
    delta = _validate(dissimilarities)
    n = delta.shape[0]
    if n < 2:
        raise AnalysisError("need at least two points to embed")

    with stage_timer(
        "analysis.smacof",
        "repro_analysis_stage_seconds",
        metric_labels={"stage": "smacof"},
        points=n,
        dims=dims,
    ):
        return _smacof_iterate(
            delta, n, dims=dims, max_iterations=max_iterations, tolerance=tolerance,
            seed=seed, init=init,
        )


def _smacof_iterate(
    delta: np.ndarray,
    n: int,
    *,
    dims: int,
    max_iterations: int,
    tolerance: float,
    seed: int,
    init: np.ndarray | None,
) -> MDSResult:
    if init is not None:
        points = np.asarray(init, dtype=float).copy()
    else:
        points = _torgerson_embedding(delta, dims)
        if not np.linalg.norm(points) > 0.0:
            # Degenerate spectral start (no positive eigenvalue to embed
            # along, e.g. an all-zero matrix): fall back to random.
            rng = np.random.default_rng(seed)
            points = rng.uniform(-0.5, 0.5, size=(n, dims))

    previous_stress = np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        distances = _pairwise_distances(points)
        # Raw stress over unordered pairs.
        stress = float(((distances - delta) ** 2).sum() / 2.0)

        # Guttman transform: X <- (1/n) B(X) X
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(distances > 1e-12, delta / distances, 0.0)
        b = -ratio
        np.fill_diagonal(b, 0.0)
        np.fill_diagonal(b, -b.sum(axis=1))
        points = b @ points / n

        # Convergence: the *relative* stress decrease over one Guttman
        # step fell below ``tolerance``.  The stress recorded above was
        # measured before this iteration's transform, so on the breaking
        # iteration the returned embedding is one step newer than the
        # returned stress — the standard SMACOF accounting (sklearn's
        # ``MDS`` does the same).  The max(..., 1e-12) guard keeps the
        # test meaningful when stress is already ~0 (perfect embedding).
        if previous_stress - stress < tolerance * max(previous_stress, 1e-12):
            converged = True
            previous_stress = stress
            break
        previous_stress = stress

    return MDSResult(
        embedding=points,
        stress=float(previous_stress),
        iterations=iteration,
        converged=converged,
    )


def _torgerson_embedding(delta: np.ndarray, dims: int) -> np.ndarray:
    """The classical-MDS point configuration for a validated matrix."""
    n = delta.shape[0]
    squared = delta**2
    centering = np.eye(n) - np.ones((n, n)) / n
    b = -0.5 * centering @ squared @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(b)
    order = np.argsort(eigenvalues)[::-1][:dims]
    values = np.clip(eigenvalues[order], 0.0, None)
    embedding = eigenvectors[:, order] * np.sqrt(values)[None, :]
    if embedding.shape[1] < dims:  # dims > n: pad flat coordinates
        pad = np.zeros((n, dims - embedding.shape[1]))
        embedding = np.hstack([embedding, pad])
    return embedding


def classical_mds(dissimilarities: np.ndarray, *, dims: int = 2) -> MDSResult:
    """Torgerson classical MDS (eigendecomposition of the doubly-centered
    squared-distance matrix).  The ablation baseline for SMACOF."""
    delta = _validate(dissimilarities)
    embedding = _torgerson_embedding(delta, dims)
    distances = _pairwise_distances(embedding)
    stress = float(((distances - delta) ** 2).sum() / 2.0)
    return MDSResult(embedding=embedding, stress=stress, iterations=1, converged=True)


def kruskal_stress(dissimilarities: np.ndarray, embedding: np.ndarray) -> float:
    """Kruskal stress-1: sqrt(sum (d-delta)^2 / sum d^2) over pairs."""
    delta = _validate(dissimilarities)
    distances = _pairwise_distances(np.asarray(embedding, dtype=float))
    numerator = ((distances - delta) ** 2).sum() / 2.0
    denominator = (distances**2).sum() / 2.0
    if denominator == 0:
        return 0.0
    return float(np.sqrt(numerator / denominator))
