"""The inverted-pyramid ecosystem graph (Figure 2).

Builds a three-layer directed graph — user agents -> root store
providers -> root programs — with networkx, and computes the pyramid
statistics the paper reports: layer widths, family shares, and the
concentration of trust.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.store.provider import PROVIDERS
from repro.useragents.attribution import attribute, family_of
from repro.useragents.strings import parse


@dataclass(frozen=True)
class PyramidStats:
    """Figure 2's structural summary."""

    user_agents: int
    attributed_user_agents: int
    providers: int
    programs: int
    #: program key -> number of attributed UAs resting on it
    program_shares: dict[str, int]

    @property
    def inverted(self) -> bool:
        """The defining property: each layer is narrower than the last."""
        return self.user_agents > self.providers > self.programs

    def share(self, program: str) -> float:
        """Fraction of all user agents resting on one root program."""
        return self.program_shares.get(program, 0) / self.user_agents

    def majority_programs(self) -> list[str]:
        """Programs that together cover >50% of all user agents."""
        ranked = sorted(self.program_shares.items(), key=lambda kv: -kv[1])
        covered = 0
        result = []
        for program, count in ranked:
            result.append(program)
            covered += count
            if covered > self.user_agents / 2:
                break
        return result


def build_ecosystem_graph(user_agents: list[str]) -> nx.DiGraph:
    """The UA -> provider -> program graph."""
    graph = nx.DiGraph()
    for provider_key, provider in PROVIDERS.items():
        graph.add_node(f"provider:{provider_key}", layer="provider", label=provider.display_name)
        program = family_of(provider_key)
        graph.add_node(f"program:{program}", layer="program", label=PROVIDERS[program].display_name)
        graph.add_edge(f"provider:{provider_key}", f"program:{program}")

    for index, ua in enumerate(user_agents):
        parsed = parse(ua)
        node = f"ua:{index}:{parsed.agent}@{parsed.os}"
        graph.add_node(node, layer="user-agent", label=f"{parsed.agent} ({parsed.os})")
        provider = attribute(parsed)
        if provider is not None:
            graph.add_edge(node, f"provider:{provider}")
    return graph


def pyramid_stats(graph: nx.DiGraph) -> PyramidStats:
    """Layer widths and program shares from an ecosystem graph."""
    ua_nodes = [n for n, d in graph.nodes(data=True) if d.get("layer") == "user-agent"]
    provider_nodes = [n for n, d in graph.nodes(data=True) if d.get("layer") == "provider"]
    program_nodes = [n for n, d in graph.nodes(data=True) if d.get("layer") == "program"]

    shares: dict[str, int] = {}
    attributed = 0
    for ua in ua_nodes:
        successors = list(graph.successors(ua))
        if not successors:
            continue
        attributed += 1
        provider = successors[0]
        program = next(iter(graph.successors(provider)))
        key = program.removeprefix("program:")
        shares[key] = shares.get(key, 0) + 1

    return PyramidStats(
        user_agents=len(ua_nodes),
        attributed_user_agents=attributed,
        providers=len(provider_nodes),
        programs=len(program_nodes),
        program_shares=shares,
    )


def provider_reachability(graph: nx.DiGraph) -> dict[str, int]:
    """provider -> number of user agents that reach it (degree analysis)."""
    result: dict[str, int] = {}
    for node, data in graph.nodes(data=True):
        if data.get("layer") == "provider":
            key = node.removeprefix("provider:")
            result[key] = graph.in_degree(node)
    return result
