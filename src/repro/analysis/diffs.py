"""Derivative deviation taxonomy (Figure 4 and Section 6.2).

For every derivative snapshot we diff its TLS set against the NSS
version it copies (lineage-matched) and classify each deviation:

- ``symantec-distrust`` — fallout from NSS v53's partial distrust that
  bundle formats cannot express (premature removals, skipped removals).
- ``non-nss-root`` — roots that never sat in any root program.
- ``email-signing`` — NSS email-only roots conflated into TLS trust.
- ``custom-trust`` — everything else (proactive removals, re-adds).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from datetime import date
from typing import Callable, Protocol

from repro.analysis.lineage import match_history, substantial_versions
from repro.store.history import Dataset
from repro.store.purposes import TrustPurpose

#: fingerprint -> deviation category
Classifier = Callable[[str, str], str]

CATEGORY_SYMANTEC = "symantec-distrust"
CATEGORY_NON_NSS = "non-nss-root"
CATEGORY_EMAIL = "email-signing"
CATEGORY_CUSTOM = "custom-trust"

CATEGORIES = (CATEGORY_SYMANTEC, CATEGORY_NON_NSS, CATEGORY_EMAIL, CATEGORY_CUSTOM)


class _CorpusLike(Protocol):
    def spec_for_fingerprint(self, fingerprint: str): ...


def corpus_classifier(corpus: _CorpusLike) -> Classifier:
    """A classifier backed by the simulator's catalog metadata."""

    def classify(fingerprint: str, direction: str) -> str:
        spec = corpus.spec_for_fingerprint(fingerprint)
        if spec is None:
            return CATEGORY_CUSTOM
        if spec.has_tag("symantec") or spec.has_tag("nss-v53-removal"):
            return CATEGORY_SYMANTEC
        if spec.has_tag("non-nss"):
            return CATEGORY_NON_NSS
        if direction == "added" and TrustPurpose.SERVER_AUTH not in spec.purposes:
            return CATEGORY_EMAIL
        return CATEGORY_CUSTOM

    return classify


@dataclass(frozen=True)
class DeviationPoint:
    """One derivative snapshot's deviation from its matched NSS version."""

    provider: str
    taken_at: date
    matched_nss_version: str
    added: int
    removed: int
    added_by_category: dict[str, int]
    removed_by_category: dict[str, int]

    @property
    def total(self) -> int:
        return self.added + self.removed


@dataclass(frozen=True)
class DeviationSeries:
    """Figure 4's per-derivative deviation trajectory."""

    provider: str
    points: tuple[DeviationPoint, ...]

    def max_added(self) -> int:
        return max((p.added for p in self.points), default=0)

    def max_removed(self) -> int:
        return max((p.removed for p in self.points), default=0)

    def category_totals(self) -> dict[str, int]:
        """Aggregate deviation counts by category across the lifetime."""
        totals: Counter[str] = Counter()
        for point in self.points:
            totals.update(point.added_by_category)
            totals.update(point.removed_by_category)
        return dict(totals)

    def ever_deviated(self) -> bool:
        return any(p.total for p in self.points)


def deviation_series(
    dataset: Dataset, provider: str, classify: Classifier
) -> DeviationSeries:
    """Diff every snapshot of ``provider`` against its matched NSS version."""
    nss_history = dataset["nss"]
    versions = substantial_versions(nss_history)
    matches = match_history(dataset[provider], nss_history)

    points: list[DeviationPoint] = []
    for snapshot, match in zip(dataset[provider], matches):
        base = versions[match.matched_nss_index]
        derived = snapshot.tls_fingerprints()
        reference = base.tls_fingerprints()
        added = derived - reference
        removed = reference - derived
        added_categories: Counter[str] = Counter()
        for fp in added:
            added_categories[classify(fp, "added")] += 1
        removed_categories: Counter[str] = Counter()
        for fp in removed:
            removed_categories[classify(fp, "removed")] += 1
        points.append(
            DeviationPoint(
                provider=provider,
                taken_at=snapshot.taken_at,
                matched_nss_version=match.matched_nss_version,
                added=len(added),
                removed=len(removed),
                added_by_category=dict(added_categories),
                removed_by_category=dict(removed_categories),
            )
        )
    return DeviationSeries(provider=provider, points=tuple(points))


def deviation_report(
    dataset: Dataset, derivatives: tuple[str, ...], classify: Classifier
) -> list[DeviationSeries]:
    """Figure 4: deviation series for every derivative."""
    return [
        deviation_series(dataset, provider, classify)
        for provider in derivatives
        if provider in dataset
    ]
