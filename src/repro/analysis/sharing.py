"""Root sharing: how concentrated is trust across programs?

The abstract's "surprisingly condensed root store ecosystem" claim,
made quantitative: for a point in time, how many independent programs
trust each root (the sharing distribution), how much of each program's
store is shared with every other program (the overlap matrix), and how
both evolve.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from datetime import date

from repro.errors import AnalysisError
from repro.store.history import Dataset
from repro.store.purposes import TrustPurpose


@dataclass(frozen=True)
class SharingDistribution:
    """How many programs trust each root, at one point in time."""

    taken_at: date
    programs: tuple[str, ...]
    #: k -> number of roots TLS-trusted by exactly k of the programs
    by_degree: dict[int, int]

    @property
    def total_roots(self) -> int:
        return sum(self.by_degree.values())

    @property
    def universally_shared(self) -> int:
        """Roots every program trusts."""
        return self.by_degree.get(len(self.programs), 0)

    @property
    def singletons(self) -> int:
        """Roots only one program trusts."""
        return self.by_degree.get(1, 0)

    def shared_fraction(self, minimum_degree: int = 2) -> float:
        """Fraction of the root universe trusted by >= ``minimum_degree``
        programs."""
        if not self.total_roots:
            return 0.0
        shared = sum(count for k, count in self.by_degree.items() if k >= minimum_degree)
        return shared / self.total_roots


def sharing_distribution(
    dataset: Dataset,
    *,
    at: date,
    programs: tuple[str, ...] = ("nss", "apple", "microsoft", "java"),
) -> SharingDistribution:
    """The sharing distribution over the independent programs at ``at``."""
    degree: Counter[str] = Counter()
    active = []
    for program in programs:
        if program not in dataset:
            continue
        snapshot = dataset[program].at(at)
        if snapshot is None:
            continue
        active.append(program)
        for fp in snapshot.fingerprints(TrustPurpose.SERVER_AUTH):
            degree[fp] += 1
    if not active:
        raise AnalysisError(f"no program has a snapshot at {at}")
    by_degree: dict[int, int] = {}
    for count in degree.values():
        by_degree[count] = by_degree.get(count, 0) + 1
    return SharingDistribution(
        taken_at=at, programs=tuple(active), by_degree=by_degree
    )


@dataclass(frozen=True)
class OverlapMatrix:
    """Pairwise store overlap at a point in time."""

    taken_at: date
    programs: tuple[str, ...]
    #: (a, b) -> |A ∩ B| / |A|   (directional containment)
    containment: dict[tuple[str, str], float]

    def of(self, a: str, b: str) -> float:
        return self.containment[(a, b)]


def overlap_matrix(
    dataset: Dataset,
    *,
    at: date,
    programs: tuple[str, ...] = ("nss", "apple", "microsoft", "java"),
) -> OverlapMatrix:
    """Directional containment: what fraction of A's store B also trusts."""
    sets = {}
    for program in programs:
        if program in dataset:
            snapshot = dataset[program].at(at)
            if snapshot is not None:
                sets[program] = snapshot.fingerprints(TrustPurpose.SERVER_AUTH)
    if len(sets) < 2:
        raise AnalysisError(f"need at least two program snapshots at {at}")
    containment = {}
    for a, set_a in sets.items():
        for b, set_b in sets.items():
            if a == b:
                continue
            containment[(a, b)] = len(set_a & set_b) / len(set_a) if set_a else 0.0
    return OverlapMatrix(
        taken_at=at, programs=tuple(sets), containment=containment
    )


def sharing_timeline(
    dataset: Dataset,
    *,
    start: date,
    end: date,
    step_days: int = 365,
    programs: tuple[str, ...] = ("nss", "apple", "microsoft", "java"),
) -> list[SharingDistribution]:
    """Annual sharing distributions across a window."""
    from datetime import timedelta

    points = []
    cursor = start
    while cursor <= end:
        try:
            points.append(sharing_distribution(dataset, at=cursor, programs=programs))
        except AnalysisError:
            pass
        cursor += timedelta(days=step_days)
    return points
