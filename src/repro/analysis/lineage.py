"""Derivative lineage inference: which NSS version does a snapshot copy?

Because derivative root stores modify NSS and ship without provenance,
Section 6.1 matches each derivative snapshot to the NSS version at
minimum Jaccard distance.  ``match_history`` performs that matching;
tests validate it against the simulator's ground-truth version labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.analysis.jaccard import jaccard_distance
from repro.errors import AnalysisError
from repro.store.history import StoreHistory
from repro.store.snapshot import RootStoreSnapshot


@dataclass(frozen=True)
class LineageMatch:
    """One derivative snapshot matched to its closest NSS version."""

    provider: str
    taken_at: date
    version: str
    matched_nss_version: str
    matched_nss_date: date
    #: index of the matched version in the substantial-version sequence
    matched_nss_index: int
    distance: float


def substantial_versions(nss_history: StoreHistory) -> list[RootStoreSnapshot]:
    """NSS snapshots that changed the TLS set (Figure 3's y-axis)."""
    return nss_history.substantial_snapshots()


def match_snapshot(
    snapshot: RootStoreSnapshot,
    nss_versions: list[RootStoreSnapshot],
    *,
    no_future: bool = True,
) -> LineageMatch:
    """The closest NSS substantial version by Jaccard distance.

    ``no_future`` restricts candidates to NSS versions released on or
    before the derivative snapshot (a derivative cannot copy a version
    from the future); ties prefer the most recent candidate.
    """
    if not nss_versions:
        raise AnalysisError("no NSS versions to match against")
    target = snapshot.tls_fingerprints()
    best_index = None
    best_distance = None
    for index, candidate in enumerate(nss_versions):
        if no_future and candidate.taken_at > snapshot.taken_at:
            break
        d = jaccard_distance(target, candidate.tls_fingerprints())
        if best_distance is None or d <= best_distance:
            best_distance = d
            best_index = index
    if best_index is None:
        # Snapshot predates all NSS versions; match the earliest.
        best_index = 0
        best_distance = jaccard_distance(target, nss_versions[0].tls_fingerprints())
    matched = nss_versions[best_index]
    return LineageMatch(
        provider=snapshot.provider,
        taken_at=snapshot.taken_at,
        version=snapshot.version,
        matched_nss_version=matched.version,
        matched_nss_date=matched.taken_at,
        matched_nss_index=best_index,
        distance=float(best_distance),
    )


def match_history(
    derivative: StoreHistory,
    nss_history: StoreHistory,
    *,
    no_future: bool = True,
) -> list[LineageMatch]:
    """Match every snapshot of a derivative to its NSS ancestor."""
    versions = substantial_versions(nss_history)
    return [match_snapshot(s, versions, no_future=no_future) for s in derivative]


def lineage_accuracy(matches: list[LineageMatch]) -> float:
    """Fraction of matches whose inferred NSS version equals the
    ground-truth label the simulator stamped on the snapshot.

    Derivative snapshot versions carry the copied NSS version (possibly
    with a ``.patch`` suffix); exact-prefix agreement counts as correct.
    """
    if not matches:
        return 1.0
    correct = 0
    for match in matches:
        truth = match.version.split(".")
        inferred = match.matched_nss_version.split(".")
        if truth[:2] == inferred[:2]:
            correct += 1
    return correct / len(matches)
