"""Program-exclusive root analysis (Appendix B / Table 6).

For each independent root program, find the roots in its most recent
snapshot that are trusted for TLS server authentication there but were
*never* TLS-trusted by any other independent program.  The paper's
headline counts: NSS 1, Java 0, Apple 13, Microsoft 30.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.store.history import Dataset
from repro.store.purposes import TrustPurpose


@dataclass(frozen=True)
class ExclusiveRoot:
    """One program-exclusive root with report context."""

    program: str
    fingerprint: str
    common_name: str
    organization: str
    #: catalog provenance note when available (reason taxonomy)
    detail: str = ""


def _tls_trusted_ever(dataset: Dataset, program: str) -> frozenset[str]:
    """Every fingerprint the program has ever TLS-trusted."""
    result: set[str] = set()
    for snapshot in dataset[program]:
        result |= snapshot.fingerprints(TrustPurpose.SERVER_AUTH)
    return frozenset(result)


def exclusive_roots(
    dataset: Dataset,
    program: str,
    *,
    programs: tuple[str, ...] = ("apple", "java", "microsoft", "nss"),
    describe=None,
) -> list[ExclusiveRoot]:
    """The TLS-exclusive roots of ``program``'s latest snapshot.

    ``describe`` is an optional ``fingerprint -> detail string`` hook
    (the benches pass a catalog-backed lookup for the reason column).
    """
    others = [p for p in programs if p != program and p in dataset]
    foreign: set[str] = set()
    for other in others:
        foreign |= _tls_trusted_ever(dataset, other)

    latest = dataset[program].latest()
    result: list[ExclusiveRoot] = []
    for entry in latest.entries:
        if not entry.is_trusted_for(TrustPurpose.SERVER_AUTH):
            continue
        if entry.fingerprint in foreign:
            continue
        cert = entry.certificate
        result.append(
            ExclusiveRoot(
                program=program,
                fingerprint=entry.fingerprint,
                common_name=cert.subject.common_name or "",
                organization=cert.subject.organization or "",
                detail=describe(entry.fingerprint) if describe else "",
            )
        )
    result.sort(key=lambda r: (r.organization, r.common_name))
    return result


def exclusives_report(
    dataset: Dataset,
    *,
    programs: tuple[str, ...] = ("nss", "java", "apple", "microsoft"),
    describe=None,
) -> dict[str, list[ExclusiveRoot]]:
    """Table 6: exclusive roots for every independent program."""
    return {
        program: exclusive_roots(dataset, program, programs=tuple(sorted(programs)), describe=describe)
        for program in programs
        if program in dataset
    }
