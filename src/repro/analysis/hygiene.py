"""Root store hygiene metrics (Table 3).

Per program: average store size, average expired-root count per
snapshot, and the removal dates of the last trusted MD5-signed and
RSA<=1024-bit roots.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.store.history import Dataset, StoreHistory


@dataclass(frozen=True)
class HygieneRow:
    """One Table 3 row."""

    provider: str
    average_size: float
    average_expired: float
    #: first snapshot date with no trusted MD5 root (None = never had /
    #: still has at study end — disambiguated by ``md5_still_present``)
    md5_removal: date | None
    md5_still_present: bool
    weak_rsa_removal: date | None
    weak_rsa_still_present: bool


def _last_presence(
    history: StoreHistory, predicate
) -> tuple[date | None, bool]:
    """(date of first snapshot without any matching TLS-trusted root
    after one was present, still-present-at-end flag)."""
    last_with: date | None = None
    removal: date | None = None
    seen = False
    for snapshot in history:
        has = any(
            predicate(entry.certificate) for entry in snapshot.entries if entry.is_tls_trusted
        )
        if has:
            seen = True
            last_with = snapshot.taken_at
            removal = None
        elif seen and removal is None:
            removal = snapshot.taken_at
    still_present = seen and removal is None
    if not seen:
        return None, False
    _ = last_with
    return removal, still_present


def hygiene_row(history: StoreHistory) -> HygieneRow:
    """Compute all Table 3 metrics for one provider."""
    sizes = [len(s) for s in history]
    expired = [len(s.expired_entries()) for s in history]
    md5_removal, md5_present = _last_presence(
        history, lambda cert: cert.signature_digest == "md5"
    )
    weak_removal, weak_present = _last_presence(
        history, lambda cert: cert.key_type == "rsa" and cert.key_bits <= 1024
    )
    return HygieneRow(
        provider=history.provider,
        average_size=sum(sizes) / len(sizes) if sizes else 0.0,
        average_expired=sum(expired) / len(expired) if expired else 0.0,
        md5_removal=md5_removal,
        md5_still_present=md5_present,
        weak_rsa_removal=weak_removal,
        weak_rsa_still_present=weak_present,
    )


def hygiene_report(
    dataset: Dataset, programs: tuple[str, ...] = ("apple", "java", "microsoft", "nss")
) -> list[HygieneRow]:
    """Table 3 for the independent root programs."""
    return [hygiene_row(dataset[p]) for p in programs if p in dataset]


def rank_by_hygiene(rows: list[HygieneRow]) -> list[str]:
    """Order programs best-hygiene-first.

    The composite mirrors the paper's qualitative ranking ("NSS best,
    followed by Apple, and then Java/Microsoft"): earlier weak-crypto
    purges are better, and every lingering expired root counts roughly
    like a year of purge tardiness.
    """

    def score(row: HygieneRow) -> float:
        md5 = row.md5_removal or date(2100, 1, 1)
        weak = row.weak_rsa_removal or date(2100, 1, 1)
        if row.md5_still_present:
            md5 = date(2100, 1, 1)
        if row.weak_rsa_still_present:
            weak = date(2100, 1, 1)
        purge_mean = (md5.toordinal() + weak.toordinal()) / 2
        return purge_mean + 365.0 * row.average_expired

    return [row.provider for row in sorted(rows, key=score)]
