"""Sparse incidence + blocked distance products — the out-of-core substrate.

The dense boolean matrix of :mod:`repro.analysis.incidence` is
snapshots × fingerprint-universe; at the seeded 649-snapshot corpus it
is small, but the scaled populations of :mod:`repro.simulation.population`
(hundreds of derivative providers, tens of thousands of snapshots) blow
it up quadratically in the places that matter: the (n, n) float64
temporaries of the distance algebra and the O(n²)-per-iteration SMACOF
ordination.

This module keeps the exact same answers while bounding the working
set:

- :class:`SparseIncidence` stores the membership relation CSR-style —
  one ``int32`` column id per (snapshot, fingerprint) incidence, plus a
  row-pointer array — the same postings shape as the archive's
  persisted fingerprint index, a few percent of the dense matrix's
  footprint at real store densities.
- :func:`blocked_jaccard_distances` / :func:`blocked_overlap_distances`
  compute the full distance matrix tile by tile: at any instant only
  two (block × universe) slabs and one (block × block) tile are live
  beyond the output buffer.  Every intermediate count is a small exact
  integer, so the results are **element-wise identical** to the dense
  path (the equivalence tests assert 0.0 difference, not 1e-12).
- :func:`cross_distances` produces the (k, n) landmark-to-everything
  strip that :func:`repro.analysis.mds.landmark_mds` consumes, without
  ever forming an (n, n) matrix — the piece that keeps ordination
  linear in corpus size.
- :func:`maxmin_landmarks` picks well-spread pivot rows by greedy
  farthest-point traversal, one distance strip per landmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.analysis.incidence import IncidenceMatrix
from repro.errors import AnalysisError
from repro.obs.instrument import stage_timer
from repro.store.purposes import TrustPurpose
from repro.store.snapshot import RootStoreSnapshot

#: Default row-block height for the blocked products.  At typical
#: fingerprint-universe widths (a few thousand columns) a 512-row
#: float64 slab is ~10–20 MB — big enough for BLAS-shaped matmuls,
#: small enough that two slabs never rival the dense matrix.
DEFAULT_BLOCK_ROWS = 512


@dataclass(frozen=True)
class SparseIncidence:
    """CSR-style snapshots × fingerprints membership relation.

    Attributes:
        labels: (provider, taken_at, version) per row, in input order.
        fingerprints: the sorted fingerprint universe, one per column.
        indptr: int64 array of length ``n_rows + 1``; row ``i``'s
            column ids are ``indices[indptr[i]:indptr[i + 1]]``.
        indices: int32 column ids, sorted within each row.
    """

    labels: tuple[tuple[str, date, str], ...]
    fingerprints: tuple[str, ...]
    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self):
        if self.indptr.shape != (len(self.labels) + 1,):
            raise AnalysisError(
                f"indptr length {self.indptr.shape} does not match "
                f"{len(self.labels)} rows"
            )
        if int(self.indptr[-1]) != len(self.indices):
            raise AnalysisError(
                f"indptr final value {int(self.indptr[-1])} does not match "
                f"{len(self.indices)} stored incidences"
            )
        if len(self.indices) and int(self.indices.max()) >= len(self.fingerprints):
            raise AnalysisError("column id exceeds the fingerprint universe")

    # -- shape and size ----------------------------------------------------

    @property
    def n_rows(self) -> int:
        return len(self.labels)

    @property
    def n_cols(self) -> int:
        return len(self.fingerprints)

    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def nbytes(self) -> int:
        """Bytes held by the index arrays (the representation's footprint)."""
        return self.indptr.nbytes + self.indices.nbytes

    @property
    def set_sizes(self) -> np.ndarray:
        """Per-snapshot fingerprint-set cardinality (int64 vector)."""
        return np.diff(self.indptr)

    def row_set(self, index: int) -> frozenset[str]:
        """The fingerprint set of one snapshot, reconstructed from the row."""
        columns = self.indices[self.indptr[index] : self.indptr[index + 1]]
        return frozenset(self.fingerprints[int(k)] for k in columns)

    # -- dense interop -----------------------------------------------------

    def to_dense(self) -> IncidenceMatrix:
        """Materialize the dense boolean matrix (small corpora only)."""
        matrix = np.zeros((self.n_rows, self.n_cols), dtype=bool)
        row_ids = np.repeat(np.arange(self.n_rows), self.set_sizes)
        matrix[row_ids, self.indices] = True
        return IncidenceMatrix(
            labels=self.labels, fingerprints=self.fingerprints, matrix=matrix
        )

    def slab(self, start: int, stop: int) -> np.ndarray:
        """Rows ``start:stop`` densified as a float64 (block × universe) slab."""
        stop = min(stop, self.n_rows)
        width = stop - start
        slab = np.zeros((width, self.n_cols), dtype=np.float64)
        lo, hi = int(self.indptr[start]), int(self.indptr[stop])
        if hi > lo:
            segment_sizes = self.set_sizes[start:stop]
            rows = np.repeat(np.arange(width), segment_sizes)
            slab[rows, self.indices[lo:hi]] = 1.0
        return slab

    def rows_slab(self, rows: Sequence[int]) -> np.ndarray:
        """Arbitrary rows densified as a float64 (len(rows) × universe) slab."""
        slab = np.zeros((len(rows), self.n_cols), dtype=np.float64)
        for out_row, index in enumerate(rows):
            lo, hi = int(self.indptr[index]), int(self.indptr[index + 1])
            slab[out_row, self.indices[lo:hi]] = 1.0
        return slab


def sparse_from_sets(
    labels: Iterable[tuple[str, date, str]],
    sets: list[frozenset[str]],
) -> SparseIncidence:
    """Build a :class:`SparseIncidence` from per-snapshot fingerprint sets.

    The fingerprint universe is the sorted union across all sets, so
    column order is deterministic regardless of input order — identical
    to the dense builder's universe.
    """
    labels = tuple(labels)
    if len(labels) != len(sets):
        raise AnalysisError(f"{len(labels)} labels but {len(sets)} fingerprint sets")
    if not sets:
        raise AnalysisError("no snapshots to index")
    universe = sorted(frozenset().union(*sets))
    column = {fingerprint: k for k, fingerprint in enumerate(universe)}
    indptr = np.zeros(len(sets) + 1, dtype=np.int64)
    chunks: list[np.ndarray] = []
    for row, fingerprints in enumerate(sets):
        columns = np.sort(
            np.fromiter((column[f] for f in fingerprints), dtype=np.int32, count=len(fingerprints))
        )
        chunks.append(columns)
        indptr[row + 1] = indptr[row] + len(columns)
    indices = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int32)
    ).astype(np.int32, copy=False)
    return SparseIncidence(
        labels=labels, fingerprints=tuple(universe), indptr=indptr, indices=indices
    )


def build_sparse_incidence(
    snapshots: list[RootStoreSnapshot],
    *,
    purpose: TrustPurpose | None = TrustPurpose.SERVER_AUTH,
) -> SparseIncidence:
    """The sparse counterpart of :func:`repro.analysis.incidence.build_incidence`."""
    if not snapshots:
        raise AnalysisError("no snapshots to index")
    with stage_timer(
        "analysis.sparse_incidence",
        "repro_analysis_stage_seconds",
        metric_labels={"stage": "sparse_incidence"},
        snapshots=len(snapshots),
    ):
        labels = tuple((s.provider, s.taken_at, s.version) for s in snapshots)
        sets = [s.fingerprints(purpose) for s in snapshots]
        return sparse_from_sets(labels, sets)


# -- tile arithmetic (shared empty-set conventions) ------------------------


def _jaccard_tile(
    intersections: np.ndarray, sizes_a: np.ndarray, sizes_b: np.ndarray
) -> np.ndarray:
    """Jaccard distances for one tile, in place over the count tile.

    The exact op sequence of the dense :func:`jaccard_distances` — same
    integer-valued operands through the same instructions, so tiles are
    bit-identical to the corresponding dense sub-blocks.
    """
    unions = np.add.outer(sizes_a, sizes_b)
    unions -= intersections
    empty = unions == 0.0
    np.maximum(unions, 1.0, out=unions)
    intersections /= unions
    np.subtract(1.0, intersections, out=intersections)
    intersections[empty] = 0.0
    return intersections


def _overlap_tile(
    intersections: np.ndarray, sizes_a: np.ndarray, sizes_b: np.ndarray
) -> np.ndarray:
    """Overlap-coefficient distances for one tile, in place."""
    smaller = np.minimum.outer(sizes_a, sizes_b)
    some_empty = smaller == 0.0
    both_empty = np.logical_and.outer(sizes_a == 0.0, sizes_b == 0.0)
    np.maximum(smaller, 1.0, out=smaller)
    intersections /= smaller
    np.subtract(1.0, intersections, out=intersections)
    intersections[some_empty] = 1.0
    intersections[both_empty] = 0.0
    return intersections


_TILES: dict[str, Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]] = {
    "jaccard": _jaccard_tile,
    "overlap": _overlap_tile,
}


def _blocked_distances(
    sparse: SparseIncidence, metric: str, block_rows: int
) -> np.ndarray:
    if metric not in _TILES:
        raise AnalysisError(f"unknown metric {metric!r}")
    if block_rows < 1:
        raise AnalysisError(f"block_rows must be >= 1, got {block_rows}")
    tile_fn = _TILES[metric]
    n = sparse.n_rows
    sizes = sparse.set_sizes.astype(np.float64)
    out = np.empty((n, n), dtype=np.float64)
    starts = range(0, n, block_rows)
    for a0 in starts:
        a1 = min(a0 + block_rows, n)
        slab_a = sparse.slab(a0, a1)
        for b0 in range(a0, n, block_rows):
            b1 = min(b0 + block_rows, n)
            slab_b = slab_a if b0 == a0 else sparse.slab(b0, b1)
            tile = tile_fn(slab_a @ slab_b.T, sizes[a0:a1], sizes[b0:b1])
            out[a0:a1, b0:b1] = tile
            if b0 != a0:
                out[b0:b1, a0:a1] = tile.T
    np.fill_diagonal(out, 0.0)
    return out


def blocked_jaccard_distances(
    sparse: SparseIncidence, *, block_rows: int = DEFAULT_BLOCK_ROWS
) -> np.ndarray:
    """Full Jaccard distance matrix from the sparse incidence, tile by tile.

    Element-wise identical to
    ``jaccard_distances(sparse.to_dense())`` — same conventions, same
    exact integer counts — but never materializes more than two
    (block × universe) slabs of dense data beyond the output buffer.
    """
    with stage_timer(
        "analysis.blocked_distance",
        "repro_analysis_stage_seconds",
        metric_labels={"stage": "blocked_distance"},
        metric_name="jaccard",
        snapshots=sparse.n_rows,
    ):
        return _blocked_distances(sparse, "jaccard", block_rows)


def blocked_overlap_distances(
    sparse: SparseIncidence, *, block_rows: int = DEFAULT_BLOCK_ROWS
) -> np.ndarray:
    """Full overlap-coefficient distance matrix, tile by tile (see above)."""
    with stage_timer(
        "analysis.blocked_distance",
        "repro_analysis_stage_seconds",
        metric_labels={"stage": "blocked_distance"},
        metric_name="overlap",
        snapshots=sparse.n_rows,
    ):
        return _blocked_distances(sparse, "overlap", block_rows)


def cross_distances(
    sparse: SparseIncidence,
    rows: Sequence[int],
    *,
    metric: str = "jaccard",
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> np.ndarray:
    """Distances from the selected rows to **every** row: a (k, n) strip.

    This is the landmark-MDS input: k pivot rows against the whole
    corpus, computed per column-block so the working set is the
    (k × universe) pivot slab plus one (block × universe) slab — never
    an (n, n) matrix.  Row ``i`` equals row ``rows[i]`` of the full
    blocked matrix exactly.
    """
    if metric not in _TILES:
        raise AnalysisError(f"unknown metric {metric!r}")
    rows = [int(r) for r in rows]
    n = sparse.n_rows
    if any(r < 0 or r >= n for r in rows):
        raise AnalysisError(f"row index out of range for {n} rows")
    tile_fn = _TILES[metric]
    sizes = sparse.set_sizes.astype(np.float64)
    pivot_slab = sparse.rows_slab(rows)
    pivot_sizes = sizes[rows]
    out = np.empty((len(rows), n), dtype=np.float64)
    for b0 in range(0, n, block_rows):
        b1 = min(b0 + block_rows, n)
        slab_b = sparse.slab(b0, b1)
        out[:, b0:b1] = tile_fn(pivot_slab @ slab_b.T, pivot_sizes, sizes[b0:b1])
    for strip_row, index in enumerate(rows):
        out[strip_row, index] = 0.0  # the blocked matrix's zeroed diagonal
    return out


def maxmin_landmarks(
    sparse: SparseIncidence,
    k: int,
    *,
    metric: str = "jaccard",
    first: int = 0,
) -> tuple[int, ...]:
    """Greedy farthest-point (maxmin) landmark selection.

    Starting from row ``first``, repeatedly adds the row with the
    largest minimum distance to the rows already chosen (lowest index
    wins ties), the standard pivot heuristic for landmark MDS: k
    distance strips, no (n, n) matrix.  Deterministic.
    """
    n = sparse.n_rows
    if k < 2:
        raise AnalysisError(f"need at least two landmarks, got {k}")
    if k > n:
        raise AnalysisError(f"cannot pick {k} landmarks from {n} rows")
    if first < 0 or first >= n:
        raise AnalysisError(f"first landmark {first} out of range for {n} rows")
    chosen = [first]
    min_distance = cross_distances(sparse, [first], metric=metric)[0].copy()
    min_distance[first] = -1.0  # never re-chosen
    for _ in range(k - 1):
        candidate = int(np.argmax(min_distance))
        chosen.append(candidate)
        strip = cross_distances(sparse, [candidate], metric=metric)[0]
        np.minimum(min_distance, strip, out=min_distance)
        min_distance[candidate] = -1.0
    return tuple(sorted(chosen))
