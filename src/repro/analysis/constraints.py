"""Name-constraint inference (the CAge experiment, Section 8 related work).

Kasten et al.'s CAge observed that most CAs only ever issue for a few
TLDs and proposed inferring per-root name constraints from issuance
history: a root that has only signed ``.de`` names gains nothing from
the authority to sign ``.com``.  This module reruns that experiment on
the simulated ecosystem:

1. a deterministic issuance profile assigns each TLS root the TLD mix
   it issues for (a few global CAs, a long regional tail);
2. :func:`infer_constraints` derives per-root TLD constraint sets from
   an observation window;
3. :func:`attack_surface` quantifies the reduction: how much of the
   (root x TLD) impersonation surface the constraints eliminate, and
   how often legitimate future issuance would violate them.

The inferred sets convert directly into real X.509 NameConstraints
extensions via :func:`constraints_extension`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRandom
from repro.errors import AnalysisError
from repro.store.snapshot import RootStoreSnapshot
from repro.x509.extensions import Extension, NameConstraints

#: The TLD universe of the simulated web.
TLDS: tuple[str, ...] = (
    "com", "org", "net", "de", "fr", "uk", "jp", "cn", "ru", "br",
    "it", "es", "nl", "pl", "se", "ch", "tw", "kr", "in", "au",
)


@dataclass(frozen=True)
class IssuanceProfile:
    """Per-root issuance: fingerprint -> {tld: certificate count}."""

    issuance: tuple[tuple[str, tuple[tuple[str, int], ...]], ...]

    def tlds_for(self, fingerprint: str) -> frozenset[str]:
        for fp, rows in self.issuance:
            if fp == fingerprint:
                return frozenset(tld for tld, count in rows if count > 0)
        return frozenset()

    @property
    def roots(self) -> tuple[str, ...]:
        return tuple(fp for fp, _ in self.issuance)


def issuance_profile(
    snapshot: RootStoreSnapshot, *, seed: str = "issuance-v1", global_fraction: float = 0.15
) -> IssuanceProfile:
    """A deterministic issuance profile over a store's TLS roots.

    ~15% of roots are "global" CAs issuing across most TLDs; the rest
    are regional, issuing for 1-3 TLDs — the concentration CAge
    measured in real CT/scan data.
    """
    fingerprints = sorted(snapshot.tls_fingerprints())
    if not fingerprints:
        raise AnalysisError("store has no TLS-trusted roots")
    rng = DeterministicRandom(seed)
    profile = []
    for fp in fingerprints:
        fork = rng.fork(fp)
        if fork.random() < global_fraction:
            tlds = fork.sample(TLDS, fork.randint(12, len(TLDS)))
            volume = fork.randint(5_000, 50_000)
        else:
            tlds = fork.sample(TLDS, fork.randint(1, 3))
            volume = fork.randint(10, 2_000)
        rows = tuple(
            (tld, max(volume // (rank + 1), 1)) for rank, tld in enumerate(sorted(tlds))
        )
        profile.append((fp, rows))
    return IssuanceProfile(issuance=tuple(profile))


@dataclass(frozen=True)
class InferredConstraints:
    """CAge output: per-root permitted TLD sets."""

    permitted: tuple[tuple[str, frozenset[str]], ...]

    @property
    def as_dict(self) -> dict[str, frozenset[str]]:
        return dict(self.permitted)

    def allows(self, fingerprint: str, tld: str) -> bool:
        permitted = self.as_dict.get(fingerprint)
        return permitted is None or tld in permitted


def infer_constraints(
    profile: IssuanceProfile, *, minimum_observations: int = 1
) -> InferredConstraints:
    """Constrain each root to the TLDs it has been observed issuing for."""
    permitted = []
    for fp, rows in profile.issuance:
        observed = frozenset(tld for tld, count in rows if count >= minimum_observations)
        permitted.append((fp, observed))
    return InferredConstraints(permitted=tuple(permitted))


@dataclass(frozen=True)
class AttackSurface:
    """The CAge headline numbers."""

    roots: int
    tlds: int
    unconstrained_pairs: int
    constrained_pairs: int
    #: fraction of future legitimate issuance the constraints would block
    violation_rate: float

    @property
    def reduction(self) -> float:
        if not self.unconstrained_pairs:
            return 0.0
        return 1.0 - self.constrained_pairs / self.unconstrained_pairs


def attack_surface(
    snapshot: RootStoreSnapshot,
    constraints: InferredConstraints,
    *,
    future_profile: IssuanceProfile | None = None,
) -> AttackSurface:
    """Impersonation-surface reduction under the inferred constraints.

    Without constraints every TLS root can impersonate every TLD
    (roots x TLDs pairs).  With constraints each root covers only its
    permitted set.  When a ``future_profile`` is supplied, the fraction
    of its issuance falling outside the constraints measures breakage.
    """
    roots = sorted(snapshot.tls_fingerprints())
    permitted = constraints.as_dict
    constrained_pairs = sum(len(permitted.get(fp, frozenset(TLDS))) for fp in roots)

    violations = 0
    total = 0
    if future_profile is not None:
        for fp, rows in future_profile.issuance:
            for tld, count in rows:
                total += count
                if not constraints.allows(fp, tld):
                    violations += count
    return AttackSurface(
        roots=len(roots),
        tlds=len(TLDS),
        unconstrained_pairs=len(roots) * len(TLDS),
        constrained_pairs=constrained_pairs,
        violation_rate=violations / total if total else 0.0,
    )


def constraints_extension(permitted_tlds: frozenset[str]) -> Extension:
    """Render an inferred TLD set as a real NameConstraints extension."""
    return NameConstraints(
        permitted_dns=tuple(f".{tld}" for tld in sorted(permitted_tlds))
    ).to_extension()
