"""Derivative staleness: substantial-versions-behind over time (Figure 3).

For each derivative we build the step function "which NSS substantial
version does the derivative currently ship" (from lineage matching) and
compare it against "which substantial version is NSS currently at",
integrating the gap over the derivative's observation window.  The
result is the paper's "average substantial version staleness" — e.g.
Alpine 0.73 versions behind, Amazon Linux 4.83.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from datetime import date

from repro.analysis.lineage import LineageMatch, match_history, substantial_versions
from repro.errors import AnalysisError
from repro.store.history import Dataset, StoreHistory


@dataclass(frozen=True)
class StalenessSeries:
    """One derivative's staleness trajectory."""

    provider: str
    #: (date, versions_behind) step points, one per derivative snapshot
    points: tuple[tuple[date, float], ...]
    #: time-weighted mean versions-behind
    average: float
    #: fraction of observed time spent at least one version behind
    always_behind_fraction: float


def _nss_version_index_fn(nss_history: StoreHistory):
    """date -> index of NSS's current substantial version."""
    versions = substantial_versions(nss_history)
    dates = [v.taken_at for v in versions]

    def index_at(when: date) -> int:
        position = bisect_right(dates, when) - 1
        return max(position, 0)

    return index_at, versions


def staleness_series(
    derivative: StoreHistory, nss_history: StoreHistory
) -> StalenessSeries:
    """Integrate versions-behind over the derivative's lifetime."""
    matches = match_history(derivative, nss_history)
    if not matches:
        raise AnalysisError(f"no snapshots for {derivative.provider}")
    nss_index_at, _ = _nss_version_index_fn(nss_history)

    # Event dates: every derivative snapshot plus every NSS substantial
    # release inside the window (staleness grows at NSS releases too).
    _, versions = _nss_version_index_fn(nss_history)
    window_start = matches[0].taken_at
    window_end = derivative.last_date
    events: set[date] = {m.taken_at for m in matches}
    events.update(v.taken_at for v in versions if window_start <= v.taken_at <= window_end)
    timeline = sorted(events)

    def derivative_index_at(when: date) -> int:
        current = matches[0].matched_nss_index
        for match in matches:
            if match.taken_at <= when:
                current = match.matched_nss_index
            else:
                break
        return current

    points: list[tuple[date, float]] = []
    weighted = 0.0
    behind_days = 0.0
    total_days = 0.0
    for position, when in enumerate(timeline):
        behind = max(nss_index_at(when) - derivative_index_at(when), 0)
        points.append((when, float(behind)))
        if position + 1 < len(timeline):
            span = (timeline[position + 1] - when).days
        else:
            span = 0
        weighted += behind * span
        if behind >= 1:
            behind_days += span
        total_days += span

    average = weighted / total_days if total_days else 0.0
    behind_fraction = behind_days / total_days if total_days else 0.0
    return StalenessSeries(
        provider=derivative.provider,
        points=tuple(points),
        average=average,
        always_behind_fraction=behind_fraction,
    )


def staleness_report(
    dataset: Dataset, derivatives: tuple[str, ...]
) -> list[StalenessSeries]:
    """Figure 3's per-derivative staleness, sorted least stale first."""
    nss_history = dataset["nss"]
    series = [staleness_series(dataset[d], nss_history) for d in derivatives if d in dataset]
    series.sort(key=lambda s: s.average)
    return series


def matches_for_figure(dataset: Dataset, provider: str) -> list[LineageMatch]:
    """Raw lineage matches (the stepped lines of Figure 3)."""
    return match_history(dataset[provider], dataset["nss"])
