"""Certificate minting: RootSpec -> real, signed X.509 certificate.

Each catalog spec maps to exactly one certificate, minted once per
process and cached.  Keys come from the persistent
:class:`~repro.simulation.keypool.KeyPool`; serial numbers derive from
the slug so output is stable across runs and machines.
"""

from __future__ import annotations

import hashlib

from repro.asn1.oid import BR_ORGANIZATION_VALIDATED
from repro.simulation.keypool import KeyPool, shared_pool
from repro.simulation.model import RootSpec, as_utc
from repro.x509.builder import CertificateBuilder, PrivateKey
from repro.x509.certificate import Certificate
from repro.x509.extensions import CertificatePolicies
from repro.x509.name import Name


class Mint:
    """Builds and caches one certificate per catalog spec."""

    def __init__(self, pool: KeyPool | None = None):
        self._pool = pool if pool is not None else shared_pool()
        self._certs: dict[str, Certificate] = {}
        self._keys: dict[str, PrivateKey] = {}

    def key_for(self, spec: RootSpec) -> PrivateKey:
        key = self._keys.get(spec.slug)
        if key is None:
            if spec.key_kind == "rsa":
                key = self._pool.rsa(spec.slug, int(spec.key_param))
            elif spec.key_kind == "ec":
                key = self._pool.ec(spec.slug, str(spec.key_param))
            else:
                raise ValueError(f"unknown key kind {spec.key_kind!r} for {spec.slug}")
            self._keys[spec.slug] = key
        return key

    def certificate_for(self, spec: RootSpec) -> Certificate:
        cert = self._certs.get(spec.slug)
        if cert is None:
            cert = self._build(spec)
            self._certs[spec.slug] = cert
        return cert

    def mint_all(self, specs: list[RootSpec]) -> dict[str, Certificate]:
        """Mint every spec (populating the key pool), return slug->cert."""
        result = {spec.slug: self.certificate_for(spec) for spec in specs}
        self._pool.save()
        return result

    def _build(self, spec: RootSpec) -> Certificate:
        key = self.key_for(spec)
        serial = int.from_bytes(hashlib.sha256(spec.slug.encode()).digest()[:8], "big") | 1
        subject = Name.build(
            common_name=spec.common_name,
            organization=spec.organization,
            country=spec.country,
        )
        builder = (
            CertificateBuilder()
            .subject(subject)
            .serial(serial)
            .valid(as_utc(spec.not_before), as_utc(spec.not_after))
            .ca(True)
            .add_extension(
                CertificatePolicies(policy_oids=(BR_ORGANIZATION_VALIDATED,)).to_extension()
            )
        )
        return builder.self_sign(key, spec.digest)
