"""The CA incident registry (Tables 4 and 7 of the paper).

Every high/medium-severity NSS removal since 2010, with the response
dates each root store exhibited.  The simulator consumes this registry
to schedule removals; the analysis layer then *re-measures* the lags
from the generated snapshot histories, closing the loop.

Dates are the paper's published values.  ``None`` in a response map
means "still trusted at the end of the study"; absence means the
provider never carried the root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date


@dataclass(frozen=True)
class Incident:
    """One NSS removal event."""

    key: str
    severity: str  # "high" | "medium" | "low"
    nss_removal: date
    bugzilla_id: str
    description: str
    #: slugs of the catalog roots this incident removes
    root_slugs: tuple[str, ...]
    #: provider key -> trusted-until date (None = still trusted at study end)
    responses: dict[str, date | None] = field(default_factory=dict)

    def lag_from(self, when: date) -> int:
        """Days from the NSS removal to ``when`` (negative = earlier).

        The one place Table-4 lag arithmetic lives; the removal
        analysis and the scenario replay both call it.
        """
        return (when - self.nss_removal).days

    def response_lag(self, provider: str) -> int | None:
        """The provider's recorded removal lag vs. NSS, in days.

        ``None`` when the registry records no dated response — either
        the provider still trusted the roots at study end, or it never
        carried them at all.
        """
        response = self.responses.get(provider)
        if response is None:
            return None
        return self.lag_from(response)

    def as_scenario(
        self,
        *,
        providers: tuple[str, ...] | None = None,
        dates: tuple[date, ...] | None = None,
    ):
        """Replay this incident through the scenario engine.

        Compiles the registry's recorded response schedule into a
        :class:`~repro.scenario.model.Scenario`: one ``remove`` edit
        per (root, provider) on the date that provider acted (NSS on
        ``nss_removal``, every other store on its dated response).
        Providers with no dated response get no edit — they keep
        trusting, which is exactly the lag picture the engine then
        re-measures.
        """
        from repro.scenario.model import Edit, Scenario

        schedule: list[tuple[str, date]] = [("nss", self.nss_removal)]
        for provider, response in sorted(self.responses.items()):
            if response is not None:
                schedule.append((provider, response))
        edits = tuple(
            Edit(
                kind="remove",
                root=slug,
                effective=when,
                providers=(provider,),
                comment=f"{self.key}: {provider} removal",
            )
            for provider, when in schedule
            for slug in self.root_slugs
        )
        return Scenario(
            name=self.key,
            description=self.description,
            edits=edits,
            providers=providers,
            dates=dates,
        )


DIGINOTAR = Incident(
    key="diginotar",
    severity="high",
    nss_removal=date(2011, 10, 6),
    bugzilla_id="682927",
    description="DigiNotar compromise: forged certificates for high-profile sites",
    root_slugs=("diginotar-root",),
    responses={
        "microsoft": date(2011, 8, 30),
        "apple": date(2011, 10, 12),
        "debian": date(2011, 10, 22),
        "ubuntu": date(2011, 10, 22),
    },
)

CNNIC = Incident(
    key="cnnic",
    severity="high",
    nss_removal=date(2017, 7, 27),
    bugzilla_id="1380868",
    description="CNNIC removal after the MCS intermediate misissuance",
    root_slugs=("cnnic-root", "cnnic-ev-root"),
    responses={
        "apple": date(2015, 6, 30),  # preemptive removal + leaf whitelist
        "android": date(2017, 12, 5),
        "debian": date(2018, 4, 9),
        "ubuntu": date(2018, 4, 9),
        "nodejs": date(2018, 4, 24),
        "amazonlinux": date(2019, 2, 18),
        "microsoft": date(2020, 2, 26),
    },
)

STARTCOM = Incident(
    key="startcom",
    severity="high",
    nss_removal=date(2017, 11, 14),
    bugzilla_id="1392849",
    description="StartCom removal: stealth WoSign acquisition, shared issuance",
    root_slugs=("startcom-ca", "startcom-ca-g2", "startcom-ca-g3"),
    responses={
        "debian": date(2017, 7, 17),
        "ubuntu": date(2017, 7, 17),
        "microsoft": date(2017, 9, 22),
        "android": date(2017, 12, 5),
        "nodejs": date(2018, 4, 24),
        "amazonlinux": date(2019, 2, 18),
        "apple": None,  # one root still trusted (two revoked, none removed)
    },
)

WOSIGN = Incident(
    key="wosign",
    severity="high",
    nss_removal=date(2017, 11, 14),
    bugzilla_id="1387260",
    description="WoSign removal: backdated SHA-1 issuance, undisclosed acquisition",
    root_slugs=("wosign-ca", "wosign-ca-g2", "wosign-china", "wosign-ecc"),
    responses={
        "debian": date(2017, 7, 17),
        "ubuntu": date(2017, 7, 17),
        "microsoft": date(2017, 9, 22),
        "android": date(2017, 12, 5),
        "nodejs": date(2018, 4, 24),
        "amazonlinux": date(2019, 2, 18),
        # Apple never included WoSign roots.
    },
)

PROCERT = Incident(
    key="procert",
    severity="high",
    nss_removal=date(2017, 11, 14),
    bugzilla_id="1408080",
    description="PSPProcert removal after repeated transgressions",
    root_slugs=("pspprocert",),
    responses={
        "debian": date(2018, 4, 9),
        "ubuntu": date(2018, 4, 9),
        "nodejs": date(2018, 4, 24),
        "amazonlinux": date(2019, 2, 18),
        # Never in Apple, Microsoft, Java, or Android.
    },
)

CERTINOMIS = Incident(
    key="certinomis",
    severity="high",
    nss_removal=date(2019, 7, 5),
    bugzilla_id="1552374",
    description="Certinomis removal: cross-signed distrusted StartCom, delayed disclosure",
    root_slugs=("certinomis-root",),
    responses={
        "nodejs": date(2019, 10, 22),
        "alpine": date(2020, 3, 23),
        "debian": date(2020, 6, 1),
        "ubuntu": date(2020, 6, 1),
        "android": date(2020, 9, 7),
        "amazonlinux": date(2021, 3, 26),
        "apple": None,  # revoked via valid.apple.com 2021-01-01, never removed
        "microsoft": None,  # still trusted at study end
    },
)

#: Apple's valid.apple.com revocation date for the Certinomis root.
CERTINOMIS_APPLE_REVOKE = date(2021, 1, 1)

SYMANTEC_BATCH_1 = Incident(
    key="symantec-batch-1",
    severity="medium",
    nss_removal=date(2020, 6, 26),
    bugzilla_id="1618402",
    description="Symantec distrust: root certificates ready to be removed (first batch)",
    root_slugs=("symantec-class3-g1", "symantec-class3-g2", "symantec-class3-g3"),
)

TAIWAN_GRCA = Incident(
    key="taiwan-grca",
    severity="medium",
    nss_removal=date(2020, 9, 18),
    bugzilla_id="1656077",
    description="Taiwan Government Root CA misissuance",
    root_slugs=("taiwan-grca",),
)

SYMANTEC_BATCH_2 = Incident(
    key="symantec-batch-2",
    severity="medium",
    nss_removal=date(2020, 12, 11),
    bugzilla_id="1670769",
    description="Symantec distrust: root certificates ready to be removed (second batch)",
    root_slugs=tuple(f"symantec-legacy-{i}" for i in range(1, 11)),
)

#: All registered incidents, newest first (Table 7 ordering).
INCIDENTS: tuple[Incident, ...] = (
    CERTINOMIS,
    STARTCOM,
    PROCERT,
    WOSIGN,
    CNNIC,
    DIGINOTAR,
    SYMANTEC_BATCH_2,
    TAIWAN_GRCA,
    SYMANTEC_BATCH_1,
)

HIGH_SEVERITY: tuple[Incident, ...] = tuple(i for i in INCIDENTS if i.severity == "high")

#: NSS version 53 landed the server-distrust-after markings (Section 6.2).
SYMANTEC_DISTRUST_MARKING = date(2020, 5, 15)
#: The server-distrust-after value NSS stamped on Symantec roots.
SYMANTEC_DISTRUST_AFTER = date(2019, 4, 16)
#: Debian/Ubuntu removed 11 of 12 Symantec roots days after NSS v53 ...
DEBIAN_SYMANTEC_REMOVAL = date(2020, 6, 1)
#: ... then re-added them after the NuGet/user-complaint fallout.
DEBIAN_SYMANTEC_READD = date(2020, 7, 20)

#: TWCA (policy violations) and SK ID (CA request) also left in NSS v53;
#: NodeJS skipped that update and kept both.
TWCA_REMOVAL = date(2020, 6, 26)
SK_ID_REMOVAL = date(2020, 6, 26)


def symantec_phased_scenario(
    *,
    providers: tuple[str, ...] | None = None,
    dates: tuple[date, ...] | None = None,
):
    """The Symantec distrust as a phased scenario (Section 6.2's arc).

    Three waves over all thirteen Symantec roots: the NSS v53
    ``server-distrust-after`` marking (cutting off post-2019-04-16
    issuance while the roots stay shipped), then the two removal
    batches.  Running it against an archive reproduces the Table-7
    style picture: which providers lose which chains at each phase.
    """
    from repro.scenario.model import Edit, Scenario

    slugs = SYMANTEC_BATCH_1.root_slugs + SYMANTEC_BATCH_2.root_slugs
    edits = [
        Edit(
            kind="distrust-after",
            root=slug,
            effective=SYMANTEC_DISTRUST_MARKING,
            distrust_after=SYMANTEC_DISTRUST_AFTER,
            comment="NSS v53 server-distrust-after marking",
        )
        for slug in slugs
    ]
    for batch in (SYMANTEC_BATCH_1, SYMANTEC_BATCH_2):
        edits.extend(
            Edit(
                kind="remove",
                root=slug,
                effective=batch.nss_removal,
                comment=f"{batch.key} removal (bug {batch.bugzilla_id})",
            )
            for slug in batch.root_slugs
        )
    return Scenario(
        name="symantec-phased-removal",
        description=(
            "Symantec distrust replayed as a phased schedule: "
            "server-distrust-after marking, then two removal batches"
        ),
        edits=tuple(edits),
        providers=providers,
        dates=dates,
    )


def incident_by_key(key: str) -> Incident:
    for incident in INCIDENTS:
        if incident.key == key:
            return incident
    raise KeyError(f"unknown incident {key!r}")


def all_event_dates(provider: str) -> list[date]:
    """Every date on which ``provider`` reacted to an incident.

    Snapshot schedules must include these dates so removals surface in
    a snapshot taken exactly when the paper says they did.
    """
    dates: set[date] = set()
    for incident in INCIDENTS:
        if provider == "nss":
            dates.add(incident.nss_removal)
        response = incident.responses.get(provider)
        if response is not None:
            dates.add(response)
    return sorted(dates)
