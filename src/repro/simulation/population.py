"""Parameterized derivative-population synthesis — the 100× corpus.

"Certificate Root Stores: Unity or Disparity?" (PAPERS.md) argues the
trust-anchor ecosystem is far wider than the paper's ten providers:
container base images, IoT/embedded stores, language runtimes, forked
distros — each one effectively an NSS derivative with its own cadence,
lag, and abandonment story.  This module synthesizes that long tail.

:func:`synthesize_policies` derives hundreds of
:class:`~repro.simulation.derivatives.DerivativePolicy` variants
deterministically from the six seeded templates: every parameter
(cadence, lag, jitter, data window, email conflation, base freeze) is a
pure function of ``sha256(seed/index)``, so the same spec always yields
byte-identical timelines.  Policies run in *organic* mode — incident
responses emerge from copying NSS with lag, never from pinned dates —
and mint **no new certificates**: the population reuses the corpus
catalog, so generation cost is snapshot assembly, not RSA keygen.

:func:`synthesize_population` drives the derivative engine over those
policies and returns a :class:`~repro.store.history.Dataset` combining
the base corpus with the synthetic providers — tens of thousands of
snapshots, ready for archive ingest and the sparse analysis substrate
(:mod:`repro.analysis.sparse`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import timedelta

from repro.errors import SimulationError
from repro.obs.instrument import stage_timer
from repro.simulation.corpus import Corpus
from repro.simulation.derivatives import (
    ALPINE_POLICY,
    AMAZONLINUX_POLICY,
    ANDROID_POLICY,
    DEBIAN_POLICY,
    NODEJS_POLICY,
    UBUNTU_POLICY,
    DerivativePolicy,
    build_derivative_history,
)
from repro.store.history import Dataset, StoreHistory

#: Seed templates the synthetic policies are perturbed from.
POPULATION_TEMPLATES: tuple[DerivativePolicy, ...] = (
    DEBIAN_POLICY,
    UBUNTU_POLICY,
    NODEJS_POLICY,
    ANDROID_POLICY,
    AMAZONLINUX_POLICY,
    ALPINE_POLICY,
)

#: Ecosystem families the long tail is drawn from (naming only — the
#: behavioural parameters come from the template + digest).
POPULATION_FAMILIES: tuple[str, ...] = ("container", "iot", "runtime", "distro")

#: Providers get a synthetic-namespace prefix so they can never collide
#: with (or accidentally trigger the bespoke behaviours of) the real
#: seeded providers.
SYNTH_PREFIX = "synth"


@dataclass(frozen=True)
class PopulationSpec:
    """Knobs for one deterministic synthetic population."""

    #: number of synthetic derivative providers
    providers: int = 240
    #: namespace seed — vary to get a structurally different population
    seed: str = "repro-population-v1"
    #: slowest allowed release cadence, in days
    max_cadence_days: int = 200
    #: fastest allowed release cadence, in days
    min_cadence_days: int = 21

    def __post_init__(self):
        if self.providers < 1:
            raise SimulationError(f"population needs >= 1 provider, got {self.providers}")
        if not 1 <= self.min_cadence_days <= self.max_cadence_days:
            raise SimulationError(
                f"bad cadence bounds [{self.min_cadence_days}, {self.max_cadence_days}]"
            )


def _digest(spec: PopulationSpec, index: int) -> bytes:
    return hashlib.sha256(f"{spec.seed}/provider/{index}".encode()).digest()


def _word(digest: bytes, offset: int) -> int:
    return digest[offset] | (digest[offset + 1] << 8)


def synthesize_policy(spec: PopulationSpec, index: int) -> DerivativePolicy:
    """The ``index``-th synthetic policy of the population, deterministically.

    Every field is a pure function of ``sha256(seed/provider/index)``:

    - family and template: bytes 0–1,
    - cadence: bytes 2–3, uniform in the spec's cadence bounds,
    - lag and jitter: bytes 4–6 (10–250 and 0–59 days),
    - data window: bytes 7–10 shrink the template's window — start
      jitters forward up to 40%, end backward up to 20%, always leaving
      at least two cadence intervals,
    - email conflation: one in four providers keeps the template's
      conflation habit (byte 11),
    - base freeze: one in eight providers abandons its NSS base halfway
      through its window (byte 12) — the Alpine story, everywhere.

    Responses are always *organic* (no pinned incident dates) and no
    new certificates are minted: synthetic stores only recombine the
    corpus catalog.
    """
    digest = _digest(spec, index)
    family = POPULATION_FAMILIES[digest[0] % len(POPULATION_FAMILIES)]
    template = POPULATION_TEMPLATES[digest[1] % len(POPULATION_TEMPLATES)]

    cadence_span = spec.max_cadence_days - spec.min_cadence_days + 1
    cadence = spec.min_cadence_days + _word(digest, 2) % cadence_span
    lag = 10 + _word(digest, 4) % 241
    jitter = digest[6] % 60

    window = (template.data_end - template.data_start).days
    start_shift = _word(digest, 7) % max(1, (window * 2) // 5)
    end_shift = digest[9] % max(1, window // 5)
    data_start = template.data_start + timedelta(days=start_shift)
    data_end = template.data_end - timedelta(days=end_shift)
    if (data_end - data_start).days < 2 * cadence:
        # Degenerate shrink: fall back to the template's full window.
        data_start, data_end = template.data_start, template.data_end

    conflate = template.conflate_email_until if digest[11] % 4 == 0 else None
    base_freeze = None
    if digest[12] % 8 == 0:
        base_freeze = data_start + timedelta(days=(data_end - data_start).days // 2)

    return DerivativePolicy(
        key=f"{SYNTH_PREFIX}-{family}-{index:04d}",
        data_start=data_start,
        data_end=data_end,
        cadence_days=cadence,
        lag_days=lag,
        lag_jitter_days=jitter,
        conflate_email_until=conflate,
        base_freeze=base_freeze,
        organic_responses=True,
    )


def synthesize_policies(spec: PopulationSpec) -> list[DerivativePolicy]:
    """All of the population's policies, in index order."""
    return [synthesize_policy(spec, index) for index in range(spec.providers)]


def synthesize_population(
    corpus: Corpus,
    spec: PopulationSpec | None = None,
    *,
    include_base: bool = True,
) -> Dataset:
    """Drive the derivative engine over a synthetic policy population.

    Args:
        corpus: the seeded corpus providing the NSS history and the
            certificate catalog (no new certs are minted).
        spec: population knobs; defaults to :class:`PopulationSpec`.
        include_base: also carry the corpus' own ten providers into the
            returned dataset (the usual shape for archive ingest).

    Returns:
        A fresh :class:`Dataset`; the base histories are shared by
        reference (snapshots are immutable), the synthetic ones are new.
    """
    if spec is None:
        spec = PopulationSpec()
    with stage_timer(
        "simulation.population",
        "repro_simulation_stage_seconds",
        metric_labels={"stage": "population"},
        providers=spec.providers,
        seed=spec.seed,
    ):
        dataset = Dataset()
        if include_base:
            for provider in corpus.dataset.providers:
                dataset.add_history(corpus.dataset[provider])
        nss_history = corpus.dataset["nss"]
        for policy in synthesize_policies(spec):
            history = StoreHistory(policy.key)
            for snapshot in build_derivative_history(
                policy.key,
                nss_history,
                corpus.specs_by_slug,
                corpus.mint,
                policy=policy,
            ):
                history.add(snapshot)
            dataset.add_history(history)
        return dataset


def spec_for_snapshot_target(
    target_snapshots: int, *, seed: str = "repro-population-v1"
) -> PopulationSpec:
    """A spec sized so the synthetic tail alone clears ``target_snapshots``.

    Sized from the population's empirical mean of ~23 snapshots per
    provider (window/cadence both digest-uniform); the 20% margin
    absorbs seed-to-seed variance.  Callers that need an exact floor
    should still check :meth:`Dataset.total_snapshots`.
    """
    if target_snapshots < 1:
        raise SimulationError(f"target must be >= 1, got {target_snapshots}")
    providers = max(1, (target_snapshots * 12) // (23 * 10))
    return PopulationSpec(providers=providers, seed=seed)
