"""Simulation data model: root specifications and membership overrides.

The simulated ecosystem is *declarative*: a catalog of
:class:`RootSpec` records describes every root CA certificate that ever
existed in the simulated Web PKI — its cryptographic parameters, its
general trust purposes, which root programs carry it, and any
program-specific deviations (:class:`Override`).  Policy engines then
turn the catalog into per-program snapshot timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime, time, timezone

from repro.store.purposes import TrustPurpose

#: Shorthand purpose tuples used throughout the catalog.
TLS_ONLY = (TrustPurpose.SERVER_AUTH,)
TLS_EMAIL = (TrustPurpose.SERVER_AUTH, TrustPurpose.EMAIL_PROTECTION)
EMAIL_ONLY = (TrustPurpose.EMAIL_PROTECTION,)
ALL_PURPOSES = (
    TrustPurpose.SERVER_AUTH,
    TrustPurpose.EMAIL_PROTECTION,
    TrustPurpose.CODE_SIGNING,
)


def as_utc(day: date) -> datetime:
    """Midnight UTC of a calendar date (certificates need datetimes)."""
    return datetime.combine(day, time.min, tzinfo=timezone.utc)


@dataclass(frozen=True)
class Override:
    """Program-specific deviation from a root's default treatment.

    ``never`` excludes the root from the program entirely.  ``join`` and
    ``leave`` pin exact inclusion/removal dates (Table 4's response
    dates are expressed this way).  ``distrust_after`` plus
    ``distrust_from`` model NSS-style partial distrust: from
    ``distrust_from`` onward, the store marks the root with the given
    server-distrust-after date.  ``revoke_from`` models Apple's
    valid.apple.com channel: the root stays in the store but flips to
    DISTRUSTED.  ``purposes`` restricts trust purposes in that program.
    """

    join: date | None = None
    leave: date | None = None
    never: bool = False
    distrust_after: date | None = None
    distrust_from: date | None = None
    revoke_from: date | None = None
    purposes: tuple[TrustPurpose, ...] | None = None
    note: str = ""


@dataclass(frozen=True)
class RootSpec:
    """One root CA certificate in the simulated ecosystem."""

    slug: str
    common_name: str
    organization: str
    country: str
    #: "rsa" or "ec"
    key_kind: str
    #: modulus bits for RSA, curve name for EC
    key_param: int | str
    #: signature digest: "md5", "sha1", "sha256"
    digest: str
    not_before: date
    lifetime_years: int
    #: what the CA is generally trusted for (programs may restrict further)
    purposes: tuple[TrustPurpose, ...] = TLS_EMAIL
    #: program keys that include this root by default
    programs: tuple[str, ...] = ()
    overrides: dict[str, Override] = field(default_factory=dict)
    tags: frozenset[str] = frozenset()
    #: free-text provenance note (surfaces in Table 6 reproductions)
    note: str = ""

    @property
    def not_after(self) -> date:
        """Expiry date (simple year arithmetic, clamped for Feb 29)."""
        try:
            return self.not_before.replace(year=self.not_before.year + self.lifetime_years)
        except ValueError:  # Feb 29 in a non-leap target year
            return self.not_before.replace(month=2, day=28, year=self.not_before.year + self.lifetime_years)

    def override_for(self, program: str) -> Override:
        return self.overrides.get(program, _NO_OVERRIDE)

    def in_program(self, program: str) -> bool:
        """Whether this root is slated for a program at all."""
        override = self.override_for(program)
        if override.never:
            return False
        return program in self.programs or program in self.overrides

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags


_NO_OVERRIDE = Override()


def month_add(day: date, months: int) -> date:
    """Shift a date by whole months, clamping the day-of-month."""
    month_index = day.year * 12 + (day.month - 1) + months
    year, month = divmod(month_index, 12)
    month += 1
    clamp = min(
        day.day,
        [31, 29 if year % 4 == 0 and (year % 100 != 0 or year % 400 == 0) else 28,
         31, 30, 31, 30, 31, 31, 30, 31, 30, 31][month - 1],
    )
    return date(year, month, clamp)


def months_between(start: date, end: date) -> float:
    """Fractional months from start to end (used for cadence math)."""
    return (end - start).days / 30.4375
