"""The synthetic Web-PKI ecosystem generator.

Substitutes for the paper's scraped historical data (see DESIGN.md §2):
a declarative CA catalog (:mod:`repro.simulation.catalog`), incident
registry (:mod:`repro.simulation.incidents`), program policy engines
(:mod:`repro.simulation.programs`), derivative copying engines
(:mod:`repro.simulation.derivatives`), and the corpus driver
(:mod:`repro.simulation.corpus`).
"""

from repro.simulation.catalog import PROGRAMS, build_catalog, catalog_by_slug
from repro.simulation.corpus import Corpus, default_corpus, generate_corpus
from repro.simulation.incidents import HIGH_SEVERITY, INCIDENTS, Incident, incident_by_key
from repro.simulation.keypool import KeyPool, shared_pool
from repro.simulation.minting import Mint
from repro.simulation.model import Override, RootSpec, month_add, months_between
from repro.simulation.programs import POLICIES, ProgramPolicy, compute_membership
from repro.simulation.derivatives import DERIVATIVE_POLICIES, DerivativePolicy
from repro.simulation.population import (
    POPULATION_FAMILIES,
    POPULATION_TEMPLATES,
    PopulationSpec,
    spec_for_snapshot_target,
    synthesize_policies,
    synthesize_policy,
    synthesize_population,
)

__all__ = [
    "Corpus",
    "DERIVATIVE_POLICIES",
    "DerivativePolicy",
    "HIGH_SEVERITY",
    "INCIDENTS",
    "Incident",
    "KeyPool",
    "Mint",
    "Override",
    "POLICIES",
    "POPULATION_FAMILIES",
    "POPULATION_TEMPLATES",
    "PROGRAMS",
    "PopulationSpec",
    "ProgramPolicy",
    "RootSpec",
    "build_catalog",
    "catalog_by_slug",
    "compute_membership",
    "default_corpus",
    "generate_corpus",
    "incident_by_key",
    "month_add",
    "months_between",
    "shared_pool",
    "spec_for_snapshot_target",
    "synthesize_policies",
    "synthesize_policy",
    "synthesize_population",
]
