"""NSS-derivative root store behaviour.

Derivatives copy NSS with provider-specific lag, then deviate in the
ways Section 6 catalogs: multi-purpose conflation of email-only roots,
roots shipped outside any program, early/late incident responses,
Symantec-distrust fallout, and ad-hoc re-additions.  Derivative
formats cannot express partial distrust, so the copied entries are
flattened to plain bundle trust — the design limitation at the heart of
the paper's Section 6.2.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import date, timedelta

from repro.simulation import incidents
from repro.simulation.minting import Mint
from repro.simulation.model import RootSpec
from repro.store.entry import TrustEntry
from repro.store.history import StoreHistory
from repro.store.purposes import BUNDLE_PURPOSES, TrustLevel, TrustPurpose
from repro.store.snapshot import RootStoreSnapshot


@dataclass(frozen=True)
class DerivativePolicy:
    """Update behaviour of one NSS derivative."""

    key: str
    data_start: date
    data_end: date
    #: days between routine releases
    cadence_days: int
    #: how far behind NSS the copied state is, in days
    lag_days: int
    #: deterministic jitter added to the lag, in days (0..jitter)
    lag_jitter_days: int = 0
    #: include NSS email-only roots as TLS-trusted until this date
    conflate_email_until: date | None = None
    #: never refresh the NSS base past this date (Alpine froze pre-v53)
    base_freeze: date | None = None
    #: counterfactual mode: let incident responses emerge purely from
    #: copying NSS with lag instead of pinning the documented dates
    organic_responses: bool = False


DEBIAN_POLICY = DerivativePolicy(
    key="debian",
    data_start=date(2005, 5, 15),
    data_end=date(2021, 1, 15),
    cadence_days=150,
    lag_days=75,
    lag_jitter_days=50,
    conflate_email_until=date(2017, 3, 1),
)

UBUNTU_POLICY = DerivativePolicy(
    key="ubuntu",
    data_start=date(2003, 10, 15),
    data_end=date(2021, 1, 15),
    cadence_days=170,
    lag_days=75,
    lag_jitter_days=50,
    conflate_email_until=date(2017, 3, 1),
)

NODEJS_POLICY = DerivativePolicy(
    key="nodejs",
    data_start=date(2015, 1, 15),
    data_end=date(2021, 4, 15),
    cadence_days=145,
    lag_days=90,
    lag_jitter_days=50,
)

ANDROID_POLICY = DerivativePolicy(
    key="android",
    data_start=date(2016, 8, 15),
    data_end=date(2020, 12, 15),
    cadence_days=115,
    lag_days=190,
    lag_jitter_days=90,
)

AMAZONLINUX_POLICY = DerivativePolicy(
    key="amazonlinux",
    data_start=date(2016, 10, 15),
    data_end=date(2021, 3, 26),
    cadence_days=38,
    lag_days=150,
    lag_jitter_days=60,
)

ALPINE_POLICY = DerivativePolicy(
    key="alpine",
    data_start=date(2019, 3, 15),
    data_end=date(2021, 4, 15),
    cadence_days=19,
    lag_days=25,
    lag_jitter_days=20,
    conflate_email_until=date(2020, 2, 1),
    # Alpine tracked NSS tightly but never took the late-2020 updates,
    # postponing the bulk of the Symantec distrust (10 of 13 roots
    # still trusted at its last snapshot).
    base_freeze=date(2020, 11, 1),
)

DERIVATIVE_POLICIES: dict[str, DerivativePolicy] = {
    p.key: p
    for p in (
        DEBIAN_POLICY,
        UBUNTU_POLICY,
        NODEJS_POLICY,
        ANDROID_POLICY,
        AMAZONLINUX_POLICY,
        ALPINE_POLICY,
    )
}

#: Roots NodeJS preserved by skipping the NSS v53 update (Section 6.2).
_NODEJS_PRESERVED = tuple(
    list(incidents.SYMANTEC_BATCH_1.root_slugs)
    + list(incidents.SYMANTEC_BATCH_2.root_slugs)
    + ["twca-root", "sk-id-root"]
)

#: The Symantec roots Debian/Ubuntu removed prematurely (11 of 12 — they
#: curiously retained GeoTrust Universal CA 2, symantec-legacy-1 here).
_DEBIAN_SYMANTEC_REMOVED = tuple(
    slug
    for slug in (
        list(incidents.SYMANTEC_BATCH_1.root_slugs) + list(incidents.SYMANTEC_BATCH_2.root_slugs)
    )
    if slug != "symantec-legacy-1"
)

#: Android never carried these roots at all.
_ANDROID_NEVER = ("pspprocert", "cnnic-ev-root")

#: Alpine manually removed the expired AddTrust root without updating NSS.
ALPINE_ADDTRUST_REMOVAL = date(2020, 6, 15)
ADDTRUST_SLUG = "addtrust-legacy"

#: Amazon Linux custom re-addition windows (Section 6.2).
AMAZON_WEAK_READD_END = date(2018, 12, 15)
AMAZON_EXPIRED_READD = (date(2018, 3, 1), date(2018, 9, 15))
AMAZON_THAWTE_WINDOW = (date(2016, 10, 15), date(2020, 12, 20))

#: NodeJS ValiCert re-add window.
NODEJS_VALICERT_WINDOW = (date(2015, 1, 15), date(2018, 4, 24))

#: Debian/Ubuntu shipped their 19 non-program roots until mid-2015.
DEBIAN_NONNSS_END = date(2015, 6, 1)


def derivative_schedule(policy: DerivativePolicy) -> list[date]:
    """Routine cadence dates plus every incident-response date."""
    dates: set[date] = set()
    cursor = policy.data_start
    while cursor <= policy.data_end:
        dates.add(cursor)
        cursor = cursor + timedelta(days=policy.cadence_days)
    dates.add(policy.data_end)
    for event in incidents.all_event_dates(policy.key):
        if policy.data_start <= event <= policy.data_end:
            dates.add(event)
    if policy.key in ("debian", "ubuntu"):
        dates.add(incidents.DEBIAN_SYMANTEC_REMOVAL)
        dates.add(incidents.DEBIAN_SYMANTEC_READD)
        if policy.conflate_email_until:
            dates.add(policy.conflate_email_until)
    if policy.key == "alpine":
        dates.add(ALPINE_ADDTRUST_REMOVAL)
        if policy.conflate_email_until:
            dates.add(policy.conflate_email_until)
    if policy.key == "amazonlinux":
        dates.add(AMAZON_WEAK_READD_END)
        dates.update(AMAZON_EXPIRED_READD)
    return sorted(d for d in dates if policy.data_start <= d <= policy.data_end)


def _lag_for(policy: DerivativePolicy, when: date) -> int:
    """Deterministic per-release lag (base + jitter)."""
    if not policy.lag_jitter_days:
        return policy.lag_days
    digest = hashlib.sha256(f"{policy.key}/{when.isoformat()}".encode()).digest()
    return policy.lag_days + digest[0] % (policy.lag_jitter_days + 1)


def _bundle_entry(cert, purposes=BUNDLE_PURPOSES) -> TrustEntry:
    return TrustEntry.make(
        cert, purposes={purpose: TrustLevel.TRUSTED for purpose in purposes}
    )


def build_derivative_history(
    provider: str,
    nss_history: StoreHistory,
    specs_by_slug: dict[str, RootSpec],
    mint: Mint,
    *,
    policy: DerivativePolicy | None = None,
) -> list[RootStoreSnapshot]:
    """Generate one derivative's snapshot timeline from the NSS history.

    ``policy`` overrides the registered behaviour — the counterfactual
    hook ("what if Amazon Linux copied NSS with half the lag?") used by
    the lag-sensitivity ablation.
    """
    if policy is None:
        policy = DERIVATIVE_POLICIES[provider]
    slug_fingerprint = {
        slug: mint.certificate_for(spec).fingerprint_sha256
        for slug, spec in specs_by_slug.items()
    }
    fingerprint_slug = {fp: slug for slug, fp in slug_fingerprint.items()}

    # Incident bookkeeping is only consulted when responses are pinned;
    # organic (and synthetic-population) providers skip the precompute.
    nss_first_seen: dict[str, date] = {}
    responses: dict[str, date] = {}
    if not policy.organic_responses:
        # First NSS appearance per fingerprint, for incident force-inclusion.
        for snapshot in nss_history:
            for fp in snapshot.fingerprints():
                nss_first_seen.setdefault(fp, snapshot.taken_at)
        # Incident-response removal dates for this provider.
        for incident in incidents.INCIDENTS:
            response = incident.responses.get(provider)
            if response is not None:
                for slug in incident.root_slugs:
                    responses[slug] = response

    # Flattened-entry cache: every copied root gets the identical plain
    # bundle entry, so build it once per certificate instead of once per
    # (snapshot, certificate) — the hot allocation at population scale.
    bundle_cache: dict[str, TrustEntry] = {}

    snapshots: list[RootStoreSnapshot] = []
    for when in derivative_schedule(policy):
        base_date = when - timedelta(days=_lag_for(policy, when))
        if policy.base_freeze is not None:
            base_date = min(base_date, policy.base_freeze)
        base = nss_history.at(base_date)
        if base is None:
            base = nss_history.snapshots[0]

        conflating = (
            policy.conflate_email_until is not None and when < policy.conflate_email_until
        )
        members: dict[str, TrustEntry] = {}
        for entry in base.entries:
            include = entry.is_tls_trusted
            if conflating and entry.is_trusted_for(TrustPurpose.EMAIL_PROTECTION):
                include = True
            if include:
                flattened = bundle_cache.get(entry.fingerprint)
                if flattened is None:
                    flattened = _bundle_entry(entry.certificate)
                    bundle_cache[entry.fingerprint] = flattened
                members[entry.fingerprint] = flattened

        if not policy.organic_responses:
            _apply_incident_windows(
                provider, when, members, responses, slug_fingerprint, nss_first_seen, mint, specs_by_slug
            )
        _apply_custom_behaviour(policy, when, members, specs_by_slug, slug_fingerprint, mint)

        # 'Never carried' exclusions run last so nothing re-adds them.
        if provider == "android":
            for slug in _ANDROID_NEVER:
                members.pop(slug_fingerprint.get(slug, ""), None)

        snapshots.append(
            RootStoreSnapshot.build(provider, when, base.version, members.values())
        )
    _ = fingerprint_slug
    return snapshots


def _apply_incident_windows(
    provider: str,
    when: date,
    members: dict[str, TrustEntry],
    responses: dict[str, date],
    slug_fingerprint: dict[str, str],
    nss_first_seen: dict[str, date],
    mint: Mint,
    specs_by_slug: dict[str, RootSpec],
) -> None:
    """Pin incident roots to the provider's documented response window."""
    for slug, removal in responses.items():
        fp = slug_fingerprint.get(slug)
        if fp is None:
            continue
        if when >= removal:
            members.pop(fp, None)
        else:
            first = nss_first_seen.get(fp)
            if first is not None and first <= when and fp not in members:
                members[fp] = _bundle_entry(mint.certificate_for(specs_by_slug[slug]))


def _apply_custom_behaviour(
    policy: DerivativePolicy,
    when: date,
    members: dict[str, TrustEntry],
    specs_by_slug: dict[str, RootSpec],
    slug_fingerprint: dict[str, str],
    mint: Mint,
) -> None:
    """The provider-specific bespoke modifications of Section 6.2."""
    provider = policy.key

    def add(slug: str) -> None:
        spec = specs_by_slug.get(slug)
        if spec is not None:
            members[slug_fingerprint[slug]] = _bundle_entry(mint.certificate_for(spec))

    def remove(slug: str) -> None:
        members.pop(slug_fingerprint.get(slug, ""), None)

    if provider in ("debian", "ubuntu"):
        # 19 roots outside any root program, shipped 2005-2015.
        if when < DEBIAN_NONNSS_END:
            for slug, spec in specs_by_slug.items():
                if spec.has_tag("debian-custom"):
                    add(slug)
        # Premature Symantec removal, then the complaint-driven re-add.
        if incidents.DEBIAN_SYMANTEC_REMOVAL <= when < incidents.DEBIAN_SYMANTEC_READD:
            for slug in _DEBIAN_SYMANTEC_REMOVED:
                remove(slug)

    elif provider == "nodejs":
        if NODEJS_VALICERT_WINDOW[0] <= when < NODEJS_VALICERT_WINDOW[1]:
            add("valicert-root")
        # Skipped NSS v53: Symantec, TWCA, and SK ID persist.
        for slug in _NODEJS_PRESERVED:
            spec = specs_by_slug.get(slug)
            if spec is None:
                continue
            override = spec.override_for("nss")
            if override.leave is not None and when >= override.leave:
                add(slug)

    elif provider == "amazonlinux":
        if AMAZON_THAWTE_WINDOW[0] <= when < AMAZON_THAWTE_WINDOW[1]:
            add("thawte-premium-server")
        if when < AMAZON_WEAK_READD_END:
            # Re-added the 1024-bit roots NSS purged in 2015-10.
            for slug, spec in specs_by_slug.items():
                if (
                    spec.has_tag("common")
                    and spec.key_kind == "rsa"
                    and int(spec.key_param) <= 1024
                    and spec.not_after > when
                ):
                    add(slug)
        if AMAZON_EXPIRED_READD[0] <= when < AMAZON_EXPIRED_READD[1]:
            # A brief batch of expired / CA-requested-removal re-adds.
            readded = 0
            for slug in sorted(specs_by_slug):
                spec = specs_by_slug[slug]
                if spec.has_tag("era-a") and spec.not_after < when and readded < 13:
                    add(slug)
                    readded += 1

    elif provider == "alpine":
        if when >= ALPINE_ADDTRUST_REMOVAL:
            remove(ADDTRUST_SLUG)
