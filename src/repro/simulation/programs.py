"""Root program policy engines.

Turns the declarative catalog into per-program membership windows and
snapshot timelines.  Each program has a policy tuned to the paper's
observed behaviour: NSS purges weak crypto early and drops expired
roots fast; Microsoft purges late and retains expired roots for years;
Apple sits between; Java runs a small, slow store.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import date, timedelta

from repro.simulation import incidents
from repro.simulation.minting import Mint
from repro.simulation.model import ALL_PURPOSES, Override, RootSpec, as_utc, month_add
from repro.store.entry import TrustEntry
from repro.store.purposes import TrustLevel, TrustPurpose
from repro.store.snapshot import RootStoreSnapshot


@dataclass(frozen=True)
class ProgramPolicy:
    """Operational parameters of one independent root program."""

    key: str
    data_start: date
    data_end: date
    #: months between routine snapshots (ignored when schedule is explicit)
    cadence_months: int
    #: base months between a root's creation and this program's inclusion
    adoption_delay_months: int
    #: date all MD5-signed roots are purged (None = not during study)
    md5_purge: date | None
    #: date all RSA<=1024 roots are purged
    weak_rsa_purge: date | None
    #: how long an expired root lingers before removal
    expired_retention_days: int
    #: Apple ships multi-purpose trust by default (Section 5.2)
    default_all_purposes: bool = False
    #: explicit snapshot dates (Java's seven releases)
    explicit_schedule: tuple[date, ...] = ()
    #: date ranges with no releases (Apple's 2012-2014 stagnation)
    freeze_ranges: tuple[tuple[date, date], ...] = ()
    #: fraction (percent) of routine snapshots skipped, deterministically
    skip_percent: int = 0


NSS_POLICY = ProgramPolicy(
    key="nss",
    data_start=date(2000, 10, 15),
    data_end=date(2021, 5, 15),
    cadence_months=1,
    adoption_delay_months=2,
    md5_purge=date(2016, 2, 1),
    weak_rsa_purge=date(2015, 10, 1),
    expired_retention_days=60,
    skip_percent=10,
)

APPLE_POLICY = ProgramPolicy(
    key="apple",
    data_start=date(2002, 8, 15),
    data_end=date(2021, 2, 15),
    cadence_months=2,
    adoption_delay_months=7,
    md5_purge=date(2016, 9, 1),
    weak_rsa_purge=date(2015, 9, 1),
    expired_retention_days=500,
    default_all_purposes=True,
    freeze_ranges=((date(2012, 10, 1), date(2014, 1, 31)),),
)

MICROSOFT_POLICY = ProgramPolicy(
    key="microsoft",
    data_start=date(2006, 12, 15),
    data_end=date(2021, 3, 15),
    cadence_months=2,
    adoption_delay_months=4,
    md5_purge=date(2018, 3, 1),
    weak_rsa_purge=date(2017, 9, 1),
    expired_retention_days=1600,
)

JAVA_POLICY = ProgramPolicy(
    key="java",
    data_start=date(2018, 3, 20),
    data_end=date(2021, 2, 15),
    cadence_months=6,
    adoption_delay_months=10,
    md5_purge=date(2019, 1, 20),
    weak_rsa_purge=date(2021, 2, 1),
    expired_retention_days=200,
    explicit_schedule=(
        date(2018, 3, 20),
        date(2018, 8, 15),
        date(2019, 2, 15),
        date(2019, 7, 15),
        date(2020, 1, 15),
        date(2020, 7, 15),
        date(2021, 2, 15),
    ),
)

POLICIES: dict[str, ProgramPolicy] = {
    p.key: p for p in (NSS_POLICY, APPLE_POLICY, MICROSOFT_POLICY, JAVA_POLICY)
}


@dataclass(frozen=True)
class Membership:
    """One root's tenure in one program."""

    spec: RootSpec
    join: date
    #: first snapshot date at which the root is absent (None = to study end)
    leave: date | None
    purposes: tuple[TrustPurpose, ...]
    distrust_after: date | None = None
    distrust_from: date | None = None

    def present_at(self, when: date) -> bool:
        if when < self.join:
            return False
        return self.leave is None or when < self.leave


def _jitter_months(slug: str, program: str, spread: int = 5) -> int:
    """Deterministic 0..spread month jitter per (root, program)."""
    digest = hashlib.sha256(f"{slug}/{program}".encode()).digest()
    return digest[0] % (spread + 1)


def compute_membership(spec: RootSpec, policy: ProgramPolicy) -> Membership | None:
    """The membership window for ``spec`` in ``policy``'s program, or None."""
    program = policy.key
    if not spec.in_program(program):
        return None
    override = spec.override_for(program)
    if override.never:
        return None

    if override.join is not None:
        join = max(override.join, policy.data_start)
    else:
        organic = month_add(
            spec.not_before,
            policy.adoption_delay_months + _jitter_months(spec.slug, program),
        )
        join = max(organic, policy.data_start)

    leave_candidates: list[date] = []
    if override.leave is not None:
        leave_candidates.append(override.leave)
    if policy.md5_purge and spec.digest == "md5" and policy.md5_purge > join:
        leave_candidates.append(policy.md5_purge)
    if (
        policy.weak_rsa_purge
        and spec.key_kind == "rsa"
        and int(spec.key_param) <= 1024
        and policy.weak_rsa_purge > join
    ):
        leave_candidates.append(policy.weak_rsa_purge)
    retention_leave = spec.not_after + timedelta(days=policy.expired_retention_days)
    if retention_leave <= join:
        # The root's expiry-plus-retention window closed before this
        # program would have picked it up: it never ships.
        return None
    leave_candidates.append(retention_leave)

    leave = min(leave_candidates) if leave_candidates else None
    if leave is not None and leave <= join:
        return None
    if leave is not None and leave > policy.data_end:
        leave = None
    if join > policy.data_end:
        return None

    if override.purposes is not None:
        purposes = override.purposes
    elif policy.default_all_purposes:
        purposes = ALL_PURPOSES
    else:
        purposes = spec.purposes

    return Membership(
        spec=spec,
        join=join,
        leave=leave,
        purposes=purposes,
        distrust_after=override.distrust_after,
        distrust_from=override.distrust_from,
    )


def snapshot_schedule(policy: ProgramPolicy) -> list[date]:
    """All snapshot dates for a program: cadence + incident-event dates."""
    if policy.explicit_schedule:
        dates = set(policy.explicit_schedule)
    else:
        dates = set()
        cursor = policy.data_start
        index = 0
        while cursor <= policy.data_end:
            frozen = any(lo <= cursor <= hi for lo, hi in policy.freeze_ranges)
            skipped = (
                policy.skip_percent
                and hashlib.sha256(f"{policy.key}/{index}".encode()).digest()[0] % 100
                < policy.skip_percent
            )
            if not frozen and not skipped:
                dates.add(cursor)
            cursor = month_add(cursor, policy.cadence_months)
            index += 1
        dates.add(policy.data_end)
    for event in incidents.all_event_dates(policy.key):
        if policy.data_start <= event <= policy.data_end:
            dates.add(event)
    return sorted(dates)


def build_program_entry(
    membership: Membership, when: date, mint: Mint
) -> TrustEntry:
    """Materialize one trust entry as of ``when``."""
    cert = mint.certificate_for(membership.spec)
    trust = {purpose: TrustLevel.TRUSTED for purpose in membership.purposes}
    distrust_after = None
    if (
        membership.distrust_after is not None
        and membership.distrust_from is not None
        and when >= membership.distrust_from
    ):
        distrust_after = as_utc(membership.distrust_after)
    return TrustEntry.make(cert, purposes=trust, distrust_after=distrust_after)


def build_program_history(
    program: str,
    specs: list[RootSpec],
    mint: Mint,
    *,
    version_prefix: str | None = None,
) -> list[RootStoreSnapshot]:
    """Generate the full snapshot timeline for one root program.

    Version labels count *substantial* versions (TLS set changed),
    mirroring how NSS release numbering is used in Figure 3.
    """
    policy = POLICIES[program]
    memberships = [
        m for spec in specs if (m := compute_membership(spec, policy)) is not None
    ]
    prefix = version_prefix if version_prefix is not None else ("3." if program == "nss" else "v")

    snapshots: list[RootStoreSnapshot] = []
    previous_tls: frozenset[str] | None = None
    substantial = 0
    patch = 0
    for when in snapshot_schedule(policy):
        entries = [
            build_program_entry(m, when, mint) for m in memberships if m.present_at(when)
        ]
        snapshot = RootStoreSnapshot.build(program, when, "pending", entries)
        tls = snapshot.tls_fingerprints()
        if previous_tls is None or tls != previous_tls:
            substantial += 1
            patch = 0
        else:
            patch += 1
        version = f"{prefix}{substantial}" + (f".{patch}" if patch else "")
        snapshots.append(
            RootStoreSnapshot.build(program, when, version, entries)
        )
        previous_tls = tls
    return snapshots


def collect_apple_revocations(specs: list[RootSpec]) -> dict[str, date]:
    """Apple's out-of-band valid.apple.com revocations: slug -> date.

    These do not alter the shipped store (the paper's point); Table 4's
    Apple rows consult this feed.
    """
    feed: dict[str, date] = {}
    for spec in specs:
        override: Override = spec.override_for("apple")
        if override.revoke_from is not None:
            feed[spec.slug] = override.revoke_from
    return feed
