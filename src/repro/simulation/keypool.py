"""Deterministic key pool with an on-disk cache.

Pure-Python RSA keygen costs ~0.1-0.6 s per key, and the simulated
ecosystem needs a few hundred root keys.  Keys are a pure function of
(pool seed, label, parameters), so we memoize them in a JSON cache that
persists across runs: the first corpus generation populates it, later
runs load instantly.  Deleting the cache file only costs time, never
changes results.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.crypto.ec import CURVES, Curve, ECPrivateKey, generate_ec_key
from repro.crypto.rng import DeterministicRandom
from repro.crypto.rsa import RSAPrivateKey, generate_rsa_key

#: Default cache location: alongside the package, overridable via env.
_ENV_VAR = "REPRO_KEYPOOL"


def default_pool_path() -> Path:
    override = os.environ.get(_ENV_VAR)
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "_keypool.json"


class KeyPool:
    """Deterministic, disk-cached key factory."""

    def __init__(self, seed: str = "repro-keypool-v1", path: Path | None = None):
        self._seed = seed
        self._path = path if path is not None else default_pool_path()
        self._rsa: dict[str, RSAPrivateKey] = {}
        self._ec: dict[str, ECPrivateKey] = {}
        self._dirty = False
        self._load()

    # -- public API ---------------------------------------------------------

    def rsa(self, label: str, bits: int) -> RSAPrivateKey:
        """The RSA key for ``label`` at ``bits``, generating on first use."""
        cache_key = f"rsa/{bits}/{label}"
        key = self._rsa.get(cache_key)
        if key is None:
            rng = DeterministicRandom(self._seed).fork(cache_key)
            key = generate_rsa_key(bits, rng)
            self._rsa[cache_key] = key
            self._dirty = True
        return key

    def ec(self, label: str, curve_name: str = "secp256r1") -> ECPrivateKey:
        """The EC key for ``label`` on the named curve."""
        cache_key = f"ec/{curve_name}/{label}"
        key = self._ec.get(cache_key)
        if key is None:
            curve = CURVES[curve_name]
            rng = DeterministicRandom(self._seed).fork(cache_key)
            key = generate_ec_key(curve, rng)
            self._ec[cache_key] = key
            self._dirty = True
        return key

    def save(self) -> None:
        """Persist newly generated keys; no-op when nothing changed."""
        if not self._dirty:
            return
        payload = {
            "seed": self._seed,
            "rsa": {
                label: {
                    "n": hex(k.n),
                    "e": k.e,
                    "d": hex(k.d),
                    "p": hex(k.p),
                    "q": hex(k.q),
                }
                for label, k in sorted(self._rsa.items())
            },
            "ec": {
                label: {"curve": k.curve.name, "d": hex(k.d)}
                for label, k in sorted(self._ec.items())
            },
        }
        tmp = self._path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=0))
        tmp.replace(self._path)
        self._dirty = False

    def __len__(self) -> int:
        return len(self._rsa) + len(self._ec)

    # -- persistence ----------------------------------------------------------

    def _load(self) -> None:
        if not self._path.exists():
            return
        try:
            payload = json.loads(self._path.read_text())
        except (OSError, json.JSONDecodeError):
            return  # a corrupt cache only costs regeneration time
        if payload.get("seed") != self._seed:
            return
        for label, parts in payload.get("rsa", {}).items():
            self._rsa[label] = RSAPrivateKey(
                n=int(parts["n"], 16),
                e=int(parts["e"]),
                d=int(parts["d"], 16),
                p=int(parts["p"], 16),
                q=int(parts["q"], 16),
            )
        for label, parts in payload.get("ec", {}).items():
            curve: Curve = CURVES[parts["curve"]]
            self._ec[label] = ECPrivateKey(curve=curve, d=int(parts["d"], 16))


_shared_pool: KeyPool | None = None


def shared_pool() -> KeyPool:
    """The process-wide pool (what the simulator uses by default)."""
    global _shared_pool
    if _shared_pool is None:
        _shared_pool = KeyPool()
    return _shared_pool
