"""Corpus generation: the whole simulated dataset in one call.

:func:`generate_corpus` mints every catalog certificate, drives the
four root program policy engines and the six derivative engines, and
returns a :class:`Corpus` — the paper's 619-snapshot data corpus plus
the side tables (catalog, Apple revocation feed, slug/fingerprint
maps) the analyses consult.

Generation is fully deterministic.  The first run pays pure-Python RSA
keygen for ~220 roots (a minute or so); the key pool cache makes every
later run fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro.simulation.catalog import build_catalog, catalog_by_slug
from repro.simulation.derivatives import DERIVATIVE_POLICIES, build_derivative_history
from repro.simulation.keypool import KeyPool
from repro.simulation.minting import Mint
from repro.simulation.model import RootSpec
from repro.simulation.programs import (
    POLICIES,
    build_program_history,
    collect_apple_revocations,
)
from repro.store.history import Dataset, StoreHistory
from repro.x509.certificate import Certificate


@dataclass
class Corpus:
    """The generated ecosystem: snapshot histories plus catalog context."""

    dataset: Dataset
    specs: list[RootSpec]
    specs_by_slug: dict[str, RootSpec]
    mint: Mint
    #: Apple's out-of-band valid.apple.com revocations: slug -> date
    apple_revocations: dict[str, date] = field(default_factory=dict)

    def certificate(self, slug: str) -> Certificate:
        """The certificate minted for a catalog slug."""
        return self.mint.certificate_for(self.specs_by_slug[slug])

    def fingerprint(self, slug: str) -> str:
        return self.certificate(slug).fingerprint_sha256

    def slug_for(self, fingerprint: str) -> str | None:
        """Reverse lookup: certificate fingerprint -> catalog slug."""
        return self.fingerprint_to_slug.get(fingerprint)

    @property
    def fingerprint_to_slug(self) -> dict[str, str]:
        cached = getattr(self, "_fp_to_slug", None)
        if cached is None:
            cached = {
                self.mint.certificate_for(spec).fingerprint_sha256: spec.slug
                for spec in self.specs
            }
            object.__setattr__(self, "_fp_to_slug", cached)
        return cached

    def spec_for_fingerprint(self, fingerprint: str) -> RootSpec | None:
        slug = self.slug_for(fingerprint)
        return self.specs_by_slug.get(slug) if slug else None

    @property
    def programs(self) -> tuple[str, ...]:
        return tuple(POLICIES)

    @property
    def derivatives(self) -> tuple[str, ...]:
        return tuple(DERIVATIVE_POLICIES)


def generate_corpus(
    seed: str = "repro-catalog-v1", pool: KeyPool | None = None
) -> Corpus:
    """Generate the full simulated corpus.

    Args:
        seed: catalog seed; vary it to get a structurally identical but
            cryptographically distinct ecosystem.
        pool: key pool override (tests use throwaway pools).
    """
    specs = build_catalog(seed)
    mint = Mint(pool)
    mint.mint_all(specs)

    dataset = Dataset()
    for program in POLICIES:
        history = StoreHistory(program)
        for snapshot in build_program_history(program, specs, mint):
            history.add(snapshot)
        dataset.add_history(history)

    nss_history = dataset["nss"]
    specs_by_slug = catalog_by_slug(specs)
    for provider in DERIVATIVE_POLICIES:
        history = StoreHistory(provider)
        for snapshot in build_derivative_history(provider, nss_history, specs_by_slug, mint):
            history.add(snapshot)
        dataset.add_history(history)

    return Corpus(
        dataset=dataset,
        specs=specs,
        specs_by_slug=specs_by_slug,
        mint=mint,
        apple_revocations=collect_apple_revocations(specs),
    )


_default_corpus: Corpus | None = None


def default_corpus() -> Corpus:
    """A process-wide shared corpus (analyses and benches reuse it)."""
    global _default_corpus
    if _default_corpus is None:
        _default_corpus = generate_corpus()
    return _default_corpus
