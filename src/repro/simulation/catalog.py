"""The simulated CA catalog.

Builds the complete population of :class:`~repro.simulation.model.RootSpec`
records: the shared "common" CA population every program trusts, the
program-exclusive roots of Appendix B, the incident CAs of Tables 4/7,
the email-only roots behind the purpose-conflation analysis, and the
non-NSS roots that Linux derivatives shipped on their own.

The catalog is deterministic — no randomness beyond a seeded jitter for
per-program adoption delays — so the corpus, every fingerprint, and
every analysis output replays exactly.
"""

from __future__ import annotations

from datetime import date

from repro.crypto.rng import DeterministicRandom
from repro.simulation import incidents
from repro.simulation.model import (
    ALL_PURPOSES,
    EMAIL_ONLY,
    TLS_EMAIL,
    TLS_ONLY,
    Override,
    RootSpec,
)

#: The four independent root programs.
PROGRAMS = ("nss", "apple", "microsoft", "java")
_CORE3 = ("nss", "apple", "microsoft")

#: Countries for procedurally generated CAs (flavor only).
_COUNTRIES = ("US", "GB", "DE", "FR", "JP", "ES", "IT", "NL", "SE", "CH", "BE", "TW", "ZA", "PL")


def build_catalog(seed: str = "repro-catalog-v1") -> list[RootSpec]:
    """The full root specification catalog (~220 roots)."""
    rng = DeterministicRandom(seed)
    specs: list[RootSpec] = []
    specs.extend(_common_population(rng))
    specs.extend(_apple_microsoft_regional(rng))
    specs.extend(_program_historic(rng, "microsoft", 26))
    specs.extend(_program_historic(rng, "apple", 16))
    specs.extend(_retained_population(rng, "microsoft", "apple", 16))
    specs.extend(_retained_population(rng, "apple", "microsoft", 12))
    specs.extend(_incident_roots())
    specs.extend(_symantec_family())
    specs.extend(_nss_exclusive())
    specs.extend(_apple_exclusives())
    specs.extend(_microsoft_exclusives())
    specs.extend(_email_only_roots())
    specs.extend(_derivative_custom_roots())
    specs.extend(_java_transients())
    specs.append(_addtrust_root())
    _check_unique_slugs(specs)
    return specs


def catalog_by_slug(specs: list[RootSpec]) -> dict[str, RootSpec]:
    return {spec.slug: spec for spec in specs}


def _check_unique_slugs(specs: list[RootSpec]) -> None:
    seen: set[str] = set()
    for spec in specs:
        if spec.slug in seen:
            raise ValueError(f"duplicate catalog slug {spec.slug!r}")
        seen.add(spec.slug)


# ---------------------------------------------------------------------------
# Common population: the CAs all (or most) programs trust.
# ---------------------------------------------------------------------------

_ERAS = (
    # (key, count, year range, key profile, digest profile, lifetime range)
    # Era-B roots carry deliberately short lifetimes so a steady trickle
    # of expirations lands inside the study window — the raw material
    # for Table 3's expired-root metric.
    ("a", 14, (1996, 2001), "rsa1024", "md5-sha1", (17, 21)),
    ("b", 20, (2001, 2007), "rsa-mixed", "sha1-md5", (15, 18)),
    ("c", 26, (2008, 2014), "rsa2048", "sha1-sha256", (22, 25)),
    ("d", 24, (2015, 2020), "rsa2048-ec", "sha256", (25, 25)),
)

#: Common roots Java joined only in its August 2018 expansion (the Java
#: MDS outlier: +21 roots in one snapshot).
JAVA_LATE_JOIN = date(2018, 8, 1)
#: ... and common roots Java dropped in the same snapshot (6 of the 9
#: removals; the other 3 are the java-transient roots below).
JAVA_2018_DROP = date(2018, 8, 1)


def _common_population(rng: DeterministicRandom) -> list[RootSpec]:
    specs: list[RootSpec] = []
    java_late = 0
    java_drop = 0
    for era_key, count, (year_lo, year_hi), key_profile, digest_profile, lifetime in _ERAS:
        for index in range(count):
            slug = f"common-{era_key}{index + 1}"
            fork = rng.fork(slug)
            year = year_lo + index * (year_hi - year_lo) // max(count - 1, 1)
            not_before = date(year, 1 + fork.randint(0, 11), 1 + fork.randint(0, 27))
            key_kind, key_param = _pick_key(key_profile, index)
            digest = _pick_digest(digest_profile, index, count)
            programs: tuple[str, ...] = _CORE3
            overrides: dict[str, Override] = {}
            # Java's smaller store: ~60% of era b/c/d roots plus a
            # handful of era-a legacy roots (whose MD5/1024-bit keys
            # drive Java's late hygiene purges in Table 3).
            if (era_key == "a" and index % 3 == 0) or (era_key != "a" and index % 5 < 3):
                programs = PROGRAMS
                # Java's Aug-2018 churn: 21 late joins, 6 drops.
                if era_key == "d" and java_late < 21:
                    overrides["java"] = Override(join=JAVA_LATE_JOIN, note="Java 2018-08 batch add")
                    java_late += 1
                elif era_key == "b" and java_drop < 6:
                    overrides["java"] = Override(leave=JAVA_2018_DROP, note="Java 2018-08 batch removal")
                    java_drop += 1
            specs.append(
                RootSpec(
                    slug=slug,
                    common_name=f"Common Trust Root {era_key.upper()}{index + 1}",
                    organization=f"CommonTrust {era_key.upper()}{index + 1} Ltd",
                    country=fork.choice(_COUNTRIES),
                    key_kind=key_kind,
                    key_param=key_param,
                    digest=digest,
                    not_before=not_before,
                    lifetime_years=lifetime[0] + index % (lifetime[1] - lifetime[0] + 1),
                    purposes=TLS_EMAIL,
                    programs=programs,
                    overrides=overrides,
                    tags=frozenset({"common", f"era-{era_key}"}),
                )
            )
    return specs


def _pick_key(profile: str, index: int) -> tuple[str, int | str]:
    if profile == "rsa1024":
        return "rsa", 1024
    if profile == "rsa-mixed":
        return ("rsa", 1024) if index % 2 == 0 else ("rsa", 2048)
    if profile == "rsa2048":
        return "rsa", 2048
    if profile == "rsa2048-ec":
        return ("ec", "secp256r1") if index % 6 == 5 else ("rsa", 2048)
    raise ValueError(f"unknown key profile {profile!r}")


def _pick_digest(profile: str, index: int, count: int) -> str:
    if profile == "md5-sha1":
        return "md5" if index % 2 == 0 else "sha1"
    if profile == "sha1-md5":
        # A couple of MD5-signed-but-2048-bit roots: they survive the
        # weak-RSA purges, so each program's MD5 and 1024-bit removal
        # dates stay distinct (as in Table 3).
        return "md5" if index % 10 == 1 else "sha1"
    if profile == "sha1":
        return "sha1"
    if profile == "sha1-sha256":
        return "sha1" if index < count // 3 else "sha256"
    if profile == "sha256":
        return "sha256"
    raise ValueError(f"unknown digest profile {profile!r}")


def _apple_microsoft_regional(rng: DeterministicRandom) -> list[RootSpec]:
    """Regional CAs carried by Apple and Microsoft but not NSS/Java.

    These widen the Apple/Microsoft stores relative to NSS (Table 3)
    without inflating the *exclusive* sets of Appendix B (they are
    shared between two programs, so neither counts them as unique).
    """
    specs = []
    for index in range(10):
        slug = f"regional-{index + 1}"
        fork = rng.fork(slug)
        year = 2005 + (index * 13) // 10
        specs.append(
            RootSpec(
                slug=slug,
                common_name=f"Regional CA {index + 1}",
                organization=f"Regional Trust Services {index + 1}",
                country=fork.choice(_COUNTRIES),
                key_kind="rsa",
                key_param=2048,
                digest="sha1" if year < 2012 else "sha256",
                not_before=date(year, 1 + fork.randint(0, 11), 1 + fork.randint(0, 27)),
                lifetime_years=22,
                purposes=TLS_EMAIL,
                programs=("apple", "microsoft"),
                tags=frozenset({"regional"}),
            )
        )
    return specs


def _program_historic(rng: DeterministicRandom, program: str, count: int) -> list[RootSpec]:
    """Historic program-only roots that age out before the study ends.

    Microsoft (and to a lesser degree Apple) historically trusted many
    CAs the other programs never carried.  These roots separate the
    program families in the Figure 1 ordination and widen the Table 3
    store sizes, but — because every one expires or is dropped before
    the final snapshot — they never perturb the Appendix B exclusive
    counts, which only consider the most recent store state.
    """
    specs = []
    for index in range(count):
        slug = f"{program}-historic-{index + 1}"
        fork = rng.fork(slug)
        year = 1998 + (index * 6) // count
        # Expires 2008-2015: even Microsoft's ~4.4-year expired-root
        # retention clears these before the final snapshot.
        lifetime = 10 + index % 3
        specs.append(
            RootSpec(
                slug=slug,
                common_name=f"{program.capitalize()} Legacy Partner CA {index + 1}",
                organization=f"Legacy Partner {program.capitalize()} {index + 1}",
                country=fork.choice(_COUNTRIES),
                key_kind="rsa",
                key_param=1024 if year < 2003 else 2048,
                digest="sha1",
                not_before=date(year, 1 + fork.randint(0, 11), 1 + fork.randint(0, 27)),
                lifetime_years=lifetime,
                purposes=TLS_EMAIL,
                programs=(program,),
                tags=frozenset({"historic", f"{program}-historic"}),
            )
        )
    return specs


def _retained_population(
    rng: DeterministicRandom, keeper: str, dropper: str, count: int
) -> list[RootSpec]:
    """CAs both Apple and Microsoft once trusted, later kept by only one.

    Root programs diverge over time: partner CAs both carried in the
    2000s were dropped by one program's mid-2010s cleanups while the
    other retained them.  These roots make the final Apple and Microsoft
    stores genuinely different (the Figure 1 separation) *without*
    inflating Appendix B's exclusive counts — the dropper's history
    still shows past TLS trust, so the exclusivity test rejects them.
    """
    specs = []
    for index in range(count):
        slug = f"{keeper}-retained-{index + 1}"
        fork = rng.fork(slug)
        year = 2004 + (index * 8) // count
        drop_date = date(2015 + index % 4, 3 + index % 8, 1)
        specs.append(
            RootSpec(
                slug=slug,
                common_name=f"{keeper.capitalize()}-Retained Partner CA {index + 1}",
                organization=f"Retained Partner {keeper.capitalize()} {index + 1}",
                country=fork.choice(_COUNTRIES),
                key_kind="rsa",
                key_param=2048,
                digest="sha1" if year < 2011 else "sha256",
                not_before=date(year, 1 + fork.randint(0, 11), 1 + fork.randint(0, 27)),
                lifetime_years=24,
                purposes=TLS_EMAIL,
                programs=(keeper, dropper),
                overrides={dropper: Override(leave=drop_date, note=f"dropped by {dropper}")},
                tags=frozenset({"retained", f"{keeper}-retained"}),
            )
        )
    return specs


# ---------------------------------------------------------------------------
# Incident CAs (Tables 4 and 7).
# ---------------------------------------------------------------------------


def _incident_roots() -> list[RootSpec]:
    """The named CAs behind every high-severity removal."""
    specs: list[RootSpec] = []

    specs.append(
        RootSpec(
            slug="diginotar-root",
            common_name="DigiNotar Root CA",
            organization="DigiNotar",
            country="NL",
            key_kind="rsa",
            key_param=2048,
            digest="sha1",
            not_before=date(2007, 5, 16),
            lifetime_years=18,
            programs=_CORE3,
            overrides=_responses_to_overrides(incidents.DIGINOTAR, "diginotar-root"),
            tags=frozenset({"incident", "diginotar"}),
            note="Compromised 2011; forged *.google.com certificates",
        )
    )

    for slug, cn in (
        ("cnnic-root", "CNNIC ROOT"),
        ("cnnic-ev-root", "China Internet Network Information Center EV Certificates Root"),
    ):
        overrides = _responses_to_overrides(incidents.CNNIC, slug)
        if slug == "cnnic-ev-root":
            # Android only ever carried one of the two CNNIC roots (Table 4).
            overrides["android"] = Override(never=True, note="never included by Android")
        specs.append(
            RootSpec(
                slug=slug,
                common_name=cn,
                organization="China Internet Network Information Center",
                country="CN",
                key_kind="rsa",
                key_param=2048,
                digest="sha1",
                not_before=date(2010, 4, 1),
                lifetime_years=18,
                programs=_CORE3,
                overrides=overrides,
                tags=frozenset({"incident", "cnnic"}),
                note="MCS intermediate misissuance (2015)",
            )
        )

    for index, slug in enumerate(incidents.STARTCOM.root_slugs):
        overrides = _responses_to_overrides(incidents.STARTCOM, slug)
        # Apple never removed StartCom; it revoked two of the three roots
        # via valid.apple.com and still fully trusts the third.
        if index < 2:
            overrides["apple"] = Override(revoke_from=date(2018, 2, 1), note="revoked via valid.apple.com")
        else:
            overrides["apple"] = Override(note="still trusted by Apple")
        specs.append(
            RootSpec(
                slug=slug,
                common_name=f"StartCom Certification Authority{' G' + str(index + 1) if index else ''}",
                organization="StartCom Ltd.",
                country="IL",
                key_kind="rsa",
                key_param=2048,
                digest="sha1" if index == 0 else "sha256",
                not_before=date(2006 + 4 * index, 9, 17),
                lifetime_years=20,
                programs=_CORE3,
                overrides=overrides,
                tags=frozenset({"incident", "startcom"}),
                note="Stealth WoSign acquisition; shared issuance infrastructure",
            )
        )

    for index, slug in enumerate(incidents.WOSIGN.root_slugs):
        overrides = _responses_to_overrides(incidents.WOSIGN, slug)
        overrides["apple"] = Override(never=True, note="Apple never included WoSign roots")
        specs.append(
            RootSpec(
                slug=slug,
                common_name=f"Certification Authority of WoSign{' G' + str(index + 1) if index else ''}",
                organization="WoSign CA Limited",
                country="CN",
                key_kind="ec" if slug.endswith("ecc") else "rsa",
                key_param="secp256r1" if slug.endswith("ecc") else 2048,
                digest="sha256",
                not_before=date(2009 + index, 8, 8),
                lifetime_years=20,
                programs=_CORE3,
                overrides=overrides,
                tags=frozenset({"incident", "wosign"}),
                note="Backdated SHA-1 issuance; undisclosed StartCom acquisition",
            )
        )

    specs.append(
        RootSpec(
            slug="pspprocert",
            common_name="PSCProcert",
            organization="Proveedor de Certificados PROCERT",
            country="VE",
            key_kind="rsa",
            key_param=2048,
            digest="sha1",
            not_before=date(2010, 12, 28),
            lifetime_years=15,
            programs=("nss",),
            overrides={
                **_responses_to_overrides(incidents.PROCERT, "pspprocert"),
                "android": Override(never=True, note="Android never included PSPProcert"),
            },
            tags=frozenset({"incident", "procert"}),
            note="Venezuelan sub-CA of the government super-CA; repeated transgressions",
        )
    )

    specs.append(
        RootSpec(
            slug="certinomis-root",
            common_name="Certinomis - Root CA",
            organization="Certinomis",
            country="FR",
            key_kind="rsa",
            key_param=2048,
            digest="sha256",
            not_before=date(2013, 10, 21),
            lifetime_years=20,
            programs=_CORE3,
            overrides={
                **_responses_to_overrides(incidents.CERTINOMIS, "certinomis-root"),
                "apple": Override(
                    revoke_from=incidents.CERTINOMIS_APPLE_REVOKE,
                    note="revoked via valid.apple.com, never removed",
                ),
                "microsoft": Override(note="still trusted by Microsoft at study end"),
            },
            tags=frozenset({"incident", "certinomis"}),
            note="Cross-signed distrusted StartCom; 111-day disclosure delay",
        )
    )

    # TWCA and SK ID left NSS in version 53 alongside the Symantec batch;
    # NodeJS skipped that update and preserved both (Section 6.2).
    specs.append(
        RootSpec(
            slug="twca-root",
            common_name="TWCA Root Certification Authority",
            organization="TAIWAN-CA",
            country="TW",
            key_kind="rsa",
            key_param=2048,
            digest="sha1",
            not_before=date(2008, 8, 28),
            lifetime_years=22,
            programs=_CORE3,
            overrides={"nss": Override(leave=incidents.TWCA_REMOVAL, note="Mozilla policy violations")},
            tags=frozenset({"incident", "nss-v53-removal"}),
        )
    )
    specs.append(
        RootSpec(
            slug="sk-id-root",
            common_name="EE Certification Centre Root CA",
            organization="AS Sertifitseerimiskeskus",
            country="EE",
            key_kind="rsa",
            key_param=2048,
            digest="sha1",
            not_before=date(2010, 10, 30),
            lifetime_years=20,
            programs=_CORE3,
            overrides={"nss": Override(leave=incidents.SK_ID_REMOVAL, note="removed at CA request")},
            tags=frozenset({"incident", "nss-v53-removal"}),
        )
    )
    specs.append(
        RootSpec(
            slug="taiwan-grca",
            common_name="Government Root Certification Authority",
            organization="Government Root Certification Authority",
            country="TW",
            key_kind="rsa",
            key_param=2048,
            digest="sha1",
            not_before=date(2002, 12, 5),
            lifetime_years=30,
            programs=_CORE3,
            overrides={"nss": Override(leave=incidents.TAIWAN_GRCA.nss_removal, note="misissuance")},
            tags=frozenset({"incident", "taiwan-grca"}),
        )
    )
    return specs


def _responses_to_overrides(incident: incidents.Incident, slug: str) -> dict[str, Override]:
    """Turn an incident's program responses into catalog overrides.

    Only the independent programs live in RootSpec overrides here;
    derivative responses are applied by the derivative engine (it also
    consults the incident registry).  NSS's own removal date is included
    because NSS is the reference store.
    """
    overrides: dict[str, Override] = {
        "nss": Override(leave=incident.nss_removal, note=f"NSS removal ({incident.bugzilla_id})")
    }
    for program in ("apple", "microsoft"):
        if program in incident.responses:
            response = incident.responses[program]
            if response is not None:
                overrides[program] = Override(leave=response, note=f"{incident.key} response")
    _ = slug
    return overrides


# ---------------------------------------------------------------------------
# The Symantec family (Section 6.2's partial-distrust case study).
# ---------------------------------------------------------------------------


def _symantec_family() -> list[RootSpec]:
    """Thirteen Symantec-operated roots.

    NSS v53 stamped ``server-distrust-after`` on twelve of them, then
    removed three in June 2020 and ten in December 2020.  The root kept
    longest by Debian/Ubuntu ("GeoTrust Universal CA 2" in the paper) is
    ``symantec-legacy-1`` here.
    """
    specs = []
    names = {
        "symantec-class3-g1": "VeriSign Class 3 Public Primary Certification Authority - G1",
        "symantec-class3-g2": "VeriSign Class 3 Public Primary Certification Authority - G2",
        "symantec-class3-g3": "VeriSign Class 3 Public Primary Certification Authority - G3",
        "symantec-legacy-1": "GeoTrust Universal CA 2",
    }
    batch1 = set(incidents.SYMANTEC_BATCH_1.root_slugs)
    for index, slug in enumerate(
        list(incidents.SYMANTEC_BATCH_1.root_slugs) + list(incidents.SYMANTEC_BATCH_2.root_slugs)
    ):
        removal = (
            incidents.SYMANTEC_BATCH_1.nss_removal
            if slug in batch1
            else incidents.SYMANTEC_BATCH_2.nss_removal
        )
        overrides = {
            "nss": Override(
                leave=removal,
                distrust_after=incidents.SYMANTEC_DISTRUST_AFTER,
                distrust_from=incidents.SYMANTEC_DISTRUST_MARKING,
                note="Symantec distrust (NSS v53)",
            )
        }
        specs.append(
            RootSpec(
                slug=slug,
                common_name=names.get(slug, f"GeoTrust Primary Certification Authority - G{index}"),
                organization="Symantec Corporation",
                country="US",
                key_kind="rsa",
                key_param=2048,
                digest="sha1" if index < 6 else "sha256",
                not_before=date(1999 + index, 3, 1 + index),
                lifetime_years=25,
                programs=PROGRAMS,
                overrides=overrides,
                tags=frozenset({"symantec"}),
                note="Symantec CA business (acquired by DigiCert, 2017)",
            )
        )
    return specs


# ---------------------------------------------------------------------------
# Program-exclusive roots (Appendix B / Table 6).
# ---------------------------------------------------------------------------


def _nss_exclusive() -> list[RootSpec]:
    """NSS's single exclusive root: the new Microsec ECC root."""
    return [
        RootSpec(
            slug="microsec-ecc",
            common_name="Microsec e-Szigno Root CA ECC",
            organization="Microsec Ltd.",
            country="HU",
            key_kind="ec",
            key_param="secp256r1",
            digest="sha256",
            not_before=date(2019, 4, 10),
            lifetime_years=25,
            programs=("nss",),
            tags=frozenset({"exclusive", "nss-exclusive"}),
            note="New elliptic curve root accompanying an already-trusted Microsec RSA root",
        )
    ]


def _apple_exclusives() -> list[RootSpec]:
    """Apple's thirteen exclusive roots (Appendix B taxonomy)."""
    specs: list[RootSpec] = []

    # Six roots other programs trust only for email: Microsoft carries
    # them email-only; Apple's default multi-purpose trust covers TLS.
    for index in range(6):
        specs.append(
            RootSpec(
                slug=f"apple-email-{index + 1}",
                common_name=f"SecureMail Root CA {index + 1}",
                organization=f"SecureMail Trust {index + 1}",
                country=("BE", "NO", "DK", "DE", "US", "FR")[index],
                key_kind="rsa",
                key_param=2048,
                digest="sha256",
                not_before=date(2009 + index, 6, 10),
                lifetime_years=22,
                purposes=EMAIL_ONLY,
                programs=("apple", "microsoft"),
                overrides={
                    "apple": Override(purposes=ALL_PURPOSES, note="Apple default multi-purpose trust"),
                    "microsoft": Override(purposes=EMAIL_ONLY, note="email-only in Microsoft"),
                },
                tags=frozenset({"exclusive", "apple-exclusive", "email-elsewhere"}),
                note="Trusted by Microsoft for email only; Apple ships no purpose restriction",
            )
        )

    # Five Apple-operated roots for proprietary services.
    services = ("FairPlay", "Developer ID", "iPhone Device", "TimeStamp", "WWDR")
    for index, service in enumerate(services):
        specs.append(
            RootSpec(
                slug=f"apple-services-{index + 1}",
                common_name=f"Apple {service} Root CA",
                organization="Apple Inc.",
                country="US",
                key_kind="rsa",
                key_param=2048,
                digest="sha256",
                not_before=date(2006 + 2 * index, 2, 7),
                lifetime_years=25,
                purposes=ALL_PURPOSES,
                programs=("apple",),
                tags=frozenset({"exclusive", "apple-exclusive", "apple-services"}),
                note=f"Apple-proprietary {service} infrastructure",
            )
        )

    # Two roots actively distrusted elsewhere.
    specs.append(
        RootSpec(
            slug="certipost-root",
            common_name="Certipost E-Trust Primary Normalised CA",
            organization="Certipost s.a./n.v.",
            country="BE",
            key_kind="rsa",
            key_param=2048,
            digest="sha1",
            not_before=date(2005, 7, 26),
            lifetime_years=20,
            purposes=EMAIL_ONLY,
            programs=("nss", "apple"),
            overrides={
                "nss": Override(
                    leave=date(2016, 5, 1),
                    note="CA requested removal (ceased TLS issuance; email-only in NSS)",
                ),
                "apple": Override(purposes=ALL_PURPOSES, note="Apple default multi-purpose trust"),
            },
            tags=frozenset({"exclusive", "apple-exclusive"}),
            note="Removed from NSS at CA request; Apple retains it",
        )
    )
    specs.append(
        RootSpec(
            slug="gov-venezuela",
            common_name="Autoridad de Certificacion Raiz del Estado Venezolano",
            organization="Sistema Nacional de Certificacion Electronica",
            country="VE",
            key_kind="rsa",
            key_param=2048,
            digest="sha256",
            not_before=date(2010, 12, 28),
            lifetime_years=20,
            purposes=EMAIL_ONLY,
            programs=("apple", "microsoft"),
            overrides={
                "apple": Override(
                    purposes=ALL_PURPOSES,
                    revoke_from=date(2020, 6, 1),
                    note="super-CA rejected by NSS; blocked via valid.apple.com but still shipped",
                ),
                "microsoft": Override(
                    purposes=EMAIL_ONLY,
                    leave=date(2020, 2, 1),
                    note="email-only until the 2020 blacklist",
                ),
            },
            tags=frozenset({"exclusive", "apple-exclusive", "super-ca"}),
            note="Government of Venezuela super-CA; NSS inclusion denied",
        )
    )
    return specs


#: (slug suffix, CN, organization, country, reason) for Microsoft's 30
#: exclusive roots, following the Appendix B taxonomy.
_MS_EXCLUSIVE_ROWS: tuple[tuple[str, str, str, str, str], ...] = (
    ("edicom", "ACEDICOM Root", "EDICOM", "ES", "NSS denied: inadequate audits, issuance concerns"),
    ("e-monitoring", "GLOBALTRUST 2015", "e-commerce monitoring GmbH", "AT", "NSS denied: BR and RFC 5280 violations"),
    ("gov-brazil", "Autoridade Certificadora Raiz Brasileira", "ICP-Brasil", "BR", "NSS denied: super-CA, insufficient disclosure"),
    ("gov-tunisia-1", "TunRootCA2", "Agence Nationale de Certification Electronique", "TN", "NSS denied: repeated misissuance"),
    ("gov-korea", "MOI GPKI Root CA", "Government of Korea", "KR", "NSS denied: confidential, unrestrained subCAs"),
    ("camerfirma", "Chambers of Commerce Root - 2016", "AC Camerfirma S.A.", "ES", "NSS denied; all Camerfirma roots removed May 2021"),
    ("digidentity", "Digidentity Service Root", "Digidentity B.V.", "NL", "NSS request retracted"),
    ("postsignum", "PostSignum Root QCA 2", "Ceska posta s.p.", "CZ", "NSS abandoned: inclusion attempt stalled"),
    ("oati", "OATI WebCARES Root CA", "OATI", "US", "NSS abandoned: no response in 3 years"),
    ("multicert", "MULTICERT Root CA 01", "MULTICERT", "PT", "NSS abandoned: external subCA concerns"),
    ("mtin", "AC RAIZ MTIN", "Gobierno de Espana, MTIN", "ES", "Expired Nov 2019; no CT-visible children"),
    ("gov-tunisia-2", "TunTrust Root CA", "Agence Nationale de Certification Electronique", "TN", "NSS pending: community concerns"),
    ("secom-1", "SECOM RootCA4", "SECOM Trust Systems", "JP", "NSS pending since 2016"),
    ("secom-2", "SECOM RootCA5", "SECOM Trust Systems", "JP", "NSS pending since 2016"),
    ("chunghwa", "HiPKI Root CA - G1", "Chunghwa Telecom", "TW", "NSS pending"),
    ("fina", "Fina Root CA", "Financijska agencija", "HR", "NSS pending"),
    ("telia", "Telia Root CA v2", "Telia Finland Oyj", "FI", "NSS pending: <100 leaves in CT"),
    ("netlock", "NETLOCK Arany Root", "NETLOCK Kft.", "HU", "Cross-signed by MS Code Verification Root only"),
    ("gov-finland", "VRK Gov. Root CA", "Vaestorekisterikeskus", "FI", "Previously abandoned NSS inclusion"),
    ("cisco", "Cisco Root CA 2048", "Cisco Systems", "US", "<100 leaves in CT; NSS rejected older root"),
    ("halcom", "Halcom Root CA", "Halcom D.D.", "SI", "<100 leaves in CT"),
    ("spain-reg", "Registradores de Espana Root", "Colegio de Registradores", "ES", "<100 leaves in CT"),
    ("nisz", "NISZ Root CA", "NISZ Zrt.", "HU", "<200 leaves in CT"),
    ("trustfactory", "TrustFactory SSL Root", "TrustFactory", "ZA", "<100 leaves in CT"),
    ("wifi-alliance", "WFA Hotspot 2.0 Root", "DigiCert for WiFi Alliance", "US", "WiFi Alliance Passpoint roaming"),
    ("digicert-bcr", "DigiCert Trusted Root G5", "DigiCert", "US", "Trusted intermediate elsewhere via Baltimore"),
    ("sectigo-alt", "Sectigo Alternative Root", "Sectigo", "GB", "Apple/NSS trust the issuer via a different root"),
    ("asseco-1", "Certum Trusted Root CA", "Asseco Data Systems", "PL", "Recently approved by NSS, awaiting addition"),
    ("asseco-2", "Certum EC-384 CA", "Asseco Data Systems", "PL", "Recently approved by NSS, awaiting addition"),
    ("asseco-3", "GLOBALTRUST 2020", "e-commerce monitoring GmbH", "AT", "Recently approved by NSS, awaiting addition"),
)


def _microsoft_exclusives() -> list[RootSpec]:
    """Microsoft's thirty exclusive roots, reason-tagged per Appendix B."""
    specs = []
    for index, (suffix, cn, org, country, reason) in enumerate(_MS_EXCLUSIVE_ROWS):
        year = 2008 + (index * 12) // len(_MS_EXCLUSIVE_ROWS)
        overrides = {}
        if suffix == "mtin":
            # Expired Nov 2019 but retained by Microsoft's lax purge.
            not_before = date(1999, 11, 15)
            lifetime = 20
        else:
            not_before = date(year, 3, 1 + index % 27)
            lifetime = 22
        specs.append(
            RootSpec(
                slug=f"ms-excl-{suffix}",
                common_name=cn,
                organization=org,
                country=country,
                key_kind="ec" if "EC-384" in cn else "rsa",
                key_param="secp384r1" if "EC-384" in cn else 2048,
                digest="sha256" if year >= 2010 else "sha1",
                not_before=not_before,
                lifetime_years=lifetime,
                programs=("microsoft",),
                overrides=overrides,
                tags=frozenset({"exclusive", "ms-exclusive"}),
                note=reason,
            )
        )
    return specs


# ---------------------------------------------------------------------------
# Email-only roots (the purpose-conflation analysis of Section 6.2).
# ---------------------------------------------------------------------------


def _email_only_roots() -> list[RootSpec]:
    """NSS roots never trusted for TLS.

    Fifteen "historic" roots leave NSS during 2016-2018 (expiry or CA
    request); four "modern" ones persist to the study end.  Debian and
    Ubuntu conflated all nineteen into TLS trust until 2017; Alpine
    conflated the surviving four until 2020.
    """
    specs = []
    for index in range(15):
        year = 2004 + (index * 4) // 15
        specs.append(
            RootSpec(
                slug=f"email-historic-{index + 1}",
                common_name=f"Secure Email Authority {index + 1}",
                organization=f"MailTrust {index + 1}",
                country=("DE", "FR", "IT", "ES", "US")[index % 5],
                key_kind="rsa",
                key_param=1024 if index % 3 == 0 else 2048,
                digest="sha1",
                not_before=date(year, 5, 1 + index),
                lifetime_years=13,
                purposes=EMAIL_ONLY,
                programs=("nss",),
                overrides={
                    "nss": Override(leave=date(2016 + (index * 3) // 15, 3 + index % 9, 1))
                },
                tags=frozenset({"email-only", "email-historic"}),
            )
        )
    for index in range(4):
        specs.append(
            RootSpec(
                slug=f"email-modern-{index + 1}",
                common_name=f"Modern S/MIME Root {index + 1}",
                organization=f"MailTrust Modern {index + 1}",
                country=("NL", "SE", "CH", "AT")[index],
                key_kind="rsa",
                key_param=2048,
                digest="sha256",
                not_before=date(2010 + index, 9, 12),
                lifetime_years=25,
                purposes=EMAIL_ONLY,
                programs=("nss",),
                tags=frozenset({"email-only", "email-modern"}),
            )
        )
    return specs


# ---------------------------------------------------------------------------
# Non-NSS roots shipped by derivatives (Section 6.2).
# ---------------------------------------------------------------------------


def _derivative_custom_roots() -> list[RootSpec]:
    """Roots that never sat in any root program but shipped in derivatives."""
    specs: list[RootSpec] = []

    rows = (
        [("debian-infra", "Debian Infrastructure Root", "Debian", "US", 2)]
        + [("spi", "Software in the Public Interest CA", "SPI Inc.", "US", 3)]
        + [("cacert", "CAcert Class 1 Root", "CAcert Inc.", "AU", 3)]
        + [("tp-internet", "TP Internet CA", "TP Internet Sp. z o.o.", "PL", 9)]
        + [("gov-france-dcssi", "IGC/A (DCSSI)", "Gouvernement de la France", "FR", 1)]
        + [("brazil-iti", "Autoridade Certificadora Raiz (ITI)", "Instituto Nacional de TI", "BR", 1)]
    )
    for prefix, cn, org, country, count in rows:
        for index in range(count):
            suffix = f"-{index + 1}" if count > 1 else ""
            specs.append(
                RootSpec(
                    slug=f"nonnss-{prefix}{suffix}",
                    common_name=f"{cn}{suffix.replace('-', ' #')}",
                    organization=org,
                    country=country,
                    key_kind="rsa",
                    key_param=1024,
                    digest="sha1",
                    not_before=date(2002, 3, 15),
                    lifetime_years=15,
                    purposes=TLS_ONLY,
                    programs=(),
                    tags=frozenset({"non-nss", "debian-custom"}),
                    note="Shipped by Debian/Ubuntu outside any root program (2005-2015)",
                )
            )

    specs.append(
        RootSpec(
            slug="thawte-premium-server",
            common_name="Thawte Premium Server CA",
            organization="Thawte Consulting cc",
            country="ZA",
            key_kind="rsa",
            key_param=1024,
            digest="md5",
            not_before=date(1996, 8, 1),
            lifetime_years=24,  # expires December 2020 in spirit
            purposes=TLS_ONLY,
            programs=(),
            tags=frozenset({"non-nss", "amazon-custom"}),
            note="Kept by Amazon Linux 2016-10 to 2020-12 despite never being an NSS root file entry",
        )
    )

    specs.append(
        RootSpec(
            slug="valicert-root",
            common_name="ValiCert Class 2 Policy Validation Authority",
            organization="ValiCert, Inc.",
            country="US",
            key_kind="rsa",
            key_param=1024,
            digest="sha1",
            not_before=date(1999, 6, 26),
            lifetime_years=20,
            purposes=TLS_EMAIL,
            programs=("nss",),
            overrides={"nss": Override(leave=date(2014, 6, 1), note="deprecated")},
            tags=frozenset({"non-nss", "nodejs-custom"}),
            note="Re-added by NodeJS for OpenSSL chain-building compatibility",
        )
    )
    return specs


def _addtrust_root() -> RootSpec:
    """The AddTrust root whose May-2020 expiry broke half the internet.

    Alpine manually removed it in June 2020 without taking a new NSS
    version (Section 6.2's "customized trust removals").
    """
    return RootSpec(
        slug="addtrust-legacy",
        common_name="AddTrust External CA Root",
        organization="AddTrust AB",
        country="SE",
        key_kind="rsa",
        key_param=2048,
        digest="sha1",
        not_before=date(2000, 5, 30),
        lifetime_years=20,
        programs=PROGRAMS,
        tags=frozenset({"addtrust"}),
        note="Expired 2020-05-30; removed manually by Alpine ahead of its NSS base",
    )


def _java_transients() -> list[RootSpec]:
    """Three Java-only roots dropped in the August 2018 churn."""
    specs = []
    for index in range(3):
        specs.append(
            RootSpec(
                slug=f"java-only-{index + 1}",
                common_name=f"Legacy JRE Root {index + 1}",
                organization=f"JavaSoft Trust {index + 1}",
                country="US",
                key_kind="rsa",
                key_param=2048,
                digest="sha1",
                not_before=date(2004 + index, 1, 20),
                lifetime_years=20,
                programs=("java",),
                overrides={"java": Override(leave=JAVA_2018_DROP, note="Java 2018-08 batch removal")},
                tags=frozenset({"java-transient"}),
            )
        )
    return specs
