"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Subsystem-specific
errors derive from intermediate classes (for example every DER parse
problem is an :class:`ASN1Error`), letting callers be as precise as they
need to be.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ASN1Error(ReproError):
    """A DER structure could not be encoded or decoded."""


class ASN1DecodeError(ASN1Error):
    """Malformed or truncated DER input."""

    def __init__(self, message: str, offset: int | None = None):
        if offset is not None:
            message = f"{message} (at offset {offset})"
        super().__init__(message)
        self.offset = offset


class ASN1EncodeError(ASN1Error):
    """A value cannot be represented in DER."""


class CryptoError(ReproError):
    """A cryptographic operation failed."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class KeyError_(CryptoError):
    """A key is malformed or unsupported (named to avoid the builtin)."""


class X509Error(ReproError):
    """An X.509 structure is malformed or violates profile rules."""


class CertificateParseError(X509Error):
    """A certificate could not be parsed from DER."""


class PEMError(ReproError):
    """PEM armor is malformed."""


class FormatError(ReproError):
    """A root store artifact (certdata.txt, authroot.stl, JKS, ...) is malformed."""


class StoreError(ReproError):
    """Inconsistent trust store contents or operations."""


class SimulationError(ReproError):
    """The ecosystem simulator was configured inconsistently."""


class CollectionError(ReproError):
    """A simulated data source could not be scraped.

    Carries optional ``provider``/``tag`` provenance so quarantine
    reports and logs can attribute the failure without string-parsing
    the message.
    """

    def __init__(self, message: str, *, provider: str | None = None, tag: str | None = None):
        context = " ".join(
            f"{name}={value!r}" for name, value in (("provider", provider), ("tag", tag)) if value
        )
        if context:
            message = f"{message} [{context}]"
        super().__init__(message)
        self.provider = provider
        self.tag = tag


class TransientCollectionError(CollectionError):
    """A scrape failed for a reason that may succeed on retry.

    Raised for simulated network-style flakiness (see
    :class:`repro.collection.faults.FlakyOrigin`); the retry policy in
    :mod:`repro.collection.retry` retries these and only these.
    Anything raised as a plain :class:`CollectionError` is permanent.
    """


class ArchiveError(ReproError):
    """The on-disk trust-store archive is missing, inconsistent, or unusable."""


class ArchiveCorruptionError(ArchiveError):
    """Stored archive bytes fail their content-address integrity check,
    or a catalogued object/manifest is missing from disk entirely.

    Carries the offending object ``fingerprint`` and on-disk ``path`` so
    ``archive verify`` and query-time integrity failures can name the
    damaged file instead of just failing.  Messages end with the
    remediation hint (run ``repro-roots archive repair``) because every
    corruption this class reports is one ``repair`` knows how to roll
    back or quarantine.
    """

    #: The remediation every corruption message points at.
    REMEDIATION = "run `repro-roots archive repair` to quarantine and recover"

    def __init__(self, message: str, *, fingerprint: str | None = None, path: str | None = None):
        super().__init__(f"{message}; {self.REMEDIATION}")
        self.fingerprint = fingerprint
        self.path = path


class ArchiveLockError(ArchiveError):
    """The archive's single-writer lock could not be acquired."""


class ArchiveStaleError(ArchiveError):
    """The archive catalog changed under a live :class:`ArchiveQuery`.

    A query engine pins the catalog hash it was constructed against; a
    concurrent re-ingest rewrites the catalog, so continuing to answer
    from the pinned index would serve point-in-time lookups from a
    superseded catalog without any error.  Construct a fresh
    ``ArchiveQuery`` (or pass ``refresh_on_stale=True`` to have the
    engine reload its index and caches transparently).
    """

    def __init__(self, message: str, *, pinned: str | None = None, current: str | None = None):
        super().__init__(message)
        self.pinned = pinned
        self.current = current


class ObservabilityError(ReproError):
    """The tracing/metrics layer was used inconsistently (e.g. two
    registrations of one metric name with conflicting types or labels)."""


class AnalysisError(ReproError):
    """An analysis routine received unusable input."""


class ValidationError(ReproError):
    """Certificate chain validation failed."""

    def __init__(self, message: str, *, reason: str = "unspecified"):
        super().__init__(message)
        self.reason = reason


class ScenarioPoolError(ReproError):
    """A scenario sweep's chunk re-dispatch budget was exhausted: some
    grid block kept killing every pool worker sent to evaluate it."""
