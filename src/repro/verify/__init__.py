"""Path validation against root store snapshots.

:class:`repro.verify.chain.ChainValidator` implements client-side chain
building and validation (signatures, expiry, CA constraints, trust
purposes, partial distrust); :mod:`repro.verify.issuance` mints the
leaves and intermediates the impact experiments validate.
"""

from repro.verify.chain import ChainValidator, ValidationResult
from repro.verify.crosssign import ResurrectionWindow, cross_sign, resurrection_window
from repro.verify.issuance import issue_intermediate, issue_server_leaf, issue_with_scts

__all__ = [
    "ChainValidator",
    "ResurrectionWindow",
    "ValidationResult",
    "cross_sign",
    "issue_intermediate",
    "issue_server_leaf",
    "issue_with_scts",
    "resurrection_window",
]
