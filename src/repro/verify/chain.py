"""Certificate chain building and path validation against a root store.

The paper stops at root store membership; this module closes the loop
to end users by implementing the validation a TLS client performs: walk
issuer links from a leaf to a trust anchor in a
:class:`~repro.store.snapshot.RootStoreSnapshot`, verifying signatures,
validity windows, CA constraints, trust purposes, and — where the store
can express it — NSS-style ``server-distrust-after`` partial distrust.

It powers the incident-impact example (which domains break when a store
removes or partially distrusts a root) and the Symantec case-study
benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import TYPE_CHECKING

from repro.errors import SignatureError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.revocation.checker import RevocationChecker
from repro.store.purposes import TrustLevel, TrustPurpose
from repro.store.snapshot import RootStoreSnapshot
from repro.x509.certificate import Certificate
from repro.x509.extensions import BasicConstraints, ExtendedKeyUsage, KeyUsage, KeyUsageBit
from repro.asn1.oid import (
    BASIC_CONSTRAINTS,
    EKU_SERVER_AUTH,
    EXTENDED_KEY_USAGE,
    KEY_USAGE,
)


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of one path validation."""

    valid: bool
    chain: tuple[Certificate, ...] = ()
    anchor: Certificate | None = None
    reason: str = "ok"

    def __bool__(self) -> bool:
        return self.valid


@dataclass
class ChainValidator:
    """Validates leaf certificates against one root store snapshot.

    Issuer lookups run on subject-keyed indexes built lazily, exactly
    once per validator (bulk workloads — the scenario engine validates
    thousands of leaves per snapshot — used to pay a full store scan
    with trial signature verification per ``validate()`` call).
    Signature checks are memoized per (child, parent) pair, so the
    re-verification of a path the DFS already explored is a dictionary
    hit, not another RSA exponentiation.
    """

    store: RootStoreSnapshot
    #: extra (non-anchor) intermediates available for chain building
    intermediates: list[Certificate] = field(default_factory=list)
    purpose: TrustPurpose = TrustPurpose.SERVER_AUTH
    max_depth: int = 8
    #: optional client revocation channel (CRL / OneCRL / CRLSet / Apple feed)
    revocation: "RevocationChecker | None" = None
    #: how many times the subject->candidates indexes were built; stays
    #: at 1 for any number of validate() calls against one snapshot
    index_builds: int = field(default=0, init=False, repr=False, compare=False)
    _anchor_index: "dict[bytes, list] | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    _intermediate_index: "dict[bytes, list[Certificate]] | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    _signature_memo: "dict[tuple[str, str], bool]" = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def validate(self, leaf: Certificate, at: datetime) -> ValidationResult:
        """Build and validate a path from ``leaf`` to a trust anchor.

        All candidate paths are explored (anchors first, then through
        intermediates, with backtracking): when several chains exist —
        cross-signs, re-issued intermediates — a failure on one path
        does not doom a certificate that validates on another.
        """
        failure: ValidationResult | None = None
        for chain, anchor_entry in self._candidate_chains(leaf):
            result = self._validate_path(chain, anchor_entry, at)
            if result.valid:
                return result
            failure = result
        if failure is not None:
            return failure
        return ValidationResult(valid=False, reason="no-anchor")

    def _validate_path(self, chain, anchor_entry, at: datetime) -> ValidationResult:
        """Validate one concrete (chain, anchor) candidate."""
        leaf = chain[0]
        anchor = anchor_entry.certificate
        # Trust purpose: the store must trust the anchor for our purpose.
        level = anchor_entry.level_for(self.purpose)
        if level is not TrustLevel.TRUSTED:
            return ValidationResult(
                valid=False, chain=tuple(chain), anchor=anchor, reason="anchor-not-trusted"
            )
        # Partial distrust: leaves issued after the cutoff are rejected.
        if (
            self.purpose is TrustPurpose.SERVER_AUTH
            and anchor_entry.distrust_after is not None
            and leaf.validity.not_before > anchor_entry.distrust_after
        ):
            return ValidationResult(
                valid=False, chain=tuple(chain), anchor=anchor, reason="server-distrust-after"
            )

        full_path = [*chain, anchor]
        for index, cert in enumerate(full_path):
            if not cert.validity.contains(at):
                return ValidationResult(
                    valid=False, chain=tuple(chain), anchor=anchor, reason="expired"
                )
            is_leaf = index == 0
            if not is_leaf and not self._ca_ok(cert):
                return ValidationResult(
                    valid=False, chain=tuple(chain), anchor=anchor, reason="not-a-ca"
                )
        if not self._leaf_purpose_ok(leaf):
            return ValidationResult(
                valid=False, chain=tuple(chain), anchor=anchor, reason="eku-mismatch"
            )

        # Signatures: each certificate signed by the next one's key.
        # The DFS verified every link while extending, so these are
        # memo hits (the "verified-subpath" memo), not repeat crypto.
        for child, parent in zip(full_path, full_path[1:]):
            if not self._signature_ok(child, parent):
                return ValidationResult(
                    valid=False, chain=tuple(chain), anchor=anchor, reason="bad-signature"
                )
        if not self._signature_ok(anchor, anchor):
            # Self-signature failures on anchors are tolerated by real
            # validators (trust is by membership), but ours always signs
            # its anchors, so surface the anomaly.
            return ValidationResult(
                valid=False, chain=tuple(chain), anchor=anchor, reason="bad-anchor-signature"
            )

        if self.revocation is not None:
            status = self.revocation.check_chain(full_path, at=at)
            if status.revoked:
                return ValidationResult(
                    valid=False,
                    chain=tuple(chain),
                    anchor=anchor,
                    reason=f"revoked:{status.mechanism}",
                )

        return ValidationResult(valid=True, chain=tuple(chain), anchor=anchor)

    # -- helpers -----------------------------------------------------------

    def _candidate_chains(self, leaf: Certificate):
        """DFS over all issuer paths, yielding (chain, anchor_entry).

        Anchor terminations are tried before descending through more
        intermediates, so the shortest chains surface first; cycles and
        depth are bounded.
        """
        yield from self._extend([leaf])

    def _extend(self, chain: list[Certificate]):
        current = chain[-1]
        for entry in self._anchors_for(current):
            yield list(chain), entry
        if len(chain) >= self.max_depth:
            return
        for parent in self._intermediates_for(current):
            if any(parent == seen for seen in chain):
                continue  # issuer loop
            yield from self._extend([*chain, parent])

    def _build_indexes(self) -> None:
        """Subject -> candidates maps, built once per validator."""
        anchors: dict[bytes, list] = {}
        for entry in self.store.entries:
            anchors.setdefault(entry.certificate.subject.encode(), []).append(entry)
        parents: dict[bytes, list[Certificate]] = {}
        for candidate in self.intermediates:
            parents.setdefault(candidate.subject.encode(), []).append(candidate)
        self._anchor_index = anchors
        self._intermediate_index = parents
        self.index_builds += 1

    def _signature_ok(self, child: Certificate, parent: Certificate) -> bool:
        """Memoized ``child`` signed-by ``parent`` check."""
        key = (child.fingerprint_sha256, parent.fingerprint_sha256)
        cached = self._signature_memo.get(key)
        if cached is None:
            try:
                child.verify_signature(parent.public_key)
            except SignatureError:
                cached = False
            else:
                cached = True
            self._signature_memo[key] = cached
        return cached

    def _anchors_for(self, cert: Certificate):
        if self._anchor_index is None:
            self._build_indexes()
        for entry in self._anchor_index.get(cert.issuer.encode(), ()):
            if self._signature_ok(cert, entry.certificate):
                yield entry

    def _intermediates_for(self, cert: Certificate):
        if self._intermediate_index is None:
            self._build_indexes()
        for candidate in self._intermediate_index.get(cert.issuer.encode(), ()):
            if candidate != cert and self._signature_ok(cert, candidate):
                yield candidate

    def _ca_ok(self, cert: Certificate) -> bool:
        bc: BasicConstraints | None = cert.extension_value(BASIC_CONSTRAINTS)
        if bc is None or not bc.ca:
            return False
        ku: KeyUsage | None = cert.extension_value(KEY_USAGE)
        if ku is not None and not ku.allows(KeyUsageBit.KEY_CERT_SIGN):
            return False
        return True

    def _leaf_purpose_ok(self, leaf: Certificate) -> bool:
        if self.purpose is not TrustPurpose.SERVER_AUTH:
            return True
        eku: ExtendedKeyUsage | None = leaf.extension_value(EXTENDED_KEY_USAGE)
        if eku is None:
            return True  # absent EKU = unrestricted
        return EKU_SERVER_AUTH in eku.purposes
