"""Leaf/intermediate issuance helpers for impact experiments.

The incident-impact example and the Symantec case-study bench need
subscriber certificates chained to catalog roots.  This module issues
them: server leaves (with SAN + serverAuth EKU) and intermediate CAs,
signed by a root's private key from the simulation mint.
"""

from __future__ import annotations

import hashlib
from datetime import datetime, timedelta

from repro.asn1.oid import EKU_SERVER_AUTH
from repro.crypto.rng import DeterministicRandom
from repro.simulation.minting import Mint
from repro.simulation.model import RootSpec
from repro.x509.builder import CertificateBuilder, PrivateKey
from repro.x509.certificate import Certificate
from repro.x509.extensions import ExtendedKeyUsage, SubjectAltName
from repro.x509.name import Name


def issue_server_leaf(
    issuer_spec: RootSpec,
    mint: Mint,
    domain: str,
    *,
    not_before: datetime,
    lifetime_days: int = 398,
    key_bits: int = 1024,
) -> Certificate:
    """A TLS server certificate for ``domain``, signed by a catalog root.

    The leaf key is deterministic in (root, domain) so experiments
    replay byte-identically.
    """
    issuer_cert = mint.certificate_for(issuer_spec)
    issuer_key: PrivateKey = mint.key_for(issuer_spec)
    rng = DeterministicRandom(f"leaf/{issuer_spec.slug}/{domain}")
    from repro.crypto.rsa import generate_rsa_key

    leaf_key = generate_rsa_key(key_bits, rng)
    serial = int.from_bytes(hashlib.sha256(f"{issuer_spec.slug}/{domain}".encode()).digest()[:8], "big") | 1
    builder = (
        CertificateBuilder()
        .subject(Name.build(common_name=domain, organization=f"{domain} operator"))
        .issuer(issuer_cert.subject)
        .serial(serial)
        .valid(not_before, not_before + timedelta(days=lifetime_days))
        .public_key(leaf_key.public_key)
        .ca(False)
        .add_extension(SubjectAltName(dns_names=(domain,)).to_extension())
        .add_extension(ExtendedKeyUsage(purposes=(EKU_SERVER_AUTH,)).to_extension())
    )
    return builder.sign(issuer_key, "sha256", issuer_public_key=issuer_cert.public_key)


def issue_with_scts(
    issuer_spec: RootSpec,
    mint: Mint,
    domain: str,
    logs: list,
    *,
    not_before: datetime,
    lifetime_days: int = 365,
    key_bits: int = 1024,
):
    """The full CT issuance flow (RFC 6962 §3).

    Builds a precertificate (poison extension), submits it to every log
    in ``logs`` for SCTs, then issues the final certificate with the
    embedded SCT list.  Returns (final_certificate, precertificate,
    scts).
    """
    from repro.ct.sct import poison_extension, sct_list_extension, submit_precertificate

    issuer_cert = mint.certificate_for(issuer_spec)
    issuer_key: PrivateKey = mint.key_for(issuer_spec)
    rng = DeterministicRandom(f"sct-leaf/{issuer_spec.slug}/{domain}")
    from repro.crypto.rsa import generate_rsa_key

    leaf_key = generate_rsa_key(key_bits, rng)
    serial = (
        int.from_bytes(hashlib.sha256(f"sct/{issuer_spec.slug}/{domain}".encode()).digest()[:8], "big")
        | 1
    )

    def builder():
        return (
            CertificateBuilder()
            .subject(Name.build(common_name=domain, organization=f"{domain} operator"))
            .issuer(issuer_cert.subject)
            .serial(serial)
            .valid(not_before, not_before + timedelta(days=lifetime_days))
            .public_key(leaf_key.public_key)
            .ca(False)
            .add_extension(SubjectAltName(dns_names=(domain,)).to_extension())
            .add_extension(ExtendedKeyUsage(purposes=(EKU_SERVER_AUTH,)).to_extension())
        )

    precert = (
        builder()
        .add_extension(poison_extension())
        .sign(issuer_key, "sha256", issuer_public_key=issuer_cert.public_key)
    )
    scts = [submit_precertificate(log, precert) for log in logs]
    final = (
        builder()
        .add_extension(sct_list_extension(scts))
        .sign(issuer_key, "sha256", issuer_public_key=issuer_cert.public_key)
    )
    return final, precert, scts


def issue_intermediate(
    issuer_spec: RootSpec,
    mint: Mint,
    name: str,
    *,
    not_before: datetime,
    lifetime_days: int = 3650,
    key_bits: int = 1024,
):
    """An intermediate CA under a catalog root.

    Returns (certificate, private_key) so callers can issue leaves
    from the intermediate.
    """
    issuer_cert = mint.certificate_for(issuer_spec)
    issuer_key: PrivateKey = mint.key_for(issuer_spec)
    rng = DeterministicRandom(f"intermediate/{issuer_spec.slug}/{name}")
    from repro.crypto.rsa import generate_rsa_key

    ca_key = generate_rsa_key(key_bits, rng)
    serial = int.from_bytes(hashlib.sha256(f"int/{issuer_spec.slug}/{name}".encode()).digest()[:8], "big") | 1
    builder = (
        CertificateBuilder()
        .subject(Name.build(common_name=name, organization=issuer_spec.organization))
        .issuer(issuer_cert.subject)
        .serial(serial)
        .valid(not_before, not_before + timedelta(days=lifetime_days))
        .public_key(ca_key.public_key)
        .ca(True, path_length=0)
    )
    cert = builder.sign(issuer_key, "sha256", issuer_public_key=issuer_cert.public_key)
    return cert, ca_key
