"""Cross-signing: alternative trust paths between CAs.

A cross-sign binds an existing CA's *subject and key* under a different
issuer, creating a second path to trust.  The paper's Certinomis
incident is the canonical abuse: after StartCom's roots were distrusted,
Certinomis cross-signed StartCom, resurrecting a valid path for
StartCom-issued certificates in every store that still trusted
Certinomis.

:func:`cross_sign` mints such certificates from catalog specs;
:func:`resurrection_window` measures, per store, how long the bypass
worked — which is exactly each store's Certinomis response lag.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import date, timedelta

from repro.simulation.minting import Mint
from repro.simulation.model import RootSpec, as_utc
from repro.store.history import StoreHistory
from repro.x509.builder import CertificateBuilder
from repro.x509.certificate import Certificate
from repro.x509.name import Name


def cross_sign(
    subject_spec: RootSpec,
    issuer_spec: RootSpec,
    mint: Mint,
    *,
    not_before: date,
    lifetime_days: int = 3650,
) -> Certificate:
    """Cross-sign ``subject_spec``'s identity under ``issuer_spec``.

    The result carries the subject CA's name and public key but chains
    to the issuer — so any certificate issued by the subject CA's key
    now also validates through the issuer's root.
    """
    issuer_cert = mint.certificate_for(issuer_spec)
    issuer_key = mint.key_for(issuer_spec)
    subject_key = mint.key_for(subject_spec)
    serial = (
        int.from_bytes(
            hashlib.sha256(f"xs/{subject_spec.slug}/{issuer_spec.slug}".encode()).digest()[:8],
            "big",
        )
        | 1
    )
    start = as_utc(not_before)
    return (
        CertificateBuilder()
        .subject(
            Name.build(
                common_name=subject_spec.common_name,
                organization=subject_spec.organization,
                country=subject_spec.country,
            )
        )
        .issuer(issuer_cert.subject)
        .serial(serial)
        .valid(start, start + timedelta(days=lifetime_days))
        .public_key(subject_key.public_key)
        .ca(True)
        .sign(issuer_key, "sha256", issuer_public_key=issuer_cert.public_key)
    )


@dataclass(frozen=True)
class ResurrectionWindow:
    """How long a cross-sign bypassed a store's distrust of the subject."""

    provider: str
    #: when the subject CA's own root stopped being trusted
    subject_removed: date | None
    #: when the cross-sign's issuer root stopped being trusted
    issuer_removed: date | None
    #: when the cross-sign was created
    cross_signed: date
    #: days during which the bypass path validated (0 = never)
    exposure_days: int
    open_ended: bool = False


def resurrection_window(
    history: StoreHistory,
    subject_fingerprints: list[str],
    issuer_fingerprint: str,
    cross_signed: date,
) -> ResurrectionWindow:
    """Measure one store's exposure to a cross-sign bypass.

    The bypass works from ``cross_signed`` (or from when the subject's
    own roots left the store, if later — before that the direct path
    exists anyway) until the *issuer* root also leaves the store.
    """
    subject_until: date | None = None
    for fp in subject_fingerprints:
        until = history.trusted_until(fp)
        if until is None and history.ever_trusted(fp):
            subject_until = None  # still directly trusted: no bypass needed
            break
        if until is not None:
            subject_until = max(subject_until or until, until)

    issuer_until = history.trusted_until(issuer_fingerprint)
    issuer_ever = history.ever_trusted(issuer_fingerprint)

    if not issuer_ever:
        return ResurrectionWindow(
            provider=history.provider,
            subject_removed=subject_until,
            issuer_removed=None,
            cross_signed=cross_signed,
            exposure_days=0,
        )

    start = max(cross_signed, subject_until or cross_signed)
    end = issuer_until if issuer_until is not None else history.last_date
    exposure = max((end - start).days, 0)
    return ResurrectionWindow(
        provider=history.provider,
        subject_removed=subject_until,
        issuer_removed=issuer_until,
        cross_signed=cross_signed,
        exposure_days=exposure,
        open_ended=issuer_until is None,
    )
