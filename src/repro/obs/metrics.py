"""The process-local metrics registry: counters, gauges, histograms.

Dependency-free and deliberately Prometheus-shaped: a *family* is a
named metric with a fixed label-name tuple; a *series* is one child of
a family, keyed by its label values.  Families are created through the
registry and are idempotent — asking twice for the same (name, type,
labels, buckets) spec returns the same object, while asking for a
conflicting spec raises :class:`~repro.errors.ObservabilityError`.
That invariant is what the tier-1 "every public metric name registered
exactly once" check leans on: all product metrics are declared in
:data:`repro.obs.catalog.METRICS` and instantiated only through
:mod:`repro.obs.instrument`, so a name can never mean two things.

Histograms use fixed, declared bucket bounds (upper-inclusive, like
Prometheus ``le``) so exported values are deterministic: the same
observations produce the same buckets on every run, including under
:class:`~repro.collection.retry.SimulatedClock` where every duration
is exact.

Everything is thread-safe (collection scrapes on a worker pool); one
lock per registry serializes mutation, which is far below noise for
the artifact-sized operations being counted.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.errors import ObservabilityError

#: Default histogram bounds for second-valued durations: sub-ms parses
#: up through multi-second full-corpus stages.
DEFAULT_SECONDS_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class _Series:
    """One labeled child of a family; the object callers mutate."""

    __slots__ = ("family", "labels")

    def __init__(self, family: "MetricFamily", labels: tuple[str, ...]):
        self.family = family
        self.labels = labels

    # -- counter / gauge -------------------------------------------------

    def inc(self, amount: float = 1) -> None:
        if self.family.type == GAUGE:
            raise ObservabilityError(f"inc() on gauge {self.family.name!r}; use set()/add()")
        if amount < 0:
            raise ObservabilityError(f"counter {self.family.name!r} cannot decrease")
        self._add(amount)

    def add(self, amount: float) -> None:
        """Gauge-only signed adjustment."""
        if self.family.type != GAUGE:
            raise ObservabilityError(f"add() is gauge-only (metric {self.family.name!r})")
        self._add(amount)

    def set(self, value: float) -> None:
        if self.family.type != GAUGE:
            raise ObservabilityError(f"set() is gauge-only (metric {self.family.name!r})")
        with self.family.registry._lock:
            self.family._values[self.labels] = value

    def _add(self, amount: float) -> None:
        with self.family.registry._lock:
            values = self.family._values
            values[self.labels] = values.get(self.labels, 0) + amount

    @property
    def value(self) -> float:
        with self.family.registry._lock:
            return self.family._values.get(self.labels, 0)

    # -- histogram -------------------------------------------------------

    def observe(self, value: float) -> None:
        if self.family.type != HISTOGRAM:
            raise ObservabilityError(f"observe() needs a histogram (metric {self.family.name!r})")
        bounds = self.family.buckets
        # Upper-inclusive buckets: value <= bounds[i] lands in bucket i,
        # anything beyond the last bound lands in the implicit +Inf slot.
        slot = bisect_left(bounds, value)
        with self.family.registry._lock:
            state = self.family._values.get(self.labels)
            if state is None:
                state = {"count": 0, "sum": 0.0, "buckets": [0] * (len(bounds) + 1)}
                self.family._values[self.labels] = state
            state["count"] += 1
            state["sum"] += value
            state["buckets"][slot] += 1

    @property
    def count(self) -> int:
        with self.family.registry._lock:
            state = self.family._values.get(self.labels)
            return state["count"] if state else 0

    @property
    def sum(self) -> float:
        with self.family.registry._lock:
            state = self.family._values.get(self.labels)
            return state["sum"] if state else 0.0

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts, +Inf slot last."""
        with self.family.registry._lock:
            state = self.family._values.get(self.labels)
            if state is None:
                return tuple([0] * (len(self.family.buckets) + 1))
            return tuple(state["buckets"])


class MetricFamily:
    """A named metric with fixed label names; parent of its series."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        type_: str,
        help_: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None,
    ):
        self.registry = registry
        self.name = name
        self.type = type_
        self.help = help_
        self.label_names = label_names
        self.buckets = buckets or ()
        self._values: dict = {}  # label values tuple -> scalar | histogram state
        self._series: dict[tuple[str, ...], _Series] = {}

    def spec(self) -> tuple:
        return (self.type, self.label_names, self.buckets)

    def labels(self, **labels: str) -> _Series:
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {self.label_names}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self.registry._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series(self, key)
        return series

    # Label-free families can be used directly as a series.
    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def add(self, amount: float) -> None:
        self.labels().add(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value

    def series(self) -> list[_Series]:
        with self.registry._lock:
            return [self._series[key] for key in sorted(self._series)]

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of every series."""
        entry: dict = {
            "name": self.name,
            "type": self.type,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": [],
        }
        if self.type == HISTOGRAM:
            entry["buckets"] = list(self.buckets)
        with self.registry._lock:
            for key in sorted(self._values):
                labels = dict(zip(self.label_names, key))
                value = self._values[key]
                if self.type == HISTOGRAM:
                    entry["series"].append(
                        {
                            "labels": labels,
                            "count": value["count"],
                            "sum": value["sum"],
                            "bucket_counts": list(value["buckets"]),
                        }
                    )
                else:
                    entry["series"].append({"labels": labels, "value": value})
        return entry


class MetricsRegistry:
    """All of one process's (or one test's) metric families."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        type_: str,
        help_: str,
        labels: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        labels = tuple(labels)
        if buckets is not None:
            buckets = tuple(buckets)
            if list(buckets) != sorted(set(buckets)):
                raise ObservabilityError(
                    f"histogram {name!r} bucket bounds must be strictly increasing"
                )
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.spec() != (type_, labels, buckets or ()):
                    raise ObservabilityError(
                        f"metric {name!r} already registered as {existing.spec()}, "
                        f"conflicting registration {(type_, labels, buckets or ())}"
                    )
                return existing
            family = MetricFamily(self, name, type_, help_, labels, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, COUNTER, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, GAUGE, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, HISTOGRAM, help, labels, buckets)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def to_dict(self) -> list[dict]:
        """Snapshot of every family, sorted by name (JSON-serializable)."""
        return [self._families[name].to_dict() for name in self.names()]
