"""Nested spans: the tracing half of the observability layer.

A :class:`Tracer` hands out ``span(name, **attrs)`` context managers.
Spans nest per thread (a worker-pool scrape produces one independent
tree per worker); when a *root* span closes, the completed tree is
handed to the tracer's exporter as one JSON-serializable dict — the
JSON-lines shape the exporters in :mod:`repro.obs.export` write.

Time comes from an injectable monotonic clock (``time.perf_counter``
by default).  Under a simulated clock (wrap a
:class:`~repro.collection.retry.SimulatedClock` with
:func:`clock_of`), durations are exactly the simulated sleeps, so
tier-1 tests can assert whole trace trees byte-for-byte.

Span status is ``ok`` unless the body raised, in which case the span
records ``error`` plus the exception class name and propagates — error
attribution per stage is the point of the layer.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

Clock = Callable[[], float]


def clock_of(simulated) -> Clock:
    """Adapt anything with a ``now`` attribute (e.g. ``SimulatedClock``)
    into the zero-argument clock callable tracers and timers take."""
    return lambda: simulated.now


class Span:
    """One timed, attributed operation; a node in a trace tree."""

    __slots__ = ("name", "attrs", "start", "end", "status", "error", "children")

    def __init__(self, name: str, attrs: dict, start: float):
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        entry: dict = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attrs:
            entry["attrs"] = dict(self.attrs)
        if self.error is not None:
            entry["error"] = self.error
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry

    def iter(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find(self, name: str) -> list["Span"]:
        return [span for span in self.iter() if span.name == name]


class Tracer:
    """Per-thread span stacks over one clock, feeding one exporter."""

    def __init__(self, *, clock: Clock | None = None, exporter=None):
        self.clock: Clock = clock or time.perf_counter
        self.exporter = exporter
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs):
        stack = self._stack()
        span = Span(name, attrs, self.clock())
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{exc.__class__.__name__}: {exc}"
            raise
        finally:
            span.end = self.clock()
            stack.pop()
            if not stack and self.exporter is not None:
                self.exporter.export(span.to_dict())
