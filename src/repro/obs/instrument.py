"""Instrumentation helpers product code calls on its hot paths.

All helpers route through :func:`~repro.obs.runtime.get_telemetry`
at call time (the active context may have been swapped by a test or
``--metrics-out`` session) and resolve metric specs from
:data:`repro.obs.catalog.SPECS` — using a name not declared there
raises, which keeps the public metric namespace closed.

The helpers are deliberately tiny:

- :func:`count` / :func:`observe` / :func:`set_gauge` — one series
  mutation.
- :func:`stage_timer` — context manager that opens a span *and*
  observes the elapsed clock time into a histogram; the shape every
  instrumented stage (codec parse, provider scrape, commit, analysis
  stage) uses, so traces and histograms can never disagree.
- :func:`instrumented_codec` — decorator the seven format codecs wrap
  their ``parse_*`` entry points with.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager

from repro.errors import ObservabilityError
from repro.obs.catalog import SPECS, MetricSpec
from repro.obs.metrics import COUNTER, GAUGE, HISTOGRAM, MetricFamily
from repro.obs.runtime import get_telemetry


def _family(name: str) -> MetricFamily:
    spec: MetricSpec | None = SPECS.get(name)
    if spec is None:
        raise ObservabilityError(f"metric {name!r} is not declared in repro.obs.catalog")
    registry = get_telemetry().registry
    if spec.type == COUNTER:
        return registry.counter(spec.name, spec.help, spec.labels)
    if spec.type == GAUGE:
        return registry.gauge(spec.name, spec.help, spec.labels)
    if spec.type == HISTOGRAM:
        return registry.histogram(spec.name, spec.help, spec.labels, spec.buckets)
    raise ObservabilityError(f"unknown metric type {spec.type!r}")  # pragma: no cover


def count(name: str, amount: float = 1, **labels: str) -> None:
    """Increment a declared counter series."""
    _family(name).labels(**labels).inc(amount)


def observe(name: str, value: float, **labels: str) -> None:
    """Record one observation into a declared histogram series."""
    _family(name).labels(**labels).observe(value)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a declared gauge series."""
    _family(name).labels(**labels).set(value)


@contextmanager
def stage_timer(span_name: str, metric: str | None = None, *, metric_labels: dict | None = None, **attrs):
    """Span + histogram in one: the canonical instrumented-stage shape.

    Opens span ``span_name`` with ``attrs``; on exit (including the
    error path — failed stages are exactly the ones worth timing)
    observes the elapsed clock time into histogram ``metric`` under
    ``metric_labels``.
    """
    telemetry = get_telemetry()
    start = telemetry.clock()
    try:
        with telemetry.span(span_name, **attrs) as span:
            yield span
    finally:
        if metric is not None:
            observe(metric, telemetry.clock() - start, **(metric_labels or {}))


def instrumented_codec(codec: str):
    """Wrap a ``parse_*`` codec entry point with parse count + latency.

    Records ``repro_formats_parse_total{codec, outcome}`` and (on
    success and failure alike) ``repro_formats_parse_seconds{codec}``,
    inside a ``formats.parse`` span carrying the codec name.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            telemetry = get_telemetry()
            start = telemetry.clock()
            try:
                with telemetry.span("formats.parse", codec=codec):
                    result = fn(*args, **kwargs)
            except Exception:
                count("repro_formats_parse_total", codec=codec, outcome="error")
                observe("repro_formats_parse_seconds", telemetry.clock() - start, codec=codec)
                raise
            count("repro_formats_parse_total", codec=codec, outcome="ok")
            observe("repro_formats_parse_seconds", telemetry.clock() - start, codec=codec)
            return result

        return wrapper

    return decorate
