"""``repro.obs`` — the dependency-free tracing/metrics subsystem.

Three layers, all deterministic under an injected clock:

- :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry`
  of counters, gauges, and fixed-bucket histograms.
- :mod:`repro.obs.trace` — ``span(name, **attrs)`` context managers
  building nested trace trees, exported as JSON lines on root
  completion (:mod:`repro.obs.export`: stderr / file / in-memory).
- :mod:`repro.obs.instrument` — the helpers the hot paths call, bound
  to the closed metric-name catalog (:mod:`repro.obs.catalog`).

The active context lives in :mod:`repro.obs.runtime`; swap it with
:func:`telemetry_session` for a test or a ``--metrics-out`` CLI run.
``repro-roots obs report FILE`` renders a dump
(:mod:`repro.obs.report`).
"""

from repro.obs.catalog import METRICS, SPECS, MetricSpec, duplicate_names
from repro.obs.export import (
    InMemoryExporter,
    JsonLinesExporter,
    StderrExporter,
    read_json_lines,
    tree_to_json_line,
)
from repro.obs.instrument import (
    count,
    instrumented_codec,
    observe,
    set_gauge,
    stage_timer,
)
from repro.obs.metrics import DEFAULT_SECONDS_BUCKETS, MetricFamily, MetricsRegistry
from repro.obs.runtime import (
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from repro.obs.trace import Span, Tracer, clock_of

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "InMemoryExporter",
    "JsonLinesExporter",
    "METRICS",
    "MetricFamily",
    "MetricSpec",
    "MetricsRegistry",
    "SPECS",
    "Span",
    "StderrExporter",
    "Telemetry",
    "Tracer",
    "clock_of",
    "count",
    "duplicate_names",
    "get_telemetry",
    "instrumented_codec",
    "observe",
    "read_json_lines",
    "set_gauge",
    "set_telemetry",
    "stage_timer",
    "telemetry_session",
    "tree_to_json_line",
]
