"""The single declaration point for every public metric name.

Naming convention: ``repro_<layer>_<what>_<unit-or-total>`` —
``repro_formats_parse_total``, ``repro_archive_commit_seconds``.
Counters end in ``_total``, histograms in their unit (``_seconds``),
gauges in a noun.  Labels are closed vocabularies (provider keys,
codec names, fixed outcome sets), never free-form strings, so series
cardinality stays bounded.

Product code never calls ``registry.counter(...)`` with an ad-hoc
name; it goes through :mod:`repro.obs.instrument`, which looks specs
up here.  That gives two guarantees the tier-1 check asserts:

- every public metric name is declared exactly once (``METRICS`` has
  no duplicate names), and
- an instrumentation site cannot drift from the declared type/labels —
  the registry raises :class:`~repro.errors.ObservabilityError` on any
  conflicting registration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import COUNTER, DEFAULT_SECONDS_BUCKETS, GAUGE, HISTOGRAM


@dataclass(frozen=True)
class MetricSpec:
    """One declared public metric."""

    name: str
    type: str
    help: str
    labels: tuple[str, ...] = ()
    buckets: tuple[float, ...] | None = None


METRICS: tuple[MetricSpec, ...] = (
    # -- formats: per-codec parse outcomes and latency -------------------
    MetricSpec(
        "repro_formats_parse_total", COUNTER,
        "Codec parse calls by outcome (ok|error).", ("codec", "outcome"),
    ),
    MetricSpec(
        "repro_formats_parse_seconds", HISTOGRAM,
        "Wall time of one codec parse call.", ("codec",), DEFAULT_SECONDS_BUCKETS,
    ),
    # -- collection: per-provider scrape accounting ----------------------
    MetricSpec(
        "repro_collection_scrape_seconds", HISTOGRAM,
        "Wall time of scrape_history per provider.", ("provider",), DEFAULT_SECONDS_BUCKETS,
    ),
    MetricSpec(
        "repro_collection_tags_total", COUNTER,
        "Visited origin tags by final status (ok|salvaged|quarantined|duplicate).",
        ("provider", "status"),
    ),
    MetricSpec(
        "repro_collection_attempts_total", COUNTER,
        "Per-tag scrape attempts, including retries.", ("provider",),
    ),
    MetricSpec(
        "repro_collection_retries_total", COUNTER,
        "Retried (transient-failure) scrape attempts.", ("provider",),
    ),
    # -- archive writer: journal/commit phases ---------------------------
    MetricSpec(
        "repro_archive_journal_seconds", HISTOGRAM,
        "Write-ahead journal record latency by phase (snapshot|catalog).",
        ("phase",), DEFAULT_SECONDS_BUCKETS,
    ),
    MetricSpec(
        "repro_archive_commit_seconds", HISTOGRAM,
        "Atomic catalog commit latency (journal intent through replace).",
        (), DEFAULT_SECONDS_BUCKETS,
    ),
    MetricSpec(
        "repro_archive_snapshots_total", COUNTER,
        "Ingested snapshots by outcome (added|replaced|unchanged).", ("outcome",),
    ),
    MetricSpec(
        "repro_archive_objects_total", COUNTER,
        "Certificate objects by write outcome (written|deduplicated).", ("outcome",),
    ),
    # -- archive query: cache and degraded-mode accounting ---------------
    MetricSpec(
        "repro_archive_cache_total", COUNTER,
        "Query LRU lookups by cache (manifest|snapshot) and outcome (hit|miss).",
        ("cache", "outcome"),
    ),
    MetricSpec(
        "repro_archive_degraded_skips_total", COUNTER,
        "Snapshots a degraded corpus query had to skip.", ("provider",),
    ),
    MetricSpec(
        "repro_archive_stale_detected_total", COUNTER,
        "Catalog-changed-under-live-query detections (raise|refresh).", ("action",),
    ),
    MetricSpec(
        "repro_archive_cache_heal_total", COUNTER,
        "Damaged result-cache entries quarantined on first read, per "
        "namespace.", ("namespace",),
    ),
    # -- watch: continuous-ingestion loop --------------------------------
    MetricSpec(
        "repro_watch_cycle_seconds", HISTOGRAM,
        "Simulated-clock duration of one watch cycle.", (), DEFAULT_SECONDS_BUCKETS,
    ),
    MetricSpec(
        "repro_watch_breaker_state", GAUGE,
        "Per-origin circuit breaker state (0 closed, 1 half-open, 2 open).",
        ("origin",),
    ),
    MetricSpec(
        "repro_watch_delta_snapshots_total", COUNTER,
        "Delta snapshots per origin by outcome (ingested|quarantined|deferred).",
        ("origin", "outcome"),
    ),
    MetricSpec(
        "repro_archive_index_updates_total", COUNTER,
        "Index maintenance at commit by mode (delta|rebuild).", ("mode",),
    ),
    # -- serving: the trust-query daemon ---------------------------------
    MetricSpec(
        "repro_serving_request_seconds", HISTOGRAM,
        "Wall time of one served operation (trusted_on|ever_shipped|"
        "snapshot_at|diff|batch).", ("op",), DEFAULT_SECONDS_BUCKETS,
    ),
    MetricSpec(
        "repro_serving_requests_total", COUNTER,
        "Served operations by outcome (ok|error).", ("op", "outcome"),
    ),
    MetricSpec(
        "repro_serving_batch_fingerprints", HISTOGRAM,
        "Fingerprints per trusted_on batch request.", ("op",),
        (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0),
    ),
    MetricSpec(
        "repro_serving_in_flight", GAUGE,
        "Requests currently being handled by this worker.", (),
    ),
    MetricSpec(
        "repro_serving_remaps_total", COUNTER,
        "Catalog-hash staleness detections that remapped the index "
        "mid-serve (no restart).", (),
    ),
    MetricSpec(
        "repro_serving_worker_requests_total", COUNTER,
        "Requests handled per pre-forked worker.", ("worker",),
    ),
    MetricSpec(
        "repro_serving_shed_total", COUNTER,
        "Requests shed (503 + Retry-After) over the in-flight admission "
        "limit, per worker.", ("worker",),
    ),
    MetricSpec(
        "repro_serving_deadline_total", COUNTER,
        "Batch slots answered 'deadline budget exhausted' instead of "
        "running.", ("op",),
    ),
    MetricSpec(
        "repro_serving_worker_restarts_total", COUNTER,
        "Dead workers re-forked by the fleet supervisor, per slot.",
        ("slot",),
    ),
    MetricSpec(
        "repro_serving_fleet_degraded", GAUGE,
        "1 while any worker slot has tripped its restart budget "
        "(crash storm), else 0.", (),
    ),
    MetricSpec(
        "repro_serving_drain_seconds", HISTOGRAM,
        "Wall time of the drain -> reap -> force-kill stop sequence.",
        (), DEFAULT_SECONDS_BUCKETS,
    ),
    # -- analysis: stage latency -----------------------------------------
    MetricSpec(
        "repro_analysis_stage_seconds", HISTOGRAM,
        "Analysis stage wall time (incidence|sparse_incidence|distance|"
        "blocked_distance|smacof|landmark_mds).",
        ("stage",), DEFAULT_SECONDS_BUCKETS,
    ),
    # -- simulation: corpus/population synthesis -------------------------
    MetricSpec(
        "repro_simulation_stage_seconds", HISTOGRAM,
        "Simulation stage wall time (population).",
        ("stage",), DEFAULT_SECONDS_BUCKETS,
    ),
    # -- scenario: the what-if incident engine ---------------------------
    MetricSpec(
        "repro_scenario_chains_total", COUNTER,
        "Workload chains verified across the grid by outcome (valid|invalid).",
        ("outcome",),
    ),
    MetricSpec(
        "repro_scenario_cache_total", COUNTER,
        "Per-cell result-cache lookups by outcome (hit|miss|skip).", ("outcome",),
    ),
    MetricSpec(
        "repro_scenario_stage_seconds", HISTOGRAM,
        "Scenario engine stage wall time (compile|grid|validate).",
        ("stage",), DEFAULT_SECONDS_BUCKETS,
    ),
    MetricSpec(
        "repro_scenario_pool_workers", GAUGE,
        "Process-pool size of the last scenario sweep (1 = serial).", (),
    ),
    MetricSpec(
        "repro_scenario_redispatch_total", COUNTER,
        "Chunk re-dispatches after pool-worker death by outcome "
        "(requeued|exhausted).", ("outcome",),
    ),
    # -- bench: the regression suites share this registry ----------------
    MetricSpec(
        "repro_bench_section_seconds", GAUGE,
        "Best-of-rounds wall time of one bench suite section.", ("suite", "section"),
    ),
)

#: name -> spec, the lookup instrumentation sites use.
SPECS: dict[str, MetricSpec] = {spec.name: spec for spec in METRICS}


def duplicate_names() -> list[str]:
    """Public metric names declared more than once (must be empty)."""
    seen: set[str] = set()
    duplicates: list[str] = []
    for spec in METRICS:
        if spec.name in seen:
            duplicates.append(spec.name)
        seen.add(spec.name)
    return duplicates
