"""Render a ``--metrics-out`` dump as the ``obs report`` summary.

The input is the JSON document :meth:`repro.obs.runtime.Telemetry.dump`
writes: a metrics snapshot plus any captured root-span trees.  The
report answers the operational questions the layer exists for: where
did the time go per stage, what failed and where, and are the caches
earning their keep.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ObservabilityError


def load_dump(path: Path | str) -> dict:
    """Read and validate a metrics dump written by ``--metrics-out``."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise ObservabilityError(f"no metrics file at {path}") from exc
    except ValueError as exc:
        raise ObservabilityError(f"metrics file {path} is not valid JSON: {exc}") from exc
    if isinstance(payload, list):  # bare registry snapshot
        payload = {"schema": 1, "metrics": payload, "spans": []}
    if not isinstance(payload, dict) or "metrics" not in payload:
        raise ObservabilityError(f"metrics file {path} has no 'metrics' section")
    metrics = payload["metrics"]
    if not isinstance(metrics, list) or not all(isinstance(f, dict) for f in metrics):
        raise ObservabilityError(
            f"metrics file {path} is malformed: 'metrics' must be a list of metric families"
        )
    spans = payload.get("spans", [])
    if not isinstance(spans, list):
        raise ObservabilityError(
            f"metrics file {path} is malformed: 'spans' must be a list of span trees"
        )
    return payload


def _series(metrics: list[dict], name: str) -> list[dict]:
    for family in metrics:
        if family.get("name") == name:
            return family.get("series", [])
    return []


def _fmt_seconds(seconds: float) -> str:
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _histogram_rows(series: list[dict], label: str) -> list[tuple]:
    rows = []
    for entry in series:
        count = entry["count"]
        total = entry["sum"]
        mean = total / count if count else 0.0
        rows.append(
            (entry["labels"].get(label, "-"), count, _fmt_seconds(mean), _fmt_seconds(total))
        )
    return rows


def _counter_matrix(series: list[dict], row_label: str, col_label: str) -> dict[str, dict[str, float]]:
    matrix: dict[str, dict[str, float]] = {}
    for entry in series:
        row = entry["labels"].get(row_label, "-")
        col = entry["labels"].get(col_label, "-")
        matrix.setdefault(row, {})[col] = matrix.setdefault(row, {}).get(col, 0) + entry["value"]
    return matrix


def _span_aggregate(spans: list[dict]) -> dict[str, tuple[int, float, int]]:
    """name -> (count, total duration, errors), over every span in every tree."""
    totals: dict[str, tuple[int, float, int]] = {}
    def visit(node: dict) -> None:
        count, duration, errors = totals.get(node["name"], (0, 0.0, 0))
        totals[node["name"]] = (
            count + 1,
            duration + node.get("duration", 0.0),
            errors + (1 if node.get("status") == "error" else 0),
        )
        for child in node.get("children", ()):
            visit(child)
    for tree in spans:
        visit(tree)
    return totals


def report_lines(dump: dict) -> list[str]:
    """The full ``obs report`` rendering, one output line per entry.

    A structurally-malformed dump (series entries missing ``count`` /
    ``labels``, non-dict spans, ...) surfaces as
    :class:`~repro.errors.ObservabilityError` — the CLI's central error
    mapping turns that into a one-line stderr message instead of a
    traceback.
    """
    try:
        return _report_lines(dump)
    except (KeyError, TypeError, AttributeError, IndexError, ValueError) as exc:
        raise ObservabilityError(
            f"metrics dump is malformed ({exc.__class__.__name__}: {exc})"
        ) from exc


def _report_lines(dump: dict) -> list[str]:
    from repro.analysis.report import render_table

    metrics = dump["metrics"]
    lines: list[str] = []

    scrape = _series(metrics, "repro_collection_scrape_seconds")
    if scrape:
        lines.append(render_table(
            ("Provider", "Scrapes", "Mean", "Total"),
            _histogram_rows(scrape, "provider"),
            title="Per-provider scrape latency",
        ))
    tags = _counter_matrix(_series(metrics, "repro_collection_tags_total"), "provider", "status")
    if tags:
        statuses = ("ok", "salvaged", "quarantined", "duplicate")
        rows = [
            (provider, *(int(tags[provider].get(s, 0)) for s in statuses))
            for provider in sorted(tags)
        ]
        lines.append(render_table(
            ("Provider", "OK", "Salvaged", "Quarantined", "Duplicate"),
            rows, title="Collection outcomes",
        ))
    retries = _series(metrics, "repro_collection_retries_total")
    if any(entry["value"] for entry in retries):
        for entry in retries:
            if entry["value"]:
                lines.append(
                    f"retries: {entry['labels'].get('provider', '-')} "
                    f"x{int(entry['value'])}"
                )

    parses = _counter_matrix(_series(metrics, "repro_formats_parse_total"), "codec", "outcome")
    if parses:
        seconds = {
            entry["labels"].get("codec", "-"): entry
            for entry in _series(metrics, "repro_formats_parse_seconds")
        }
        rows = []
        for codec in sorted(parses):
            ok = int(parses[codec].get("ok", 0))
            errors = int(parses[codec].get("error", 0))
            timing = seconds.get(codec)
            mean = (timing["sum"] / timing["count"]) if timing and timing["count"] else 0.0
            rows.append((codec, ok, errors, _fmt_seconds(mean)))
        lines.append(render_table(
            ("Codec", "OK", "Errors", "Mean parse"), rows, title="Codec parses",
        ))

    journal = _series(metrics, "repro_archive_journal_seconds")
    commit = _series(metrics, "repro_archive_commit_seconds")
    if journal or commit:
        rows = _histogram_rows(journal, "phase")
        for entry in commit:
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            rows.append(("commit", count, _fmt_seconds(mean), _fmt_seconds(entry["sum"])))
        lines.append(render_table(
            ("Phase", "Records", "Mean", "Total"), rows, title="Archive journal/commit",
        ))
    snapshots = _counter_matrix(_series(metrics, "repro_archive_snapshots_total"), "outcome", "outcome")
    if snapshots:
        summary = ", ".join(
            f"{int(values.get(outcome, 0))} {outcome}"
            for outcome, values in sorted(snapshots.items())
        )
        lines.append(f"ingest snapshots: {summary}")

    caches = _counter_matrix(_series(metrics, "repro_archive_cache_total"), "cache", "outcome")
    if caches:
        rows = []
        for cache in sorted(caches):
            hits = int(caches[cache].get("hit", 0))
            misses = int(caches[cache].get("miss", 0))
            total = hits + misses
            rate = f"{hits / total * 100:.1f}%" if total else "-"
            rows.append((cache, hits, misses, rate))
        lines.append(render_table(
            ("Cache", "Hits", "Misses", "Hit rate"), rows, title="Query cache",
        ))

    skips = _series(metrics, "repro_archive_degraded_skips_total")
    for entry in skips:
        lines.append(
            f"degraded skips: {entry['labels'].get('provider', '-')} "
            f"x{int(entry['value'])}"
        )
    stale = _series(metrics, "repro_archive_stale_detected_total")
    for entry in stale:
        lines.append(
            f"stale catalog detected ({entry['labels'].get('action', '-')}): "
            f"x{int(entry['value'])}"
        )

    stages = _series(metrics, "repro_analysis_stage_seconds")
    if stages:
        lines.append(render_table(
            ("Stage", "Runs", "Mean", "Total"),
            _histogram_rows(stages, "stage"),
            title="Analysis stages",
        ))

    scenario_stages = _series(metrics, "repro_scenario_stage_seconds")
    if scenario_stages:
        lines.append(render_table(
            ("Stage", "Runs", "Mean", "Total"),
            _histogram_rows(scenario_stages, "stage"),
            title="Scenario stages",
        ))
    chains = _counter_matrix(_series(metrics, "repro_scenario_chains_total"), "outcome", "outcome")
    if chains:
        summary = ", ".join(
            f"{int(values.get(outcome, 0))} {outcome}"
            for outcome, values in sorted(chains.items())
        )
        lines.append(f"scenario chains: {summary}")
    scenario_cache = _counter_matrix(_series(metrics, "repro_scenario_cache_total"), "outcome", "outcome")
    if scenario_cache:
        summary = ", ".join(
            f"{int(values.get(outcome, 0))} {outcome}"
            for outcome, values in sorted(scenario_cache.items())
        )
        lines.append(f"scenario cell cache: {summary}")
    pool = _series(metrics, "repro_scenario_pool_workers")
    for entry in pool:
        lines.append(f"scenario pool workers: {int(entry['value'])}")

    bench = _series(metrics, "repro_bench_section_seconds")
    if bench:
        rows = [
            (
                entry["labels"].get("suite", "-"),
                entry["labels"].get("section", "-"),
                _fmt_seconds(entry["value"]),
            )
            for entry in bench
        ]
        lines.append(render_table(
            ("Suite", "Section", "Best-of-rounds"), rows, title="Bench sections",
        ))

    spans = dump.get("spans", [])
    totals = _span_aggregate(spans)
    if totals:
        rows = [
            (name, count, errors, _fmt_seconds(duration))
            for name, (count, duration, errors) in sorted(
                totals.items(), key=lambda kv: -kv[1][1]
            )
        ]
        lines.append(render_table(
            ("Span", "Count", "Errors", "Total time"),
            rows, title=f"Trace spans ({len(spans)} root trees)",
        ))

    if not lines:
        lines.append("no recognized metrics in dump (empty session?)")
    return lines
