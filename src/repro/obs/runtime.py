"""The process-local telemetry context.

One :class:`Telemetry` (registry + tracer + clock) is active per
process.  Product code reaches it through :func:`get_telemetry` —
never by holding a reference across calls, so a test or a CLI run can
swap in a fresh context and see exactly its own signals.

:func:`telemetry_session` is the swap: a context manager installing a
fresh ``Telemetry`` (optionally with a simulated clock and/or a trace
exporter) and restoring the previous one on exit.  The CLI uses it for
``--metrics-out``; tier-1 tests use it with
:class:`~repro.collection.retry.SimulatedClock` so every duration and
span in the session is deterministic.

The default context has no exporter (root spans are dropped on
completion) and a live registry — instrumentation is always on, and
costs only a few dict operations per already-chunky operation
(artifact parse, snapshot ingest, catalog commit).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Clock, Tracer, clock_of


class Telemetry:
    """One observability context: metrics registry, tracer, clock."""

    def __init__(self, *, clock: Clock | None = None, exporter=None):
        self.clock: Clock = clock or time.perf_counter
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=self.clock, exporter=exporter)

    @property
    def exporter(self):
        return self.tracer.exporter

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def dump(self) -> dict:
        """The whole session as one JSON-serializable document.

        ``metrics`` is the registry snapshot; ``spans`` the completed
        root-span trees when the exporter kept them (in-memory
        exporter), else an empty list.
        """
        trees = getattr(self.exporter, "trees", None)
        return {
            "schema": 1,
            "metrics": self.registry.to_dict(),
            "spans": list(trees) if trees is not None else [],
        }


_lock = threading.Lock()
_active = Telemetry()


def get_telemetry() -> Telemetry:
    """The currently active telemetry context."""
    return _active


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as the active context; returns the previous one."""
    global _active
    with _lock:
        previous = _active
        _active = telemetry
    return previous


@contextmanager
def telemetry_session(*, clock: Clock | None = None, simulated=None, exporter=None):
    """A fresh, isolated telemetry context for one CLI run or test.

    ``simulated`` accepts anything with a ``now`` attribute (a
    ``SimulatedClock``) as shorthand for ``clock=clock_of(simulated)``.
    """
    if simulated is not None:
        if clock is not None:
            raise ValueError("pass either clock or simulated, not both")
        clock = clock_of(simulated)
    session = Telemetry(clock=clock, exporter=exporter)
    previous = set_telemetry(session)
    try:
        yield session
    finally:
        set_telemetry(previous)
