"""Trace exporters: where completed root-span trees go.

Every exporter receives one JSON-serializable dict per completed root
span (the whole nested tree) via ``export(tree)``:

- :class:`InMemoryExporter` — keeps trees in a list; what tests and
  ``--metrics-out`` use.
- :class:`JsonLinesExporter` — appends one JSON line per tree to a
  file path, opened lazily so constructing it is free.
- :class:`StderrExporter` — one JSON line per tree to stderr, for
  ad-hoc debugging of a live run.

``json.dumps(sort_keys=True)`` keeps the line format deterministic, so
exported traces under a simulated clock are stable byte-for-byte.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path


def tree_to_json_line(tree: dict) -> str:
    """One root-span tree as its canonical JSON line (no newline)."""
    return json.dumps(tree, sort_keys=True, separators=(",", ":"))


class InMemoryExporter:
    """Collects exported trees in memory (bounded to ``capacity``)."""

    def __init__(self, capacity: int = 10_000):
        self.capacity = capacity
        self.trees: list[dict] = []
        self.dropped = 0
        self._lock = threading.Lock()

    def export(self, tree: dict) -> None:
        with self._lock:
            if len(self.trees) >= self.capacity:
                self.dropped += 1
                return
            self.trees.append(tree)

    def json_lines(self) -> list[str]:
        with self._lock:
            return [tree_to_json_line(tree) for tree in self.trees]


class JsonLinesExporter:
    """Appends each tree as one JSON line to ``path``."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._lock = threading.Lock()

    def export(self, tree: dict) -> None:
        line = tree_to_json_line(tree) + "\n"
        with self._lock:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line)


class StderrExporter:
    """One JSON line per tree to stderr."""

    def __init__(self, stream=None):
        self.stream = stream
        self._lock = threading.Lock()

    def export(self, tree: dict) -> None:
        stream = self.stream if self.stream is not None else sys.stderr
        with self._lock:
            print(tree_to_json_line(tree), file=stream)


def read_json_lines(path: Path | str) -> list[dict]:
    """Parse a JSON-lines trace file back into tree dicts."""
    trees = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            trees.append(json.loads(line))
    return trees
