"""The ``repro-roots`` command line interface.

Subcommands map one-to-one onto the paper's experiments::

    repro-roots dataset              # Table 2
    repro-roots user-agents          # Table 1
    repro-roots hygiene              # Table 3
    repro-roots removals             # Table 4
    repro-roots nss-removals         # Table 7
    repro-roots exclusives           # Table 6
    repro-roots families             # Figure 1 (clusters + MDS stress)
    repro-roots ecosystem            # Figure 2
    repro-roots staleness            # Figure 3
    repro-roots deviations           # Figure 4
    repro-roots software             # Table 5
    repro-roots publish PROVIDER DIR # write native artifacts to disk
    repro-roots scrape PROVIDER DIR  # parse artifacts back
    repro-roots collect              # end-to-end collection (+ fault injection)
    repro-roots watch DIR            # continuous ingestion: checkpointed watch loop
    repro-roots serve DIR            # batched trust-query daemon over the archive
    repro-roots bench                # perf-regression harness (BENCH_ordination.json)
    repro-roots bench-scale          # population-scale harness (BENCH_scale.json):
                                     #   synthetic corpus, blocked distances,
                                     #   landmark MDS
    repro-roots archive ...          # on-disk archive: ingest|query|diff|verify|gc|
                                     #   repair|bench|bench-ingest|bench-robustness|
                                     #   bench-serving
    repro-roots scenario ...         # what-if engine: run|diff|report|bench over an
                                     #   archive (distrust/remove/revoke edits ->
                                     #   population impact)
    repro-roots obs report FILE      # render a --metrics-out telemetry dump

Every subcommand accepts ``--metrics-out PATH`` to capture the run's
telemetry (metrics + trace spans) as JSON for ``obs report``.

Every experiment regenerates deterministically from the built-in seed.
Errors from the collection, validation, store, and archive layers exit
with status 1 and a one-line ``error:`` message instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import date
from pathlib import Path

from repro.analysis import (
    cluster_families,
    collect_snapshots,
    corpus_classifier,
    deviation_report,
    distance_matrix,
    exclusives_report,
    find_outliers,
    hygiene_report,
    kruskal_stress,
    nss_removal_report,
    rank_by_hygiene,
    render_table,
    response_report,
    smacof,
    staleness_report,
)
from repro.collection import scrape_history, write_tree
from repro.collection.sources import SourceRepository, read_tree
from repro.errors import (
    ArchiveError,
    CollectionError,
    ObservabilityError,
    StoreError,
    ValidationError,
)
from repro.obs.export import InMemoryExporter
from repro.obs.runtime import telemetry_session
from repro.simulation import default_corpus
from repro.store import NSS_DERIVATIVES, PROVIDERS, TrustPurpose
from repro.useragents import (
    POPULATION,
    coverage_fraction,
    sample_top_200,
    surveyed_counts,
    trace_user_agents,
)
from repro.useragents.software import SOFTWARE


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    handler = globals()[f"_cmd_{args.command.replace('-', '_')}"]
    try:
        result = _run_with_telemetry(handler, args)
    except (ArchiveError, CollectionError, ObservabilityError, StoreError, ValidationError) as exc:
        # Operational failures (unscrapable origin, corrupt archive,
        # invalid chain input) are user-facing outcomes, not bugs: one
        # line on stderr and a nonzero exit, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return result if isinstance(result, int) else 0


def _run_with_telemetry(handler, args):
    """Run a subcommand, capturing its telemetry when ``--metrics-out`` asks.

    The whole handler runs inside an isolated :func:`telemetry_session`
    with an in-memory trace exporter; the session dump is written even
    when the handler fails, so a crashed run still leaves its metrics
    behind for ``obs report``.
    """
    metrics_out: Path | None = getattr(args, "metrics_out", None)
    if metrics_out is None:
        return handler(args)
    with telemetry_session(exporter=InMemoryExporter()) as telemetry:
        try:
            return handler(args)
        finally:
            metrics_out.write_text(
                json.dumps(telemetry.dump(), indent=2, sort_keys=True) + "\n"
            )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-roots",
        description="Tracing Your Roots (IMC 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command")
    for name, help_text in (
        ("dataset", "Table 2: dataset summary"),
        ("user-agents", "Table 1: top-200 UA coverage"),
        ("hygiene", "Table 3: root store hygiene"),
        ("removals", "Table 4: high-severity removal response lags"),
        ("nss-removals", "Table 7: NSS removal catalog"),
        ("exclusives", "Table 6: program-exclusive roots"),
        ("families", "Figure 1: ordination clusters"),
        ("ecosystem", "Figure 2: inverted pyramid"),
        ("staleness", "Figure 3: derivative staleness"),
        ("deviations", "Figure 4: derivative deviation taxonomy"),
        ("software", "Table 5: software root store survey"),
        ("purposes", "extension: multi-purpose store exposure"),
        ("cross-sign", "extension: the Certinomis/StartCom resurrection"),
        ("minimize", "extension: minimal root set over Zipf traffic"),
        ("agility", "extension: release cadence and projected exposure"),
        ("lint", "extension: BR lint census over the root programs"),
        ("scorecard", "extension: composite root program scorecard"),
    ):
        sub.add_parser(name, help=help_text)
    validate = sub.add_parser(
        "validate", help="validate a synthetic leaf against every store at a date"
    )
    validate.add_argument("domain", help="DNS name for the synthetic leaf")
    validate.add_argument("--issuer", default="common-d2", help="catalog slug of the issuing root")
    validate.add_argument("--date", default="2020-06-01", help="validation date (YYYY-MM-DD)")
    validate.add_argument("--issued", default="2020-01-01", help="leaf notBefore (YYYY-MM-DD)")
    publish = sub.add_parser("publish", help="write a provider's native artifacts to disk")
    publish.add_argument("provider", choices=sorted(PROVIDERS))
    publish.add_argument("directory", type=Path)
    publish.add_argument("--last", type=int, default=1, help="how many recent snapshots")
    scrape = sub.add_parser("scrape", help="parse a published artifact tree")
    scrape.add_argument("provider", choices=sorted(PROVIDERS))
    scrape.add_argument("directory", type=Path)
    collect = sub.add_parser(
        "collect",
        help="publish every provider to a simulated origin and scrape it back, "
        "optionally injecting seeded faults",
    )
    mode = collect.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict", dest="strict", action="store_true",
        help="fail fast on the first collection error (default)",
    )
    mode.add_argument(
        "--lenient", dest="strict", action="store_false",
        help="quarantine failed snapshots and salvage damaged artifacts",
    )
    collect.set_defaults(strict=True)
    collect.add_argument(
        "--report", type=Path, default=None, metavar="PATH",
        help="write the CollectionReport as JSON to PATH",
    )
    collect.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="R",
        help="inject seeded faults into this fraction of tags (0 disables)",
    )
    collect.add_argument(
        "--fault-seed", default="collect", metavar="SEED",
        help="seed for the deterministic fault plan",
    )
    collect.add_argument(
        "--providers", nargs="+", default=None, choices=sorted(PROVIDERS), metavar="P",
        help="restrict collection to these providers",
    )
    collect.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="scrape each provider's tags on a pool of N threads "
        "(output is deterministic and identical to serial)",
    )
    collect.add_argument(
        "--archive", type=Path, default=None, metavar="DIR",
        help="persist collected histories into the on-disk archive at DIR "
        "as scraping completes (created if missing)",
    )
    watch = sub.add_parser(
        "watch",
        help="supervised continuous ingestion: poll every origin, ingest new tags "
        "into the archive at DIR, checkpoint, repeat for a bounded cycle count",
    )
    watch.add_argument("directory", type=Path, metavar="DIR")
    watch.add_argument(
        "--cycles", type=int, default=3, metavar="N",
        help="bounded number of watch cycles to run (default: 3)",
    )
    watch.add_argument(
        "--hold-back", type=int, default=2, metavar="K",
        help="tags per origin initially unpublished; one more is revealed "
        "before each later cycle (default: 2)",
    )
    watch.add_argument(
        "--providers", nargs="+", default=None, choices=sorted(PROVIDERS), metavar="P",
        help="restrict the watch to these providers",
    )
    watch.add_argument(
        "--ct-logs", nargs="+", default=["argon"], metavar="LOG",
        help="also watch these simulated CT accepted-roots feeds (default: argon)",
    )
    watch.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="R",
        help="inject seeded faults into this fraction of tags (0 disables)",
    )
    watch.add_argument(
        "--fault-seed", default="watch", metavar="SEED",
        help="seed for the deterministic fault plan",
    )
    watch.add_argument(
        "--report", type=Path, default=None, metavar="PATH",
        help="write the WatchReport as JSON to PATH",
    )
    watch.add_argument(
        "--force-unlock", action="store_true",
        help="break a stale writer lock during startup repair even if its "
        "holder appears alive",
    )
    serve = sub.add_parser(
        "serve",
        help="serve batched trust queries over the archive at DIR from "
        "pre-forked workers sharing the mmap'd binary index",
    )
    serve.add_argument("directory", type=Path, metavar="DIR")
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="HOST",
        help="address to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="port to bind (default: 0 = pick a free port and print it)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="pre-forked worker processes (default: 2)",
    )
    serve.add_argument(
        "--batch-limit", type=int, default=1024, metavar="N",
        help="most fingerprints one batch request may probe (default: 1024)",
    )
    serve.add_argument(
        "--check", action="store_true",
        help="start, verify /healthz, print the address, and exit "
        "(CI smoke instead of serving forever)",
    )
    serve.add_argument(
        "--supervise", action="store_true",
        help="restart dead workers (per-slot backoff and a restart budget; "
        "a crash storm trips the slot and /healthz reports degraded)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="how long a SIGTERM drain may spend finishing in-flight "
        "requests before stragglers are force-killed (default: 5)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=0, metavar="N",
        help="per-worker in-flight admission limit; over it requests are "
        "shed with 503 + Retry-After (default: 0 = unbounded)",
    )
    serve.add_argument(
        "--request-deadline", type=float, default=0.0, metavar="SECONDS",
        help="per-request batch deadline budget; slots past it answer a "
        "typed error instead of stalling the batch (default: 0 = none)",
    )
    bench = sub.add_parser(
        "bench",
        help="time the hot paths (distance matrix, MDS, interning, scraping) "
        "and write a perf-regression baseline",
    )
    bench.add_argument(
        "--output", type=Path, default=Path("BENCH_ordination.json"), metavar="PATH",
        help="where to write the JSON baseline (default: BENCH_ordination.json)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="tiny dataset, one round (also via REPRO_BENCH_SMOKE=1)",
    )
    bench.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="thread-pool width for the parallel-scrape section",
    )
    bench.add_argument(
        "--rounds", type=int, default=1, metavar="R",
        help="rounds per measurement (best-of-R is reported)",
    )
    bench_scale = sub.add_parser(
        "bench-scale",
        help="population-scale benchmarks: synthesize + ingest a ≥5k-snapshot "
        "corpus, blocked-vs-dense distance equivalence and memory, "
        "landmark MDS vs full SMACOF (BENCH_scale.json)",
    )
    bench_scale.add_argument(
        "--output", type=Path, default=Path("BENCH_scale.json"), metavar="PATH",
        help="where to write the JSON baseline (default: BENCH_scale.json)",
    )
    bench_scale.add_argument(
        "--smoke", action="store_true",
        help="tiny population, cheap sections (also via REPRO_BENCH_SMOKE=1)",
    )
    bench_scale.add_argument(
        "--providers", type=int, default=None, metavar="N",
        help="synthetic-provider count override (default: 3 smoke / 260 full)",
    )
    bench_scale.add_argument(
        "--landmarks", type=int, default=None, metavar="K",
        help="landmark count for the MDS comparison (default: 8 smoke / 96 full)",
    )
    _add_archive_parser(sub)
    _add_scenario_parser(sub)
    obs = sub.add_parser(
        "obs", help="inspect telemetry dumps written by --metrics-out"
    )
    osub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = osub.add_parser(
        "report", help="render a telemetry dump as human-readable tables"
    )
    obs_report.add_argument("path", type=Path, metavar="FILE")
    _add_metrics_out_flags(parser)
    return parser


def _add_metrics_out_flags(parser: argparse.ArgumentParser) -> None:
    """Give every leaf subcommand the ``--metrics-out`` flag.

    Walks the subparser tree so a command added later is covered
    automatically — the flag is a property of the CLI, not of any one
    handler.
    """
    subparser_actions = [
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ]
    if not subparser_actions:
        parser.add_argument(
            "--metrics-out", type=Path, default=None, metavar="PATH",
            help="write this run's telemetry (metrics + trace spans) as JSON to PATH",
        )
        return
    for action in subparser_actions:
        seen: set[int] = set()
        for child in action.choices.values():
            if id(child) in seen:  # aliases share one parser object
                continue
            seen.add(id(child))
            _add_metrics_out_flags(child)


def _add_archive_parser(sub) -> None:
    archive = sub.add_parser(
        "archive",
        help="content-addressed on-disk archive: ingest, query, diff, verify, gc, "
        "repair, bench, bench-robustness, bench-serving",
    )
    asub = archive.add_subparsers(dest="archive_command", required=True)

    ingest = asub.add_parser(
        "ingest", help="ingest the seeded corpus (or a provider subset) into DIR"
    )
    ingest.add_argument("directory", type=Path, metavar="DIR")
    ingest.add_argument(
        "--providers", nargs="+", default=None, choices=sorted(PROVIDERS), metavar="P",
        help="restrict ingest to these providers",
    )

    query = asub.add_parser(
        "query", help="point-in-time trust lookups and snapshot reconstruction from DIR"
    )
    query.add_argument("directory", type=Path, metavar="DIR")
    query.add_argument(
        "--fingerprint", default=None, metavar="F",
        help="certificate SHA-256 (hex); a unique prefix is accepted",
    )
    query.add_argument(
        "--provider", default=None, metavar="P",
        help="reconstruct this provider's snapshot instead of a trust lookup",
    )
    query.add_argument(
        "--date", default=None, metavar="YYYY-MM-DD",
        help="the point in time to resolve (default: each provider's latest)",
    )
    query.add_argument(
        "--purpose", default="server-auth",
        choices=[p.value for p in TrustPurpose] + ["any"],
        help="trust purpose for membership (default: server-auth; 'any' = raw presence)",
    )
    query.add_argument(
        "--degraded", action="store_true",
        help="serve what is intact from a damaged archive, reporting what is not",
    )

    diff = asub.add_parser("diff", help="fingerprint-set diff between two archived stores")
    diff.add_argument("directory", type=Path, metavar="DIR")
    diff.add_argument("provider_a", metavar="PROVIDER_A")
    diff.add_argument("provider_b", metavar="PROVIDER_B")
    diff.add_argument(
        "--date", default=None, metavar="YYYY-MM-DD",
        help="compare the snapshots in force at this date (default: latest)",
    )

    verify = asub.add_parser(
        "verify", help="integrity pass: re-hash objects, cross-check catalog, list orphans"
    )
    verify.add_argument("directory", type=Path, metavar="DIR")

    gc = asub.add_parser("gc", help="delete orphan objects, manifests, and stale temp files")
    gc.add_argument("directory", type=Path, metavar="DIR")
    gc.add_argument("--dry-run", action="store_true", help="report only, delete nothing")

    repair = asub.add_parser(
        "repair",
        help="recover from a crashed ingest: roll journaled transactions forward or "
        "back, quarantine corruption, rebuild indexes",
    )
    repair.add_argument("directory", type=Path, metavar="DIR")
    repair.add_argument(
        "--force-unlock", action="store_true",
        help="break the writer lock even if its holder appears alive",
    )

    bench = asub.add_parser(
        "bench", help="archive ingest/read benchmarks (BENCH_archive.json)"
    )
    bench.add_argument(
        "--output", type=Path, default=Path("BENCH_archive.json"), metavar="PATH",
        help="where to write the JSON baseline (default: BENCH_archive.json)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="tiny dataset, one round (also via REPRO_BENCH_SMOKE=1)",
    )
    bench.add_argument(
        "--rounds", type=int, default=1, metavar="R",
        help="rounds per measurement (best-of-R is reported)",
    )

    ingest_bench = asub.add_parser(
        "bench-ingest",
        help="incremental vs. full ingest benchmarks (BENCH_ingest.json)",
    )
    ingest_bench.add_argument(
        "--output", type=Path, default=Path("BENCH_ingest.json"), metavar="PATH",
        help="where to write the JSON baseline (default: BENCH_ingest.json)",
    )
    ingest_bench.add_argument(
        "--smoke", action="store_true",
        help="tiny dataset, one round (also via REPRO_BENCH_SMOKE=1)",
    )
    ingest_bench.add_argument(
        "--rounds", type=int, default=1, metavar="R",
        help="rounds per measurement (best-of-R is reported)",
    )

    serving_bench = asub.add_parser(
        "bench-serving",
        help="binary-index cold start + daemon latency benchmarks "
        "(BENCH_serving.json)",
    )
    serving_bench.add_argument(
        "--output", type=Path, default=Path("BENCH_serving.json"), metavar="PATH",
        help="where to write the JSON baseline (default: BENCH_serving.json)",
    )
    serving_bench.add_argument(
        "--smoke", action="store_true",
        help="tiny dataset, one round (also via REPRO_BENCH_SMOKE=1)",
    )
    serving_bench.add_argument(
        "--rounds", type=int, default=None, metavar="R",
        help="rounds per cold-start measurement (best-of-R is reported)",
    )
    serving_bench.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="pre-forked daemon workers for the load section (default: 2)",
    )

    robustness = asub.add_parser(
        "bench-robustness",
        help="crash/recovery robustness benchmarks (BENCH_robustness.json)",
    )
    robustness.add_argument(
        "--output", type=Path, default=Path("BENCH_robustness.json"), metavar="PATH",
        help="where to write the JSON baseline (default: BENCH_robustness.json)",
    )
    robustness.add_argument(
        "--smoke", action="store_true",
        help="tiny dataset, one round (also via REPRO_BENCH_SMOKE=1)",
    )
    robustness.add_argument(
        "--rounds", type=int, default=1, metavar="R",
        help="rounds per measurement (best-of-R is reported)",
    )


def _add_scenario_parser(sub) -> None:
    scenario = sub.add_parser(
        "scenario",
        help="what-if incident engine: evaluate store edits (remove, "
        "distrust-after, revoke) against an archive and roll the broken "
        "chains up into population impact",
    )
    ssub = scenario.add_subparsers(dest="scenario_command", required=True)

    def add_selection(parser) -> None:
        source = parser.add_mutually_exclusive_group(required=True)
        source.add_argument(
            "--scenario", type=Path, default=None, metavar="FILE",
            help="load the scenario from a JSON file",
        )
        source.add_argument(
            "--incident", default=None, metavar="KEY",
            help="replay a registered incident's recorded response schedule "
            "(e.g. certinomis, wosign)",
        )
        source.add_argument(
            "--symantec", action="store_true",
            help="the built-in Symantec phased removal (distrust-after "
            "marking, then both removal batches)",
        )
        parser.add_argument(
            "--providers", nargs="+", default=None, metavar="P",
            help="evaluate only these providers (default: the scenario's, "
            "else every provider in the archive)",
        )
        parser.add_argument(
            "--dates", nargs="+", default=None, metavar="YYYY-MM-DD",
            help="evaluate on these dates (default: the scenario's, else "
            "offsets around each edit)",
        )

    def add_execution(parser) -> None:
        parser.add_argument("directory", type=Path, metavar="DIR")
        parser.add_argument(
            "--ingest", action="store_true",
            help="create DIR and ingest the seeded corpus first if the "
            "archive does not exist yet",
        )
        parser.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="evaluate grid cells on a pool of N processes "
            "(output is deterministic and identical to serial)",
        )
        parser.add_argument(
            "--no-cache", action="store_true",
            help="skip the per-cell result cache under DIR/cache/scenario",
        )
        parser.add_argument(
            "--chunk-retries", type=int, default=2, metavar="N",
            help="how many times a grid block whose pool worker died is "
            "re-dispatched (split in half per retry) before the sweep "
            "fails; output stays byte-identical to serial (default: 2)",
        )

    run = ssub.add_parser(
        "run", help="evaluate a scenario over the archive's (provider, date) grid"
    )
    add_execution(run)
    add_selection(run)
    run.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="write the canonical run JSON to PATH (for `scenario report`)",
    )
    run.add_argument(
        "--cells", action="store_true",
        help="also print the per-cell verdict table",
    )

    diff = ssub.add_parser(
        "diff",
        help="run baseline and scenario over the same grid and name which "
        "edits broke (or fixed) which chains",
    )
    add_execution(diff)
    add_selection(diff)

    report = ssub.add_parser(
        "report", help="render a run file written by `scenario run --output`"
    )
    report.add_argument("path", type=Path, metavar="FILE")
    report.add_argument(
        "--cells", action="store_true",
        help="also print the per-cell verdict table",
    )

    bench = ssub.add_parser(
        "bench",
        help="scenario-engine benchmarks: pool speedup + cache speedup "
        "(BENCH_scenario.json)",
    )
    bench.add_argument(
        "--output", type=Path, default=Path("BENCH_scenario.json"), metavar="PATH",
        help="where to write the JSON baseline (default: BENCH_scenario.json)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="tiny grid and workload, one round (also via REPRO_BENCH_SMOKE=1)",
    )
    bench.add_argument(
        "--rounds", type=int, default=1, metavar="R",
        help="rounds per measurement (best-of-R is reported)",
    )


def _cmd_dataset(_args) -> None:
    corpus = default_corpus()
    rows = []
    for row in corpus.dataset.summary_rows():
        history = corpus.dataset[row["provider"]]
        distinct = len({s.tls_fingerprints() for s in history})
        rows.append(
            (
                row["provider"],
                f"{row['from']:%Y-%m}",
                f"{row['to']:%Y-%m}",
                row["snapshots"],
                distinct,
                row["unique_roots"],
            )
        )
    print(render_table(
        ("Root store", "From", "To", "# SS", "# Uniq states", "# Uniq roots"),
        rows,
        title="Table 2: root store dataset",
    ))
    print(f"\nTotal snapshots: {corpus.dataset.total_snapshots()}")


def _cmd_user_agents(_args) -> None:
    uas = sample_top_200()
    shares = trace_user_agents(uas)
    rows = [(r.os, r.agent, r.versions, "yes" if r.included else "no") for r in POPULATION]
    print(render_table(("OS", "User agent", "# versions", "Included?"), rows,
                       title="Table 1: top-200 user agents"))
    print(f"\nCoverage: {coverage_fraction() * 100:.1f}%")
    for family, count in sorted(shares.by_family.items(), key=lambda kv: -kv[1]):
        print(f"  {family:10s} {count:4d} UAs ({count / shares.total * 100:.0f}%)")


def _cmd_hygiene(_args) -> None:
    corpus = default_corpus()
    rows = []
    report = hygiene_report(corpus.dataset)
    for row in report:
        rows.append(
            (
                row.provider,
                f"{row.average_size:.1f}",
                f"{row.average_expired:.1f}",
                _removal_label(row.md5_removal, row.md5_still_present),
                _removal_label(row.weak_rsa_removal, row.weak_rsa_still_present),
            )
        )
    print(render_table(("Root store", "Avg. size", "Avg. expired", "MD5", "1024-bit RSA"),
                       rows, title="Table 3: root store hygiene"))
    print("\nBest-to-worst hygiene:", " > ".join(rank_by_hygiene(report)))


def _removal_label(when: date | None, still: bool) -> str:
    if still:
        return "still trusted"
    if when is None:
        return "never present"
    return f"{when:%Y-%m}"


def _cmd_removals(_args) -> None:
    corpus = default_corpus()
    fps = {spec.slug: corpus.fingerprint(spec.slug) for spec in corpus.specs}
    revocations = {corpus.fingerprint(s): d for s, d in corpus.apple_revocations.items()}
    report = response_report(corpus.dataset, fps, revocations=revocations)
    for incident, rows in report.items():
        print(f"\n{incident}")
        print(render_table(
            ("Root store", "# certs", "Trusted until", "Lag (days)"),
            (
                (
                    r.provider,
                    r.certs_ever_trusted,
                    r.trusted_until or ("revoked*" if r.revoked_on else "still trusted"),
                    r.lag_label(),
                )
                for r in rows
            ),
        ))


def _cmd_nss_removals(_args) -> None:
    corpus = default_corpus()
    fps = {spec.slug: corpus.fingerprint(spec.slug) for spec in corpus.specs}
    rows = [
        (r.bugzilla_id, r.severity, r.removed_on, r.measured_certs, r.description)
        for r in nss_removal_report(corpus.dataset, fps)
    ]
    print(render_table(("Bugzilla ID", "Severity", "Removed on", "# certs", "Details"),
                       rows, title="Table 7: NSS root removals"))


def _cmd_exclusives(_args) -> None:
    corpus = default_corpus()

    def describe(fingerprint: str) -> str:
        spec = corpus.spec_for_fingerprint(fingerprint)
        return spec.note if spec else ""

    report = exclusives_report(corpus.dataset, describe=describe)
    for program in ("nss", "java", "apple", "microsoft"):
        roots = report.get(program, [])
        print(f"\n{program} ({len(roots)} exclusive)")
        for root in roots:
            print(f"  {root.fingerprint[:8]}  {root.organization:40s} {root.detail}")


def _cmd_families(_args) -> None:
    corpus = default_corpus()
    snapshots = collect_snapshots(corpus.dataset, since=date(2011, 1, 1))
    labelled = distance_matrix(snapshots)
    assignment = cluster_families(labelled)
    print(f"Figure 1: {assignment.cluster_count} clusters "
          f"(dendrogram cut at {assignment.cut_distance:.2f})")
    for cid in sorted(set(assignment.provider_family.values())):
        print(f"  {assignment.family_name(cid):10s} {', '.join(assignment.members(cid))}")
    result = smacof(labelled.matrix, dims=2)
    print(f"SMACOF: stress-1 {kruskal_stress(labelled.matrix, result.embedding):.3f} "
          f"after {result.iterations} iterations")
    print("Outlier snapshots (large consecutive churn):")
    for outlier in find_outliers(corpus.dataset):
        print(f"  {outlier.provider:8s} {outlier.taken_at} "
              f"{outlier.changed} of {outlier.store_size} roots changed")


def _cmd_ecosystem(_args) -> None:
    from repro.analysis import build_ecosystem_graph, pyramid_stats

    uas = sample_top_200()
    graph = build_ecosystem_graph(uas)
    stats = pyramid_stats(graph)
    print("Figure 2: the inverted pyramid")
    print(f"  user agents : {stats.user_agents} ({stats.attributed_user_agents} attributed)")
    print(f"  providers   : {stats.providers}")
    print(f"  programs    : {stats.programs}")
    print(f"  inverted    : {stats.inverted}")
    for program, count in sorted(stats.program_shares.items(), key=lambda kv: -kv[1]):
        print(f"    {program:10s} {count:4d} UAs ({count / stats.user_agents * 100:.0f}%)")


def _cmd_staleness(_args) -> None:
    corpus = default_corpus()
    rows = [
        (s.provider, f"{s.average:.2f}", f"{s.always_behind_fraction * 100:.0f}%")
        for s in staleness_report(corpus.dataset, NSS_DERIVATIVES)
    ]
    print(render_table(("Derivative", "Avg versions behind", "Time behind"),
                       rows, title="Figure 3: NSS derivative staleness"))


def _cmd_deviations(_args) -> None:
    corpus = default_corpus()
    classify = corpus_classifier(corpus)
    for series in deviation_report(corpus.dataset, NSS_DERIVATIVES, classify):
        totals = series.category_totals()
        label = ", ".join(f"{k}={v}" for k, v in sorted(totals.items()))
        print(f"{series.provider:12s} max +{series.max_added()} / -{series.max_removed()}  [{label}]")


def _cmd_software(_args) -> None:
    rows = [(str(s.kind), s.name, s.ships_root_store, s.details) for s in SOFTWARE]
    print(render_table(("Kind", "Name", "Root store?", "Details"), rows,
                       title="Table 5: popular OS & TLS software root stores"))
    for kind, (total, shipping) in surveyed_counts().items():
        print(f"  {kind}: {shipping}/{total} ship a root store")


def _cmd_purposes(_args) -> None:
    from repro.analysis import purpose_exposure_report

    corpus = default_corpus()
    providers = ("nss", "microsoft", "apple", "debian", "ubuntu", "alpine", "nodejs", "amazonlinux")
    for label, at in (("latest snapshots", None), ("2016-06 (pre TLS-only shift)", date(2016, 6, 1))):
        rows = [
            (r.provider, r.tls_roots, r.code_signing_roots, r.tls_overreach, r.code_signing_overreach)
            for r in purpose_exposure_report(corpus.dataset, providers, at=at)
        ]
        print(render_table(
            ("Store", "TLS", "Code-sign", "TLS overreach", "Code-sign overreach"),
            rows,
            title=f"Purpose exposure ({label})",
        ))
        print()


def _cmd_cross_sign(_args) -> None:
    from datetime import datetime, timezone

    from repro.verify import ChainValidator, cross_sign, issue_server_leaf, resurrection_window

    corpus = default_corpus()
    dataset = corpus.dataset
    bridge = cross_sign(
        corpus.specs_by_slug["startcom-ca"],
        corpus.specs_by_slug["certinomis-root"],
        corpus.mint,
        not_before=date(2018, 3, 1),
    )
    leaf = issue_server_leaf(
        corpus.specs_by_slug["startcom-ca"], corpus.mint, "resurrected.example",
        not_before=datetime(2018, 6, 1, tzinfo=timezone.utc),
    )
    store = dataset["nss"].at(date(2018, 9, 1))
    at = datetime(2018, 9, 1, tzinfo=timezone.utc)
    direct = ChainValidator(store=store).validate(leaf, at)
    bridged = ChainValidator(store=store, intermediates=[bridge]).validate(leaf, at)
    print("StartCom leaf under NSS (2018-09):")
    print(f"  direct path : {'valid' if direct.valid else direct.reason}")
    print(f"  via cross-sign: {'valid (anchor: ' + bridged.anchor.subject.common_name + ')' if bridged.valid else bridged.reason}")
    startcom = [corpus.fingerprint(s) for s in ("startcom-ca", "startcom-ca-g2", "startcom-ca-g3")]
    certinomis = corpus.fingerprint("certinomis-root")
    rows = []
    for provider in ("nss", "nodejs", "alpine", "debian", "android", "amazonlinux", "microsoft"):
        window = resurrection_window(dataset[provider], startcom, certinomis, date(2018, 3, 1))
        rows.append((provider, f"{window.exposure_days}{'+' if window.open_ended else ''}"))
    print(render_table(("Root store", "Bypass exposure (days)"), rows))


def _cmd_minimize(_args) -> None:
    from repro.analysis import minimal_root_set, zipf_traffic

    corpus = default_corpus()
    rows = []
    for provider in ("nss", "apple", "microsoft", "java"):
        snapshot = corpus.dataset[provider].latest()
        traffic = zipf_traffic(snapshot, seed=f"traffic-{provider}")
        for target in (0.9, 0.99):
            result = minimal_root_set(snapshot, traffic, target=target)
            rows.append(
                (provider, f"{target * 100:.0f}%", f"{result.selected_count}/{result.store_size}",
                 f"{result.unused_fraction * 100:.0f}%")
            )
    print(render_table(
        ("Store", "Coverage", "Roots needed", "Unused"),
        rows,
        title="Minimal root sets (greedy cover, Zipf traffic)",
    ))


def _cmd_agility(_args) -> None:
    from repro.analysis.agility import agility_report

    corpus = default_corpus()
    providers = ("nss", "microsoft", "apple", "alpine", "amazonlinux", "android",
                 "debian", "nodejs", "ubuntu")
    rows = [
        (
            p.provider,
            p.releases,
            f"{p.mean_gap:.0f}",
            f"{p.max_gap:.0f}",
            p.substantial_releases,
            f"{p.mean_substantial_gap:.0f}",
            f"{p.projected_response_days:.0f}",
        )
        for p in agility_report(corpus.dataset, providers)
    ]
    print(render_table(
        ("Provider", "Releases", "Mean gap (d)", "Max", "Substantial", "Subst. gap", "Projected exposure"),
        rows,
        title="Release agility",
    ))


def _cmd_scorecard(_args) -> None:
    from repro.analysis import scorecard

    corpus = default_corpus()
    fingerprints = {spec.slug: corpus.fingerprint(spec.slug) for spec in corpus.specs}
    rows = []
    for s in scorecard(corpus.dataset, fingerprints):
        rows.append(
            (
                s.program,
                f"{s.composite:.1f}",
                s.hygiene_rank,
                f"{s.substantial_gap_days:.0f}d",
                f"{s.mean_response_lag:.0f}d" if s.mean_response_lag is not None else "n/a",
                s.exclusive_roots,
                f"{s.lint_error_rate * 100:.0f}%",
            )
        )
    print(render_table(
        ("Program", "Composite", "Hygiene rank", "Cadence", "Mean lag", "Exclusives", "BR errors"),
        rows,
        title="Root program scorecard (1 = best)",
    ))


def _cmd_lint(_args) -> None:
    from repro.lint import lint_programs

    corpus = default_corpus()
    for when in (date(2016, 6, 1), date(2020, 6, 1)):
        rows = []
        for census in lint_programs(corpus.dataset, at=when):
            top = sorted(census.by_lint.items(), key=lambda kv: -kv[1])[:2]
            rows.append(
                (
                    census.provider,
                    census.roots,
                    f"{census.error_rate * 100:.1f}%",
                    f"{census.warning_rate * 100:.1f}%",
                    ", ".join(f"{lid} x{n}" for lid, n in top),
                )
            )
        print(render_table(
            ("Store", "Roots", "Errors", "Warnings", "Top findings"),
            rows,
            title=f"BR lint census at {when}",
        ))
        print()


def _cmd_validate(args) -> None:
    from datetime import datetime, timezone

    from repro.verify import ChainValidator, issue_server_leaf

    corpus = default_corpus()
    if args.issuer not in corpus.specs_by_slug:
        raise SystemExit(f"unknown catalog slug {args.issuer!r}")
    when = date.fromisoformat(args.date)
    issued = date.fromisoformat(args.issued)
    at = datetime(when.year, when.month, when.day, tzinfo=timezone.utc)
    leaf = issue_server_leaf(
        corpus.specs_by_slug[args.issuer], corpus.mint, args.domain,
        not_before=datetime(issued.year, issued.month, issued.day, tzinfo=timezone.utc),
    )
    print(f"Validating {args.domain} (issued {issued} by {args.issuer}) on {when}:")
    rows = []
    for provider in corpus.dataset.providers:
        store = corpus.dataset[provider].at(when)
        if store is None:
            rows.append((provider, "no store yet"))
            continue
        result = ChainValidator(store=store).validate(leaf, at)
        rows.append((provider, "ACCEPTED" if result.valid else f"rejected ({result.reason})"))
    print(render_table(("Root store", "Verdict"), rows))


def _cmd_publish(args) -> None:
    corpus = default_corpus()
    history = corpus.dataset[args.provider]
    from repro.collection.publish import snapshot_tree

    for snapshot in history.snapshots[-args.last:]:
        tree = snapshot_tree(snapshot)
        destination = args.directory / f"{snapshot.version}+{snapshot.taken_at:%Y%m%d}"
        write_tree(tree, destination)
        print(f"wrote {len(tree)} files to {destination}")


def _cmd_collect(args) -> None:
    from repro.collection import CollectionReport, FaultPlan, publish_history
    from repro.store.history import Dataset

    corpus = default_corpus()
    providers = args.providers or corpus.dataset.providers
    plan = FaultPlan(seed=args.fault_seed, rate=args.fault_rate) if args.fault_rate > 0 else None
    report = CollectionReport()
    collected = Dataset()
    writer = None
    if args.archive is not None:
        from repro.archive import Archive, ArchiveWriter

        writer = ArchiveWriter(Archive(args.archive, create=True))
    for provider in providers:
        origin = publish_history(corpus.dataset[provider])
        if plan is not None:
            origin = plan.instrument(origin, provider)
        history = scrape_history(
            provider, origin, strict=args.strict, report=report, workers=args.workers
        )
        collected.add_history(history)
        if writer is not None:
            writer.add_history(history)
    print(render_table(
        ("Provider", "Tags", "OK", "Salvaged", "Quarantined", "Retried", "Skipped entries"),
        report.summary_rows(),
        title="Collection report",
    ))
    counts = report.counts()
    mode = "strict" if args.strict else "lenient"
    print(
        f"\nCollected {collected.total_snapshots()} snapshots from "
        f"{len(providers)} providers in {mode} mode "
        f"({counts['salvaged']} salvaged, {counts['quarantined']} quarantined)."
    )
    if writer is not None:
        ingested = writer.commit()
        print(f"archived to {args.archive}: {ingested.summary()}")
    if args.report is not None:
        args.report.write_text(report.to_json())
        print(f"report written to {args.report}")


def _cmd_watch(args) -> None:
    from repro.archive import Archive
    from repro.collection import FaultPlan
    from repro.collection.faults import SimulatedClock
    from repro.collection.watch import Watcher, build_watch_world

    corpus = default_corpus()
    clock = SimulatedClock()
    plan = (
        FaultPlan(seed=args.fault_seed, rate=args.fault_rate, clock=clock)
        if args.fault_rate > 0
        else None
    )
    world = build_watch_world(
        corpus.dataset,
        providers=args.providers,
        ct_logs=tuple(args.ct_logs),
        hold_back=args.hold_back,
        fault_plan=plan,
    )
    archive = Archive(args.directory, create=True)
    watcher = Watcher(
        archive, world.origins, clock=clock, force_unlock=args.force_unlock
    )
    for number in range(args.cycles):
        if number:
            clock.sleep(watcher.policy.cycle_interval)
            world.advance()
        cycle = watcher.run_cycle()
        active = ", ".join(
            f"{o.origin}={o.status}" for o in cycle.outcomes if o.status != "idle"
        )
        print(
            f"cycle {cycle.number}: +{cycle.snapshots_ingested} snapshots"
            + (f"  [{active}]" if active else "  [all idle]")
        )
    report = watcher.report
    print(render_table(
        ("Origin", "Ingested", "Quarantined", "Deferred", "Last status"),
        report.summary_rows(),
        title="Watch report",
    ))
    print(
        f"\ntotal ingested: {report.total_ingested()} snapshots "
        f"over {len(report)} cycles"
    )
    print(f"catalog hash: {archive.catalog_hash()}")
    transitions = report.transitions()
    if transitions:
        print("breaker transitions:")
        for t in transitions:
            print(f"  t={t.at:.0f}s {t.from_state} -> {t.to_state} ({t.reason})")
    if args.report is not None:
        args.report.write_text(report.to_json() + "\n")
        print(f"report written to {args.report}")


def _cmd_serve(args) -> int | None:
    from repro.serving import ServingClient, ServingConfig, ServingDaemon

    daemon = ServingDaemon(
        ServingConfig(
            root=args.directory,
            host=args.host,
            port=args.port,
            workers=args.workers,
            batch_limit=args.batch_limit,
            supervise=args.supervise,
            drain_timeout=args.drain_timeout,
            max_in_flight=args.max_in_flight,
            request_deadline=args.request_deadline,
        )
    )
    host, port = daemon.start()
    try:
        with ServingClient(host, port) as client:
            health = client.health()
        print(f"serving {args.directory} at http://{host}:{port}")
        supervised = " supervised" if args.supervise else ""
        print(
            f"workers: {args.workers}{supervised} "
            f"(pids {' '.join(map(str, daemon.pids))})"
        )
        print(f"catalog hash: {health['catalog_hash']}")
        if args.check:
            print("health check ok")
            return 0
        print("endpoints: POST /v1/query, GET /healthz, GET /metrics (Ctrl-C stops)")
        daemon.wait()
    except KeyboardInterrupt:
        print("stopping")
    finally:
        daemon.stop()
    return 0


def _cmd_archive(args) -> int | None:
    handler = globals()[f"_cmd_archive_{args.archive_command.replace('-', '_')}"]
    return handler(args)


def _cmd_archive_ingest(args) -> None:
    from repro.archive import Archive, ingest_dataset

    corpus = default_corpus()
    archive = Archive(args.directory, create=True)
    report = ingest_dataset(archive, corpus.dataset, providers=args.providers)
    print(f"ingested into {args.directory}: {report.summary()}")
    print(f"catalog hash: {archive.catalog_hash()}")


def _parse_purpose(value: str) -> TrustPurpose | None:
    return None if value == "any" else TrustPurpose(value)


def _resolve_fingerprint(query, prefix: str) -> str:
    """Expand a unique fingerprint prefix against the archive index."""
    matches = [fp for fp in query.index.postings if fp.startswith(prefix)]
    if not matches:
        raise ArchiveError(f"no archived certificate matches fingerprint {prefix!r}")
    if len(matches) > 1:
        raise ArchiveError(
            f"fingerprint prefix {prefix!r} is ambiguous ({len(matches)} matches)"
        )
    return matches[0]


def _report_degraded(query) -> None:
    """After a degraded-mode query: say what could not be served."""
    if not query.allow_degraded:
        return
    for provider, version, reason in query.skipped:
        print(f"skipped {provider}@{version}: {reason}")
    for record in query.quarantined:
        print(
            f"quarantined {record.provider}@{record.version} "
            f"({record.taken_at}): {record.reason}"
        )


def _cmd_archive_query(args) -> None:
    from repro.archive import ArchiveQuery

    if (args.fingerprint is None) == (args.provider is None):
        raise ArchiveError("archive query needs exactly one of --fingerprint or --provider")
    query = ArchiveQuery(args.directory, allow_degraded=args.degraded)
    when = date.fromisoformat(args.date) if args.date else None

    if args.provider is not None:
        snapshot = (
            query.snapshot_at(args.provider, when)
            if when is not None
            else query.snapshot(args.provider, query.timeline(args.provider)[-1].version)
        )
        if snapshot is None:
            raise ArchiveError(f"provider {args.provider!r} has no release on or before {when}")
        print(snapshot.describe())
        _report_degraded(query)
        return

    fingerprint = _resolve_fingerprint(query, args.fingerprint)
    purpose = _parse_purpose(args.purpose)
    print(f"fingerprint {fingerprint}")
    if when is None:
        rows = [
            (p.provider, p.version, f"{p.taken_at:%Y-%m-%d}")
            for p in query.ever_shipped(fingerprint)
        ]
        print(render_table(
            ("Provider", "Version", "Released"), rows,
            title=f"Shipped in {len(rows)} archived snapshots",
        ))
        return
    observations = query.trusted_on(fingerprint, when, purpose=purpose)
    rows = [
        (
            o.provider,
            o.version,
            f"{o.taken_at:%Y-%m-%d}",
            "yes" if o.present else "no",
            str(o.level) if o.level is not None else "-",
        )
        for o in observations
    ]
    print(render_table(
        ("Provider", "In force", "Released", "Trusted?", "Level"), rows,
        title=f"Trust on {when} (purpose: {args.purpose})",
    ))
    trusted = sum(1 for o in observations if o.present)
    print(f"\n{trusted}/{len(observations)} providers trusted it on {when}")
    _report_degraded(query)


def _cmd_archive_diff(args) -> None:
    from repro.archive import ArchiveQuery

    query = ArchiveQuery(args.directory)
    when = date.fromisoformat(args.date) if args.date else None
    if when is None:
        diff = query.diff(
            args.provider_a,
            args.provider_b,
            version_a=query.timeline(args.provider_a)[-1].version,
            version_b=query.timeline(args.provider_b)[-1].version,
        )
    else:
        diff = query.diff(args.provider_a, args.provider_b, when=when)
    print(diff.describe())
    for label, fingerprints in (
        (f"only {diff.provider_a}@{diff.version_a}", diff.only_a),
        (f"only {diff.provider_b}@{diff.version_b}", diff.only_b),
    ):
        print(f"\n{label} ({len(fingerprints)}):")
        for fp in sorted(fingerprints):
            print(f"  {fp[:16]}")


def _cmd_archive_verify(args) -> int:
    from repro.archive import Archive, verify_archive

    report = verify_archive(Archive(args.directory))
    print(report.summary())
    for line in report.problem_lines():
        print(f"  {line}")
    return 0 if report.ok else 1


def _cmd_archive_gc(args) -> None:
    from repro.archive import Archive, gc_archive

    result = gc_archive(Archive(args.directory), dry_run=args.dry_run)
    print(result.summary())


def _cmd_archive_repair(args) -> int:
    from repro.archive import Archive, repair_archive, verify_archive

    archive = Archive(args.directory)
    report = repair_archive(archive, force_unlock=args.force_unlock)
    print(report.summary())
    verification = verify_archive(archive)
    print(verification.summary())
    for line in verification.problem_lines():
        print(f"  {line}")
    return 0 if verification.ok else 1


def _cmd_archive_bench_ingest(args) -> None:
    from repro.bench import run_ingest_suite

    suite = run_ingest_suite(
        smoke=True if args.smoke else None,
        rounds=args.rounds,
        output=args.output,
    )
    print("Incremental-ingest benchmark")
    for line in suite.summary_lines():
        print(f"  {line}")
    print(f"baseline written to {suite.output_path}")


def _cmd_archive_bench_serving(args) -> None:
    from repro.bench import run_serving_suite

    suite = run_serving_suite(
        smoke=True if args.smoke else None,
        rounds=args.rounds,
        workers=args.workers,
        output=args.output,
    )
    print("Serving-layer benchmark")
    for line in suite.summary_lines():
        print(f"  {line}")
    print(f"baseline written to {suite.output_path}")


def _cmd_archive_bench_robustness(args) -> None:
    from repro.bench import run_robustness_suite

    suite = run_robustness_suite(
        smoke=True if args.smoke else None,
        rounds=args.rounds,
        output=args.output,
    )
    print("Robustness harness")
    for line in suite.summary_lines():
        print(f"  {line}")
    print(f"baseline written to {suite.output_path}")


def _cmd_archive_bench(args) -> None:
    from repro.bench import run_archive_suite

    suite = run_archive_suite(
        smoke=True if args.smoke else None,
        rounds=args.rounds,
        output=args.output,
    )
    print("Archive benchmark")
    for line in suite.summary_lines():
        print(f"  {line}")
    print(f"baseline written to {suite.output_path}")


def _cmd_scenario(args) -> int | None:
    handler = globals()[f"_cmd_scenario_{args.scenario_command.replace('-', '_')}"]
    return handler(args)


def _load_scenario(args):
    """Resolve the run/diff scenario selection flags to a Scenario."""
    from dataclasses import replace

    from repro.scenario import Scenario
    from repro.simulation.incidents import incident_by_key, symantec_phased_scenario

    if args.scenario is not None:
        try:
            text = args.scenario.read_text()
        except OSError as exc:
            raise ValidationError(f"cannot read scenario file: {exc}") from exc
        scenario = Scenario.from_json(text)
    elif args.incident is not None:
        try:
            incident = incident_by_key(args.incident)
        except KeyError as exc:
            raise ValidationError(str(exc.args[0])) from exc
        scenario = incident.as_scenario()
    else:
        scenario = symantec_phased_scenario()
    if args.providers is not None:
        scenario = replace(scenario, providers=tuple(args.providers))
    if args.dates is not None:
        scenario = replace(
            scenario, dates=tuple(date.fromisoformat(d) for d in args.dates)
        )
    return scenario


def _scenario_engine(args):
    from repro.archive import Archive, ingest_dataset
    from repro.scenario import ScenarioEngine

    corpus = default_corpus()
    archive = Archive(args.directory, create=args.ingest)
    if args.ingest and archive.catalog_bytes() is None:
        report = ingest_dataset(archive, corpus.dataset)
        print(f"ingested into {args.directory}: {report.summary()}")
    return ScenarioEngine(
        archive,
        corpus=corpus,
        workers=args.workers,
        use_cache=not args.no_cache,
        chunk_retries=args.chunk_retries,
    )


def _cmd_scenario_run(args) -> None:
    from repro.scenario import population_impact, render_impact, render_run, run_to_json, summarize

    engine = _scenario_engine(args)
    scenario = _load_scenario(args)
    run = engine.run(scenario)
    if args.cells:
        print(render_run(run))
        print()
    print(render_impact(population_impact(run)))
    print(f"\n{summarize(run)}")
    if args.output is not None:
        args.output.write_text(run_to_json(run))
        print(f"run written to {args.output}")


def _cmd_scenario_diff(args) -> None:
    from repro.scenario import diff_runs, render_diff

    engine = _scenario_engine(args)
    scenario = _load_scenario(args)
    baseline, run = engine.run_with_baseline(scenario)
    diff = diff_runs(baseline, run)
    print(render_diff(diff))
    print(
        f"\n{len(diff.broken)} chain-cells broke, {len(diff.fixed)} fixed "
        f"across {len(run.cells)} cells"
    )


def _cmd_scenario_report(args) -> None:
    from repro.scenario import population_impact, render_impact, render_run, run_from_json, summarize

    try:
        text = args.path.read_text()
    except OSError as exc:
        raise ValidationError(f"cannot read run file: {exc}") from exc
    run = run_from_json(text)
    if args.cells:
        print(render_run(run))
        print()
    print(render_impact(population_impact(run)))
    print(f"\n{summarize(run)}")


def _cmd_scenario_bench(args) -> None:
    from repro.bench import run_scenario_suite

    suite = run_scenario_suite(
        smoke=True if args.smoke else None,
        rounds=args.rounds,
        output=args.output,
    )
    print("Scenario-engine benchmark")
    for line in suite.summary_lines():
        print(f"  {line}")
    print(f"baseline written to {suite.output_path}")


def _cmd_bench(args) -> None:
    from repro.bench import run_perf_suite

    suite = run_perf_suite(
        smoke=True if args.smoke else None,
        workers=args.workers,
        rounds=args.rounds,
        output=args.output,
    )
    print("Perf-regression harness")
    for line in suite.summary_lines():
        print(f"  {line}")
    print(f"baseline written to {suite.output_path}")


def _cmd_bench_scale(args) -> None:
    from repro.bench import run_scale_suite

    suite = run_scale_suite(
        smoke=True if args.smoke else None,
        providers=args.providers,
        landmarks=args.landmarks,
        output=args.output,
    )
    print("Scale harness")
    for line in suite.summary_lines():
        print(f"  {line}")
    print(f"baseline written to {suite.output_path}")


def _cmd_obs(args) -> int | None:
    handler = globals()[f"_cmd_obs_{args.obs_command.replace('-', '_')}"]
    return handler(args)


def _cmd_obs_report(args) -> None:
    from repro.obs.report import load_dump, report_lines

    for line in report_lines(load_dump(args.path)):
        print(line)


def _cmd_scrape(args) -> None:
    directory: Path = args.directory
    if not directory.is_dir():
        raise CollectionError(f"scrape directory {directory} does not exist")
    repo = SourceRepository(name=args.provider)
    versions = sorted(p for p in directory.iterdir() if p.is_dir())
    for path in versions:
        tag = path.name
        released_text = tag.split("+")[-1]
        released = date(int(released_text[:4]), int(released_text[4:6]), int(released_text[6:8]))
        repo.add_tag(tag, released, read_tree(path))
    history = scrape_history(args.provider, repo)
    for snapshot in history:
        print(snapshot.describe())


if __name__ == "__main__":
    sys.exit(main())
