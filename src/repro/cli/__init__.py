"""Command line interface (``repro-roots``)."""

from repro.cli.main import main

__all__ = ["main"]
