"""The provider registry: who ships a root store and in what format.

Mirrors the paper's Table 2 "Data source / Details" columns: each
provider has a kind (OS or library), a native artifact format, and —
for derivatives — the upstream program it copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ProviderKind(Enum):
    OPERATING_SYSTEM = "os"
    LIBRARY = "library"
    BROWSER = "browser"

    def __str__(self) -> str:
        return self.value


class StoreFormat(Enum):
    """The native artifact format each provider publishes."""

    CERTDATA = "certdata.txt"  # NSS PKCS#11 text
    AUTHROOT_STL = "authroot.stl"  # Microsoft CTL
    KEYCHAIN_DIR = "keychain-dir"  # Apple certificates/roots directory
    JKS = "jks"  # Java keystore
    PEM_BUNDLE = "pem-bundle"  # single concatenated PEM file
    CERT_DIR = "cert-dir"  # directory of individual PEM files
    HEADER_FILE = "node-header"  # NodeJS src/node_root_certs.h

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Provider:
    """One root store provider."""

    key: str  # machine name, e.g. "nss"
    display_name: str  # report name, e.g. "NSS"
    kind: ProviderKind
    store_format: StoreFormat
    #: upstream provider key for derivatives (all NSS in the dataset), or
    #: None for the four independent root programs.
    derived_from: str | None = None
    #: source described in Table 2 ("source code", "docker", "update file").
    data_source: str = "source code"

    @property
    def is_independent(self) -> bool:
        return self.derived_from is None


#: The ten providers of the paper's Table 2.
PROVIDERS: dict[str, Provider] = {
    p.key: p
    for p in (
        Provider("nss", "NSS", ProviderKind.LIBRARY, StoreFormat.CERTDATA),
        Provider("microsoft", "Microsoft", ProviderKind.OPERATING_SYSTEM, StoreFormat.AUTHROOT_STL, data_source="update file"),
        Provider("apple", "Apple", ProviderKind.OPERATING_SYSTEM, StoreFormat.KEYCHAIN_DIR),
        Provider("java", "Java", ProviderKind.LIBRARY, StoreFormat.JKS),
        Provider("nodejs", "NodeJS", ProviderKind.LIBRARY, StoreFormat.HEADER_FILE, derived_from="nss"),
        Provider("android", "Android", ProviderKind.OPERATING_SYSTEM, StoreFormat.CERT_DIR, derived_from="nss"),
        Provider("debian", "Debian", ProviderKind.OPERATING_SYSTEM, StoreFormat.CERT_DIR, derived_from="nss"),
        Provider("ubuntu", "Ubuntu", ProviderKind.OPERATING_SYSTEM, StoreFormat.CERT_DIR, derived_from="nss"),
        Provider("alpine", "Alpine", ProviderKind.OPERATING_SYSTEM, StoreFormat.PEM_BUNDLE, derived_from="nss", data_source="docker"),
        Provider("amazonlinux", "AmazonLinux", ProviderKind.OPERATING_SYSTEM, StoreFormat.PEM_BUNDLE, derived_from="nss", data_source="docker"),
    )
}

#: The four independent root programs (Section 4).
INDEPENDENT_PROGRAMS = ("apple", "java", "microsoft", "nss")

#: NSS derivatives, in the order Figure 3 lists them.
NSS_DERIVATIVES = ("alpine", "debian", "ubuntu", "nodejs", "android", "amazonlinux")


def provider(key: str) -> Provider:
    """Look up a provider by key, raising a helpful error when unknown."""
    try:
        return PROVIDERS[key]
    except KeyError as exc:
        known = ", ".join(sorted(PROVIDERS))
        raise KeyError(f"unknown provider {key!r}; known: {known}") from exc
