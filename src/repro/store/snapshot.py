"""Root store snapshots — a provider's trust anchors at one point in time.

The snapshot is the unit everything downstream consumes: Jaccard
distances for ordination, diffs for the derivative analyses, hygiene
scans for Table 3.  Entries are keyed by certificate SHA-256.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime, timezone
from typing import Iterable, Iterator

from repro.errors import StoreError
from repro.store.entry import TrustEntry
from repro.store.purposes import TrustPurpose
from repro.x509.certificate import Certificate


@dataclass(frozen=True)
class RootStoreSnapshot:
    """One provider's root store at one release point.

    Attributes:
        provider: provider key, e.g. ``"nss"`` or ``"debian"``.
        taken_at: the (approximate) release date of this snapshot.
        version: the provider's own version label (NSS release, image
            tag, package version...), used by the staleness analysis.
        entries: the trust entries, in stable fingerprint order.
    """

    provider: str
    taken_at: date
    version: str
    entries: tuple[TrustEntry, ...] = field(default=())

    def __post_init__(self):
        fingerprints = [e.fingerprint for e in self.entries]
        if len(set(fingerprints)) != len(fingerprints):
            raise StoreError(
                f"duplicate certificates in {self.provider} snapshot {self.version}"
            )
        ordered = tuple(sorted(self.entries, key=lambda e: e.fingerprint))
        object.__setattr__(self, "entries", ordered)

    @classmethod
    def build(
        cls,
        provider: str,
        taken_at: date,
        version: str,
        entries: Iterable[TrustEntry],
    ) -> "RootStoreSnapshot":
        return cls(provider=provider, taken_at=taken_at, version=version, entries=tuple(entries))

    # -- collection views --------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TrustEntry]:
        return iter(self.entries)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Certificate):
            return item.fingerprint_sha256 in self._entry_index
        if isinstance(item, str):
            return item in self._entry_index
        return False

    @property
    def _entry_index(self) -> dict[str, TrustEntry]:
        """Lazily-built fingerprint -> entry map (entries are immutable,
        so the index is built at most once; a benign double-build under
        concurrent first access is idempotent)."""
        try:
            return self.__dict__["_index"]
        except KeyError:
            index = {e.fingerprint: e for e in self.entries}
            object.__setattr__(self, "_index", index)
            return index

    def get(self, fingerprint: str) -> TrustEntry | None:
        """Entry by SHA-256 fingerprint, or None (O(1) via the index)."""
        return self._entry_index.get(fingerprint)

    def fingerprints(self, purpose: TrustPurpose | None = None) -> frozenset[str]:
        """SHA-256 fingerprints, optionally only those trusted for a purpose.

        ``fingerprints(TrustPurpose.SERVER_AUTH)`` is the set the
        paper's Jaccard ordination uses.  Results are memoized per
        purpose — diff, hygiene, and ordination paths ask for the same
        sets thousands of times over an immutable snapshot.
        """
        try:
            cache = self.__dict__["_fingerprint_cache"]
        except KeyError:
            cache = {}
            object.__setattr__(self, "_fingerprint_cache", cache)
        try:
            return cache[purpose]
        except KeyError:
            if purpose is None:
                result = frozenset(self._entry_index)
            else:
                result = frozenset(
                    e.fingerprint for e in self.entries if e.is_trusted_for(purpose)
                )
            cache[purpose] = result
            return result

    def tls_fingerprints(self) -> frozenset[str]:
        """Shorthand for the TLS-server-auth trusted set."""
        return self.fingerprints(TrustPurpose.SERVER_AUTH)

    def certificates(self) -> tuple[Certificate, ...]:
        return tuple(e.certificate for e in self.entries)

    # -- hygiene helpers (Table 3) ------------------------------------------

    def expired_entries(self, at: datetime | None = None) -> tuple[TrustEntry, ...]:
        """Entries whose certificate is expired at the snapshot date."""
        moment = at or datetime(
            self.taken_at.year, self.taken_at.month, self.taken_at.day, tzinfo=timezone.utc
        )
        return tuple(e for e in self.entries if e.certificate.is_expired(moment))

    def count_signature_digest(self, digest_name: str) -> int:
        """How many TLS-trusted roots are signed with the given digest."""
        return sum(
            1
            for e in self.entries
            if e.is_tls_trusted and e.certificate.signature_digest == digest_name
        )

    def count_weak_rsa(self, max_bits: int = 1024) -> int:
        """How many TLS-trusted roots carry RSA keys of at most ``max_bits``."""
        return sum(
            1
            for e in self.entries
            if e.is_tls_trusted
            and e.certificate.key_type == "rsa"
            and e.certificate.key_bits <= max_bits
        )

    # -- set algebra ---------------------------------------------------------

    def jaccard_distance(self, other: "RootStoreSnapshot", purpose: TrustPurpose | None = None) -> float:
        """1 - |A∩B| / |A∪B| over (purpose-filtered) fingerprint sets."""
        a = self.fingerprints(purpose)
        b = other.fingerprints(purpose)
        union = a | b
        if not union:
            return 0.0
        return 1.0 - len(a & b) / len(union)

    def describe(self) -> str:
        return (
            f"{self.provider}@{self.version} ({self.taken_at:%Y-%m-%d}): "
            f"{len(self.entries)} roots, {len(self.tls_fingerprints())} TLS-trusted"
        )
