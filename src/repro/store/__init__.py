"""The trust store model: entries, snapshots, histories, providers.

This is the normalized representation every native format parses into
and every analysis consumes.
"""

from repro.store.diff import SnapshotDiff, diff_snapshots
from repro.store.entry import TrustEntry
from repro.store.history import Dataset, StoreHistory, merge_datasets
from repro.store.provider import (
    INDEPENDENT_PROGRAMS,
    NSS_DERIVATIVES,
    PROVIDERS,
    Provider,
    ProviderKind,
    StoreFormat,
    provider,
)
from repro.store.purposes import BUNDLE_PURPOSES, TLS, TrustLevel, TrustPurpose
from repro.store.snapshot import RootStoreSnapshot

__all__ = [
    "BUNDLE_PURPOSES",
    "Dataset",
    "INDEPENDENT_PROGRAMS",
    "NSS_DERIVATIVES",
    "PROVIDERS",
    "Provider",
    "ProviderKind",
    "RootStoreSnapshot",
    "SnapshotDiff",
    "StoreFormat",
    "StoreHistory",
    "TLS",
    "TrustEntry",
    "TrustLevel",
    "TrustPurpose",
    "diff_snapshots",
    "merge_datasets",
    "provider",
]
