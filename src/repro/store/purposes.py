"""Trust purposes and trust levels.

NSS's certdata.txt distinguishes *purposes* (server auth, email
protection, code signing) and *levels* (trusted delegator, must verify,
not trusted).  Microsoft's authroot.stl expresses the same ideas as EKU
restrictions plus disallowed dates.  This module is the common
vocabulary both are normalized into.
"""

from __future__ import annotations

from enum import Enum


class TrustPurpose(Enum):
    """What a root may vouch for."""

    SERVER_AUTH = "server-auth"
    CLIENT_AUTH = "client-auth"
    EMAIL_PROTECTION = "email"
    CODE_SIGNING = "code-signing"
    TIME_STAMPING = "time-stamping"

    def __str__(self) -> str:
        return self.value


class TrustLevel(Enum):
    """How much a root is trusted for a purpose.

    Mirrors NSS's PKCS#11 trust constants:

    - ``TRUSTED`` — CKT_NSS_TRUSTED_DELEGATOR: a trust anchor.
    - ``MUST_VERIFY`` — CKT_NSS_MUST_VERIFY_TRUST: present but not an
      anchor (chains must terminate elsewhere).
    - ``DISTRUSTED`` — CKT_NSS_NOT_TRUSTED: actively rejected.
    """

    TRUSTED = "trusted"
    MUST_VERIFY = "must-verify"
    DISTRUSTED = "distrusted"

    def __str__(self) -> str:
        return self.value


#: The purpose the paper studies.  Helper alias used throughout analyses.
TLS = TrustPurpose.SERVER_AUTH

#: Purposes a "multi-purpose" Linux bundle conflates (Section 6.2).
BUNDLE_PURPOSES = (
    TrustPurpose.SERVER_AUTH,
    TrustPurpose.EMAIL_PROTECTION,
    TrustPurpose.CODE_SIGNING,
)
