"""Snapshot diffing.

Used by the derivative analyses (Figure 4) and the incident-response
lag computation (Table 4): which roots appeared, disappeared, or had
their trust bits changed between two snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.store.entry import TrustEntry
from repro.store.purposes import TrustPurpose
from repro.store.snapshot import RootStoreSnapshot


@dataclass(frozen=True)
class SnapshotDiff:
    """The difference between a ``base`` and a ``target`` snapshot."""

    base: RootStoreSnapshot
    target: RootStoreSnapshot
    added: tuple[TrustEntry, ...]
    removed: tuple[TrustEntry, ...]
    trust_changed: tuple[tuple[TrustEntry, TrustEntry], ...]  # (before, after)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.trust_changed)

    @property
    def churn(self) -> int:
        """Total number of changed roots (the MDS outlier criterion)."""
        return len(self.added) + len(self.removed) + len(self.trust_changed)

    def describe(self) -> str:
        return (
            f"{self.base.provider}@{self.base.version} -> "
            f"{self.target.provider}@{self.target.version}: "
            f"+{len(self.added)} -{len(self.removed)} ~{len(self.trust_changed)}"
        )


def diff_snapshots(
    base: RootStoreSnapshot,
    target: RootStoreSnapshot,
    purpose: TrustPurpose | None = None,
) -> SnapshotDiff:
    """Compute added/removed/changed entries from ``base`` to ``target``.

    With a ``purpose``, membership is judged by that purpose's trusted
    set (so a root that flips from email-only to TLS counts as "added"
    under ``SERVER_AUTH``); without one, raw presence is used and trust
    map changes surface in ``trust_changed``.
    """
    base_set = base.fingerprints(purpose)
    target_set = target.fingerprints(purpose)

    added = tuple(
        entry for entry in target.entries if entry.fingerprint in (target_set - base_set)
    )
    removed = tuple(
        entry for entry in base.entries if entry.fingerprint in (base_set - target_set)
    )

    changed: list[tuple[TrustEntry, TrustEntry]] = []
    for fingerprint in base_set & target_set:
        before = base.get(fingerprint)
        after = target.get(fingerprint)
        assert before is not None and after is not None
        if before.trust != after.trust or before.distrust_after != after.distrust_after:
            changed.append((before, after))
    changed.sort(key=lambda pair: pair[0].fingerprint)

    return SnapshotDiff(
        base=base,
        target=target,
        added=added,
        removed=removed,
        trust_changed=tuple(changed),
    )
