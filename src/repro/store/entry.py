"""Trust entries: a certificate plus its trust context.

A :class:`TrustEntry` is the paper's unit of observation — "this root
store, at this time, contained this certificate with these trust
bits".  Partial distrust (NSS's ``CKA_NSS_SERVER_DISTRUST_AFTER``,
Microsoft's disallowed/NotBefore filetimes) is modelled with the
``distrust_after`` field so the Symantec-distrust analyses can compare
stores that can and cannot express it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime

from repro.store.purposes import TrustLevel, TrustPurpose
from repro.x509.certificate import Certificate


@dataclass(frozen=True)
class TrustEntry:
    """One root with its trust context inside a specific store snapshot."""

    certificate: Certificate
    #: Trust level per purpose.  A purpose absent from the mapping is
    #: simply "no statement" (the store neither trusts nor distrusts it).
    trust: tuple[tuple[TrustPurpose, TrustLevel], ...] = field(default=())
    #: Leaf certificates issued after this moment are not trusted for
    #: TLS server auth (NSS's server-distrust-after semantics).  ``None``
    #: means no such restriction.
    distrust_after: datetime | None = None

    def __post_init__(self):
        # Normalize ordering so equal trust maps compare equal.
        object.__setattr__(self, "trust", tuple(sorted(self.trust, key=lambda kv: kv[0].value)))

    @classmethod
    def make(
        cls,
        certificate: Certificate,
        purposes: dict[TrustPurpose, TrustLevel] | None = None,
        distrust_after: datetime | None = None,
    ) -> "TrustEntry":
        """Build an entry from a purpose->level mapping."""
        mapping = purposes or {TrustPurpose.SERVER_AUTH: TrustLevel.TRUSTED}
        return cls(
            certificate=certificate,
            trust=tuple(mapping.items()),
            distrust_after=distrust_after,
        )

    @property
    def trust_map(self) -> dict[TrustPurpose, TrustLevel]:
        return dict(self.trust)

    def level_for(self, purpose: TrustPurpose) -> TrustLevel | None:
        """Trust level for a purpose, or None when the store is silent."""
        return self.trust_map.get(purpose)

    def is_trusted_for(self, purpose: TrustPurpose) -> bool:
        return self.level_for(purpose) is TrustLevel.TRUSTED

    def is_distrusted_for(self, purpose: TrustPurpose) -> bool:
        return self.level_for(purpose) is TrustLevel.DISTRUSTED

    @property
    def is_tls_trusted(self) -> bool:
        """The paper's primary filter: trusted for TLS server auth."""
        return self.is_trusted_for(TrustPurpose.SERVER_AUTH)

    @property
    def has_partial_distrust(self) -> bool:
        """True when the entry expresses date-based partial distrust."""
        return self.distrust_after is not None

    @property
    def fingerprint(self) -> str:
        """SHA-256 fingerprint of the certificate (the entry's identity)."""
        return self.certificate.fingerprint_sha256

    def with_trust(
        self, purpose: TrustPurpose, level: TrustLevel
    ) -> "TrustEntry":
        """A copy with one purpose's level changed."""
        mapping = self.trust_map
        mapping[purpose] = level
        return replace(self, trust=tuple(mapping.items()))

    def with_distrust_after(self, moment: datetime | None) -> "TrustEntry":
        """A copy with a different partial-distrust date."""
        return replace(self, distrust_after=moment)

    def describe(self) -> str:
        """One-line summary for reports."""
        bits = ", ".join(f"{p}:{lv}" for p, lv in self.trust)
        extra = f" distrust-after={self.distrust_after:%Y-%m-%d}" if self.distrust_after else ""
        subject = self.certificate.subject.common_name or self.certificate.subject.rfc4514()
        return f"{subject} [{bits}]{extra}"
