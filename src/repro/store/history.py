"""Provider root store histories and the cross-provider dataset.

A :class:`StoreHistory` is a provider's ordered snapshot timeline; a
:class:`Dataset` bundles all providers' histories and renders the
paper's Table 2 summary.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from datetime import date
from typing import Iterable, Iterator

from repro.errors import StoreError
from repro.store.snapshot import RootStoreSnapshot


@dataclass
class StoreHistory:
    """The ordered snapshot history of one root store provider."""

    provider: str
    snapshots: list[RootStoreSnapshot] = field(default_factory=list)
    #: (version, taken_at) of every held snapshot, for O(1) duplicate
    #: checks; lenient collection probes this once per visited tag.
    _version_index: set = field(default_factory=set, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Normalize once so add() can rely on sorted order and insort.
        self.snapshots.sort(key=lambda s: (s.taken_at, s.version))
        self._version_index = {(s.version, s.taken_at) for s in self.snapshots}

    def add(self, snapshot: RootStoreSnapshot) -> None:
        if snapshot.provider != self.provider:
            raise StoreError(
                f"snapshot provider {snapshot.provider!r} != history provider {self.provider!r}"
            )
        # O(log n) position + O(n) shift beats the old full re-sort:
        # archive ingest and collection replay histories one snapshot at
        # a time, which paid O(n log n) sorting per insert.
        insort(self.snapshots, snapshot, key=lambda s: (s.taken_at, s.version))
        self._version_index.add((snapshot.version, snapshot.taken_at))

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[RootStoreSnapshot]:
        return iter(self.snapshots)

    @property
    def first_date(self) -> date:
        self._require_nonempty()
        return self.snapshots[0].taken_at

    @property
    def last_date(self) -> date:
        self._require_nonempty()
        return self.snapshots[-1].taken_at

    def contains_version(self, version: str, taken_at: date) -> bool:
        """Whether a snapshot with this exact version and date is present.

        Lenient collection uses this to quarantine duplicate origin tags
        instead of silently double-adding them.
        """
        return (version, taken_at) in self._version_index

    def at(self, when: date) -> RootStoreSnapshot | None:
        """The snapshot in force at ``when`` (latest taken on or before)."""
        current = None
        for snapshot in self.snapshots:
            if snapshot.taken_at <= when:
                current = snapshot
            else:
                break
        return current

    def latest(self) -> RootStoreSnapshot:
        self._require_nonempty()
        return self.snapshots[-1]

    def unique_fingerprints(self) -> frozenset[str]:
        """Every certificate ever present, across all snapshots."""
        result: set[str] = set()
        for snapshot in self.snapshots:
            result |= snapshot.fingerprints()
        return frozenset(result)

    def substantial_snapshots(self) -> list[RootStoreSnapshot]:
        """Snapshots that changed the TLS-trusted set vs. their predecessor.

        The paper's Figure 3 tracks "substantial versions" — releases
        that actually altered TLS trust.  The first snapshot is always
        substantial.
        """
        result: list[RootStoreSnapshot] = []
        previous: frozenset[str] | None = None
        for snapshot in self.snapshots:
            current = snapshot.tls_fingerprints()
            if previous is None or current != previous:
                result.append(snapshot)
            previous = current
        return result

    def trusted_until(self, fingerprint: str) -> date | None:
        """Date of the first snapshot in which ``fingerprint`` is absent
        after having been present; None when never removed (or never present)."""
        seen = False
        for snapshot in self.snapshots:
            present = fingerprint in snapshot.fingerprints()
            if present:
                seen = True
            elif seen:
                return snapshot.taken_at
        return None

    def ever_trusted(self, fingerprint: str) -> bool:
        return any(fingerprint in s.fingerprints() for s in self.snapshots)

    def _require_nonempty(self) -> None:
        if not self.snapshots:
            raise StoreError(f"history for {self.provider!r} has no snapshots")


@dataclass
class Dataset:
    """All providers' histories — the paper's full data corpus."""

    histories: dict[str, StoreHistory] = field(default_factory=dict)

    def add_history(self, history: StoreHistory) -> None:
        if history.provider in self.histories:
            raise StoreError(f"duplicate history for provider {history.provider!r}")
        self.histories[history.provider] = history

    def add_snapshot(self, snapshot: RootStoreSnapshot) -> None:
        history = self.histories.setdefault(snapshot.provider, StoreHistory(snapshot.provider))
        history.add(snapshot)

    def __getitem__(self, provider: str) -> StoreHistory:
        try:
            return self.histories[provider]
        except KeyError as exc:
            raise StoreError(f"no history for provider {provider!r}") from exc

    def __contains__(self, provider: str) -> bool:
        return provider in self.histories

    @property
    def providers(self) -> list[str]:
        return sorted(self.histories)

    def total_snapshots(self) -> int:
        return sum(len(h) for h in self.histories.values())

    def all_snapshots(self) -> list[RootStoreSnapshot]:
        result: list[RootStoreSnapshot] = []
        for provider in self.providers:
            result.extend(self.histories[provider].snapshots)
        return result

    def summary_rows(self) -> list[dict]:
        """Table 2 rows: provider, date range, snapshot count, unique roots."""
        rows = []
        for provider in self.providers:
            history = self.histories[provider]
            if not len(history):
                continue
            rows.append(
                {
                    "provider": provider,
                    "from": history.first_date,
                    "to": history.last_date,
                    "snapshots": len(history),
                    "unique_roots": len(history.unique_fingerprints()),
                }
            )
        return rows


def merge_datasets(parts: Iterable[Dataset]) -> Dataset:
    """Combine datasets with disjoint providers."""
    merged = Dataset()
    for part in parts:
        for history in part.histories.values():
            merged.add_history(history)
    return merged
