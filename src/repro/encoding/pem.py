"""PEM armor (RFC 7468) encode/decode.

Root store bundles on Linux are PEM concatenations; NSS certdata stores
raw DER in a multi-line octal form; everything else round-trips through
these helpers.
"""

from __future__ import annotations

import base64
import re
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import PEMError

_BEGIN = re.compile(r"^-----BEGIN ([A-Z0-9 ]+)-----\s*$")
_END = re.compile(r"^-----END ([A-Z0-9 ]+)-----\s*$")

CERTIFICATE_LABEL = "CERTIFICATE"
TRUSTED_CERTIFICATE_LABEL = "TRUSTED CERTIFICATE"


@dataclass(frozen=True)
class PEMBlock:
    """One armored block: a label and its decoded bytes."""

    label: str
    der: bytes


def encode_pem(der: bytes, label: str = CERTIFICATE_LABEL) -> str:
    """Armor bytes in PEM with 64-character base64 lines."""
    body = base64.b64encode(der).decode("ascii")
    lines = [body[i : i + 64] for i in range(0, len(body), 64)]
    return "\n".join([f"-----BEGIN {label}-----", *lines, f"-----END {label}-----", ""])


def iter_pem_blocks(
    text: str,
    *,
    lenient: bool = False,
    on_error: Callable[[str, int], None] | None = None,
) -> Iterator[PEMBlock]:
    """Yield each PEM block in ``text``, ignoring surrounding prose.

    Linux ``ca-certificates`` bundles interleave comments with blocks;
    anything outside BEGIN/END lines is skipped.

    With ``lenient=True`` a malformed block (nested BEGIN, orphan or
    mismatched END, invalid base64, unterminated armor) is dropped and
    scanning resynchronizes at the next BEGIN line; ``on_error`` is
    called with a message and the offending line number for each drop.
    """

    def problem(message: str, line_no: int) -> None:
        if not lenient:
            raise PEMError(message)
        if on_error is not None:
            on_error(message, line_no)

    label: str | None = None
    body_lines: list[str] = []
    line_no = 0
    for line_no, line in enumerate(text.splitlines(), start=1):
        begin = _BEGIN.match(line)
        end = _END.match(line)
        if begin:
            if label is not None:
                problem(f"nested BEGIN at line {line_no}", line_no)
            label = begin.group(1)
            body_lines = []
        elif end:
            if label is None:
                problem(f"END without BEGIN at line {line_no}", line_no)
                continue
            if end.group(1) != label:
                problem(
                    f"label mismatch at line {line_no}: BEGIN {label}, END {end.group(1)}",
                    line_no,
                )
                label = None
                continue
            try:
                der = base64.b64decode("".join(body_lines), validate=True)
            except Exception as exc:  # noqa: BLE001
                if not lenient:
                    raise PEMError(
                        f"invalid base64 in {label} block ending line {line_no}"
                    ) from exc
                problem(f"invalid base64 in {label} block ending line {line_no}", line_no)
                label = None
                continue
            yield PEMBlock(label=label, der=der)
            label = None
        elif label is not None:
            body_lines.append(line.strip())
    if label is not None:
        problem(f"unterminated {label} block", line_no)


def decode_pem(text: str, expected_label: str = CERTIFICATE_LABEL) -> bytes:
    """Decode exactly one PEM block, checking its label."""
    blocks = list(iter_pem_blocks(text))
    if len(blocks) != 1:
        raise PEMError(f"expected one PEM block, found {len(blocks)}")
    block = blocks[0]
    if block.label != expected_label:
        raise PEMError(f"expected {expected_label} block, found {block.label}")
    return block.der


def split_bundle(
    text: str,
    *,
    lenient: bool = False,
    on_error: Callable[[str, int], None] | None = None,
) -> list[bytes]:
    """All CERTIFICATE blocks from a PEM bundle, in order."""
    return [
        b.der
        for b in iter_pem_blocks(text, lenient=lenient, on_error=on_error)
        if b.label == CERTIFICATE_LABEL
    ]
