"""Textual encodings: PEM armor and fingerprint formatting."""

from repro.encoding.pem import (
    CERTIFICATE_LABEL,
    PEMBlock,
    decode_pem,
    encode_pem,
    iter_pem_blocks,
    split_bundle,
)


def colonize(hex_fingerprint: str) -> str:
    """Format ``"abcdef"`` as ``"AB:CD:EF"`` (report style)."""
    upper = hex_fingerprint.upper()
    return ":".join(upper[i : i + 2] for i in range(0, len(upper), 2))


__all__ = [
    "CERTIFICATE_LABEL",
    "PEMBlock",
    "colonize",
    "decode_pem",
    "encode_pem",
    "iter_pem_blocks",
    "split_bundle",
]
