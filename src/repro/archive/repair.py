"""``archive repair``: roll back crashed ingests, quarantine damage.

Recovery is a single idempotent pass over everything a crash (or
bitrot) can leave behind, in dependency order:

1. **Lock** — a stale writer lock (dead pid) is broken; a *live*
   holder aborts the repair unless ``force_unlock=True`` (the flag the
   kill-point tests need, where the "crashed" writer is the test
   process itself).  Repair then holds the lock for its own duration.
2. **Temp debris** — every stale ``*.tmp`` is removed; final names
   were never touched, so this is pure sweeping.
3. **Journals** — each uncommitted transaction in ``journal/`` is
   rolled *forward* when its recorded catalog intent matches the
   catalog on disk (the atomic replace landed; only the cleanup was
   lost) and rolled *back* otherwise: the transaction's manifests not
   in the catalog and its objects not referenced by any cataloged
   manifest are deleted.  Intent lists over-approximate (they include
   deduplicated objects), which is safe precisely because rollback
   only removes what the catalog cannot reach.
4. **Integrity quarantine** — ``verify`` findings that journals cannot
   explain (torn or bit-flipped writes that landed under a final name,
   genuinely missing files) are quarantined rather than deleted:
   corrupt objects move to ``quarantine/objects/``, and every catalog
   row whose manifest is missing/corrupt or references a missing or
   quarantined object is dropped from the catalog with its manifest
   parked under ``quarantine/manifests/<provider>/``.  Rows that
   merely disagree with an intact manifest are *healed* from the
   manifest (the content-addressed truth).
5. **Catalog + index** — the healed catalog is atomically rewritten
   and the inverted indexes rebuilt, so ``verify`` reports a clean
   archive and queries serve immediately.

Quarantined snapshots are recorded in ``quarantine/quarantined.json``
so :class:`~repro.archive.query.ArchiveQuery` (in degraded mode) can
say *what* is unavailable, not just skip it; a later re-ingest of the
same snapshot drops it from the record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.archive.cas import OBJECT_SUFFIX
from repro.archive.checkpoint import WATCH_DIR, CheckpointStore
from repro.archive.index import INDEX_DIR, _load_persisted, load_index
from repro.archive.io import atomic_write_bytes, remove_all, stray_tmp_files
from repro.archive.journal import JournalState, pending_transactions
from repro.archive.lock import WriterLock, break_lock, read_lock
from repro.archive.manifest import Archive, CatalogRow, SnapshotManifest
from repro.archive.verify import verify_archive
from repro.errors import ArchiveError, ArchiveLockError

#: Directory name of the quarantine area inside an archive root.
QUARANTINE_DIR = "quarantine"
#: Record of quarantined snapshots, for degraded-mode reporting.
QUARANTINE_RECORD = "quarantined.json"


def quarantine_root(archive_root: Path) -> Path:
    return Path(archive_root) / QUARANTINE_DIR


@dataclass(frozen=True)
class QuarantinedSnapshot:
    """One snapshot ``repair`` had to pull out of the catalog."""

    provider: str
    version: str
    taken_at: str  # ISO 8601
    manifest_id: str
    reason: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.provider, self.version, self.taken_at)


def read_quarantine(archive_root: Path) -> list[QuarantinedSnapshot]:
    """The recorded quarantined snapshots (empty when none/unreadable)."""
    path = quarantine_root(archive_root) / QUARANTINE_RECORD
    try:
        payload = json.loads(path.read_text())
        return [
            QuarantinedSnapshot(
                provider=r["provider"],
                version=r["version"],
                taken_at=r["taken_at"],
                manifest_id=r["manifest_id"],
                reason=r["reason"],
            )
            for r in payload["snapshots"]
        ]
    except (FileNotFoundError, ValueError, KeyError, TypeError):
        return []


def write_quarantine(archive_root: Path, records: list[QuarantinedSnapshot]) -> None:
    directory = quarantine_root(archive_root)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "snapshots": [
            {
                "provider": r.provider,
                "version": r.version,
                "taken_at": r.taken_at,
                "manifest_id": r.manifest_id,
                "reason": r.reason,
            }
            for r in sorted(records, key=lambda r: (r.key, r.manifest_id))
        ]
    }
    data = (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode("ascii")
    atomic_write_bytes(directory / QUARANTINE_RECORD, data, site="quarantine")


@dataclass
class RepairReport:
    """Everything one repair pass did (all zeros/empty = nothing to fix)."""

    lock_broken: bool = False
    tmp_swept: int = 0
    catalog_salvaged: bool = False  # the catalog itself was unreadable
    rolled_forward: list = field(default_factory=list)  # txn ids
    rolled_back: list = field(default_factory=list)  # txn ids
    objects_removed: int = 0  # rollback deletions (unreachable intents)
    manifests_removed: int = 0
    objects_quarantined: int = 0
    snapshots_quarantined: int = 0
    rows_healed: int = 0
    index_rebuilt: bool = False
    index_healed: bool = False  # torn/stale incremental index rebuilt
    checkpoints_reset: bool = False  # damaged watch cursor/intent quarantined

    @property
    def clean(self) -> bool:
        """True when the archive needed nothing at all."""
        return not (
            self.lock_broken
            or self.tmp_swept
            or self.catalog_salvaged
            or self.rolled_forward
            or self.rolled_back
            or self.objects_quarantined
            or self.snapshots_quarantined
            or self.rows_healed
            or self.index_healed
            or self.checkpoints_reset
        )

    def action_lines(self) -> list[str]:
        lines: list[str] = []
        if self.lock_broken:
            lines.append("broke stale writer lock")
        if self.tmp_swept:
            lines.append(f"swept {self.tmp_swept} stale temp files")
        if self.catalog_salvaged:
            lines.append(
                "rebuilt unreadable catalog from manifests (damaged copy quarantined)"
            )
        for txn in self.rolled_forward:
            lines.append(f"rolled forward committed transaction {txn}")
        for txn in self.rolled_back:
            lines.append(f"rolled back interrupted transaction {txn}")
        if self.objects_removed or self.manifests_removed:
            lines.append(
                f"removed {self.objects_removed} objects and "
                f"{self.manifests_removed} manifests from rolled-back transactions"
            )
        if self.objects_quarantined:
            lines.append(f"quarantined {self.objects_quarantined} corrupt objects")
        if self.snapshots_quarantined:
            lines.append(f"quarantined {self.snapshots_quarantined} damaged snapshots")
        if self.rows_healed:
            lines.append(f"healed {self.rows_healed} catalog rows from manifests")
        if self.index_rebuilt:
            lines.append("rebuilt query indexes")
        if self.index_healed:
            lines.append("healed torn incremental index update (rebuilt)")
        if self.checkpoints_reset:
            lines.append("quarantined damaged watch checkpoint state")
        return lines

    def summary(self) -> str:
        if self.clean:
            return "repair: archive was already consistent"
        return "repair: " + "; ".join(self.action_lines())


def _salvage_catalog(archive: Archive, report: RepairReport) -> None:
    """Rebuild an unreadable catalog from the manifests on disk.

    A torn or bit-flipped write that landed on ``catalog.json`` itself
    leaves nothing to roll back by reference, but every manifest is
    content-addressed truth: each hash-valid manifest file becomes a
    catalog row again (on a key collision — superseded ingests — the
    richest manifest wins, deterministically).  The damaged catalog is
    parked in ``quarantine/`` for forensics.  A follow-up re-ingest of
    the same corpus converges to the byte-identical undamaged catalog.
    """
    damaged = quarantine_root(archive.root) / "catalog.corrupt.json"
    damaged.parent.mkdir(parents=True, exist_ok=True)
    archive.catalog_path.replace(damaged)
    salvaged: dict[tuple[str, str, str], CatalogRow] = {}
    for provider, manifest_id, _path in archive.manifest_files():
        try:
            manifest: SnapshotManifest = archive.read_manifest(provider, manifest_id)
        except ArchiveError:
            continue  # torn/flipped manifests are handled by quarantine later
        row = CatalogRow(
            provider=manifest.provider,
            version=manifest.version,
            taken_at=manifest.taken_at,
            manifest_id=manifest_id,
            entries=len(manifest),
        )
        incumbent = salvaged.get(row.key)
        if incumbent is None or (row.entries, row.manifest_id) > (
            incumbent.entries,
            incumbent.manifest_id,
        ):
            salvaged[row.key] = row
    archive.write_catalog(list(salvaged.values()))
    report.catalog_salvaged = True


def _roll_back(archive: Archive, state: JournalState, report: RepairReport) -> None:
    """Undo one interrupted transaction: delete its unreachable writes."""
    rows = archive.read_catalog()
    cataloged = {(row.provider, row.manifest_id) for row in rows}
    referenced: set[str] = set()
    for row in rows:
        try:
            manifest = archive.read_manifest(row.provider, row.manifest_id)
        except ArchiveError:
            continue  # damaged rows are the integrity pass's problem
        referenced.update(e.fingerprint for e in manifest.entries)
    for provider, manifest_id in sorted(state.manifests):
        if (provider, manifest_id) in cataloged:
            continue
        path = archive.manifest_path(provider, manifest_id)
        if path.exists():
            path.unlink()
            report.manifests_removed += 1
    for fingerprint in sorted(state.objects):
        if fingerprint in referenced:
            continue
        if archive.objects.remove(fingerprint):
            report.objects_removed += 1
    report.rolled_back.append(state.txn_id)


def _quarantine_object(archive: Archive, fingerprint: str, report: RepairReport) -> None:
    """Park a corrupt object's bytes for forensics instead of deleting."""
    source = archive.objects.path_for(fingerprint)
    if not source.exists():
        return
    destination = quarantine_root(archive.root) / "objects" / f"{fingerprint}{OBJECT_SUFFIX}"
    destination.parent.mkdir(parents=True, exist_ok=True)
    source.replace(destination)
    report.objects_quarantined += 1


def _quarantine_manifest(archive: Archive, provider: str, manifest_id: str) -> None:
    source = archive.manifest_path(provider, manifest_id)
    if not source.exists():
        return
    destination = quarantine_root(archive.root) / "manifests" / provider / f"{manifest_id}.json"
    destination.parent.mkdir(parents=True, exist_ok=True)
    source.replace(destination)


def repair_archive(archive: Archive, *, force_unlock: bool = False) -> RepairReport:
    """Run the full recovery pass described in the module docstring.

    Idempotent: a second run over the result is a no-op (``clean``).
    Raises :class:`~repro.errors.ArchiveLockError` when a live writer
    holds the lock and ``force_unlock`` is False.
    """
    report = RepairReport()

    holder = read_lock(archive.root)
    if holder is not None:
        if holder.alive and not force_unlock:
            raise ArchiveLockError(
                f"archive {archive.root} is locked by live writer pid {holder.pid} "
                f"({holder.owner}); pass --force-unlock only if it is truly gone"
            )
        break_lock(archive.root)
        report.lock_broken = True

    with WriterLock(archive.root, owner="repair"):
        report.tmp_swept = remove_all(stray_tmp_files(archive.root))

        try:
            archive.read_catalog()
        except ArchiveError:
            _salvage_catalog(archive, report)

        current_hash = archive.catalog_hash()
        for state in pending_transactions(archive.root):
            if state.committed or (
                state.catalog_intent is not None and state.catalog_intent == current_hash
            ):
                # The catalog replace landed; only the journal cleanup
                # was lost.  Nothing to undo.
                report.rolled_forward.append(state.txn_id)
            else:
                _roll_back(archive, state, report)
            state.path.unlink(missing_ok=True)

        # Integrity pass: quarantine what no journal can explain.
        integrity = verify_archive(archive)
        corrupt_fingerprints = {fp for fp, _ in integrity.corrupt_objects}
        for fingerprint in sorted(corrupt_fingerprints):
            _quarantine_object(archive, fingerprint, report)

        damaged_manifests = {
            (provider, manifest_id)
            for provider, manifest_id, _ in integrity.corrupt_manifests
        } | set(integrity.missing_manifests)
        missing_by_manifest: dict[tuple[str, str], list[str]] = {}
        for provider, manifest_id, fingerprint in integrity.missing_objects:
            missing_by_manifest.setdefault((provider, manifest_id), []).append(fingerprint)

        rows = archive.read_catalog()
        kept: list[CatalogRow] = []
        newly_quarantined: list[QuarantinedSnapshot] = []
        catalog_changed = False
        for row in rows:
            ref = (row.provider, row.manifest_id)
            reason: str | None = None
            if ref in damaged_manifests:
                reason = "manifest missing or corrupt"
            else:
                manifest = archive.read_manifest(row.provider, row.manifest_id)
                lost = sorted(
                    set(missing_by_manifest.get(ref, []))
                    | (manifest.fingerprints() & corrupt_fingerprints)
                )
                if lost:
                    reason = f"references unavailable objects: {', '.join(lost)}"
                elif (row.version, row.taken_at, row.entries) != (
                    manifest.version,
                    manifest.taken_at,
                    len(manifest),
                ):
                    # The manifest is content-verified truth: heal the row.
                    row = CatalogRow(
                        provider=manifest.provider,
                        version=manifest.version,
                        taken_at=manifest.taken_at,
                        manifest_id=row.manifest_id,
                        entries=len(manifest),
                    )
                    report.rows_healed += 1
                    catalog_changed = True
            if reason is None:
                kept.append(row)
                continue
            _quarantine_manifest(archive, row.provider, row.manifest_id)
            newly_quarantined.append(
                QuarantinedSnapshot(
                    provider=row.provider,
                    version=row.version,
                    taken_at=row.taken_at.isoformat(),
                    manifest_id=row.manifest_id,
                    reason=reason,
                )
            )
            report.snapshots_quarantined += 1
            catalog_changed = True

        if catalog_changed:
            archive.write_catalog(kept)

        # Maintain the quarantine record: add new entries, drop any
        # whose snapshot key is (back) in the catalog after re-ingest.
        existing = read_quarantine(archive.root)
        catalog_keys = {row.key for row in kept}
        merged: dict[tuple, QuarantinedSnapshot] = {}
        for record in existing + newly_quarantined:
            if record.key in catalog_keys:
                continue
            merged[record.key + (record.manifest_id,)] = record
        records = list(merged.values())
        if records or existing:
            write_quarantine(archive.root, records)

        if (catalog_changed or report.catalog_salvaged) and archive.catalog_hash() is not None:
            load_index(archive, rebuild=True)
            report.index_rebuilt = True
        else:
            _heal_index(archive, report)

        _heal_checkpoints(archive, report)

    return report


def _heal_index(archive: Archive, report: RepairReport) -> None:
    """Rebuild index files a crashed incremental update left behind.

    ``ArchiveWriter.commit`` patches the persisted index *after* the
    catalog replace, so a kill in that window (or a torn/flipped write
    landing on any index file) leaves index files that do not match the
    committed catalog.  Absent index files are fine — queries build
    lazily — but *present-and-wrong* ones are crash damage: rebuild so
    the archive converges to the same bytes as an uninterrupted run.

    The binary ``trust.bin`` is held to the same bar as the JSON pair:
    stale (older catalog hash) or missing alongside fresh JSON means a
    crash landed between the sibling writes, and a torn header or
    payload-checksum mismatch is damage whose bytes are parked under
    ``quarantine/index/`` before the rebuild replaces the file.
    """
    from repro.archive.binindex import (
        BINARY_FILE,
        binary_index_path,
        check_binary_index,
        read_binary_index,
    )

    catalog_hash = archive.catalog_hash()
    if catalog_hash is None:
        return
    directory = archive.root / INDEX_DIR
    if not any(directory.glob("*.json")) and not any(directory.glob("*.bin")):
        return
    json_fresh = _load_persisted(archive, catalog_hash) is not None
    damage = check_binary_index(archive)
    binary_fresh = False
    if damage is None:
        binary = read_binary_index(archive, catalog_hash)
        if binary is not None:
            binary_fresh = True
            binary.close()
    if json_fresh and binary_fresh:
        return
    if damage is not None:
        source = binary_index_path(archive)
        destination = quarantine_root(archive.root) / INDEX_DIR / f"{BINARY_FILE}.corrupt"
        destination.parent.mkdir(parents=True, exist_ok=True)
        source.replace(destination)
    load_index(archive, rebuild=True)
    report.index_healed = True


def _heal_checkpoints(archive: Archive, report: RepairReport) -> None:
    """Quarantine watch cursor/intent files a crash left unreadable.

    A damaged cursor file only costs a re-walk (ingest is idempotent),
    but leaving it in place would make every future load pay the
    lenient-decode path; parking it under ``quarantine/watch/`` gives
    the next cycle a clean slate and keeps the bytes for forensics.
    """
    store = CheckpointStore(archive.root)
    for path, loader in ((store.checkpoints_path, store.load), (store.intent_path, store.read_intent)):
        if not path.exists():
            continue
        store.damaged = False
        loader()
        if store.damaged:
            destination = quarantine_root(archive.root) / WATCH_DIR / f"{path.stem}.corrupt.json"
            destination.parent.mkdir(parents=True, exist_ok=True)
            path.replace(destination)
            report.checkpoints_reset = True
