"""Incremental ingest: live histories → on-disk archive.

Ingest consumes exactly what collection produces — a
:class:`~repro.store.history.StoreHistory` from ``scrape_history`` or a
whole :class:`~repro.store.history.Dataset` — and persists it:
certificate DER into the content store (deduplicated), one manifest
per snapshot, and a single atomic catalog rewrite at the end.

Everything is incremental.  Objects and manifests are content-named,
so a snapshot that is already archived costs two ``exists()`` checks
and writes nothing; re-ingesting an unchanged corpus leaves the object
directory untouched and rewrites a byte-identical catalog (same
:meth:`~repro.archive.manifest.Archive.catalog_hash`).  A changed
snapshot under an existing ``(provider, version, taken_at)`` key —
e.g. a re-scrape that salvaged more entries — supersedes the old
catalog row; the old manifest file stays until ``archive gc``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.archive.manifest import Archive, CatalogRow, SnapshotManifest
from repro.store.history import Dataset, StoreHistory
from repro.store.snapshot import RootStoreSnapshot


@dataclass
class IngestReport:
    """What one ingest run actually did to the archive."""

    snapshots_seen: int = 0
    snapshots_added: int = 0
    snapshots_replaced: int = 0
    snapshots_unchanged: int = 0
    objects_written: int = 0
    objects_deduplicated: int = 0
    manifests_written: int = 0
    providers: set = field(default_factory=set)

    def merge(self, other: "IngestReport") -> None:
        self.snapshots_seen += other.snapshots_seen
        self.snapshots_added += other.snapshots_added
        self.snapshots_replaced += other.snapshots_replaced
        self.snapshots_unchanged += other.snapshots_unchanged
        self.objects_written += other.objects_written
        self.objects_deduplicated += other.objects_deduplicated
        self.manifests_written += other.manifests_written
        self.providers |= other.providers

    def summary(self) -> str:
        return (
            f"{self.snapshots_seen} snapshots from {len(self.providers)} providers: "
            f"{self.snapshots_added} added, {self.snapshots_replaced} replaced, "
            f"{self.snapshots_unchanged} unchanged; "
            f"{self.objects_written} new objects "
            f"({self.objects_deduplicated} deduplicated), "
            f"{self.manifests_written} new manifests"
        )


class ArchiveWriter:
    """Stateful ingest session over one archive.

    Holds the catalog in memory while snapshots stream in (``collect
    --archive`` ingests provider by provider as scraping completes) and
    flushes it atomically on :meth:`commit`.
    """

    def __init__(self, archive: Archive):
        self.archive = archive
        self.report = IngestReport()
        self._rows: dict[tuple[str, str, str], CatalogRow] = {
            row.key: row for row in archive.read_catalog()
        }
        self._dirty = False

    def add_snapshot(self, snapshot: RootStoreSnapshot) -> None:
        report = self.report
        report.snapshots_seen += 1
        report.providers.add(snapshot.provider)

        manifest = SnapshotManifest.from_snapshot(snapshot)
        row = CatalogRow(
            provider=manifest.provider,
            version=manifest.version,
            taken_at=manifest.taken_at,
            manifest_id=manifest.manifest_id,
            entries=len(manifest),
        )
        existing = self._rows.get(row.key)
        if existing is not None and existing.manifest_id == row.manifest_id:
            report.snapshots_unchanged += 1
            return  # manifest content-named and present: nothing to do

        for entry in snapshot.entries:
            if self.archive.objects.put(entry.certificate.der).created:
                report.objects_written += 1
            else:
                report.objects_deduplicated += 1
        _, created = self.archive.write_manifest(manifest)
        if created:
            report.manifests_written += 1
        if existing is None:
            report.snapshots_added += 1
        else:
            report.snapshots_replaced += 1
        self._rows[row.key] = row
        self._dirty = True

    def add_history(self, history: StoreHistory) -> None:
        for snapshot in history:
            self.add_snapshot(snapshot)

    def commit(self) -> IngestReport:
        """Write the catalog (only when something changed) and report."""
        if self._dirty or self.archive.catalog_bytes() is None:
            self.archive.write_catalog(list(self._rows.values()))
            self._dirty = False
        return self.report


def ingest_snapshots(
    archive: Archive, snapshots: Iterable[RootStoreSnapshot]
) -> IngestReport:
    """Ingest a snapshot stream and commit the catalog once."""
    writer = ArchiveWriter(archive)
    for snapshot in snapshots:
        writer.add_snapshot(snapshot)
    return writer.commit()


def ingest_history(archive: Archive, history: StoreHistory) -> IngestReport:
    return ingest_snapshots(archive, history)


def ingest_dataset(
    archive: Archive, dataset: Dataset, *, providers: Iterable[str] | None = None
) -> IngestReport:
    """Ingest every (selected) provider history in deterministic order."""
    selected = sorted(providers) if providers is not None else dataset.providers
    return ingest_snapshots(
        archive, (s for p in selected for s in dataset[p])
    )
