"""Incremental ingest: live histories → on-disk archive.

Ingest consumes exactly what collection produces — a
:class:`~repro.store.history.StoreHistory` from ``scrape_history`` or a
whole :class:`~repro.store.history.Dataset` — and persists it:
certificate DER into the content store (deduplicated), one manifest
per snapshot, and a single atomic catalog rewrite at the end.

Everything is incremental.  Objects and manifests are content-named,
so a snapshot that is already archived costs two ``exists()`` checks
and writes nothing; re-ingesting an unchanged corpus leaves the object
directory untouched and rewrites a byte-identical catalog (same
:meth:`~repro.archive.manifest.Archive.catalog_hash`).  A changed
snapshot under an existing ``(provider, version, taken_at)`` key —
e.g. a re-scrape that salvaged more entries — supersedes the old
catalog row; the old manifest file stays until ``archive gc``.

Everything is also crash-consistent.  Each writer holds the archive's
single-writer lock (:class:`~repro.archive.lock.WriterLock`) for its
whole session, and records every snapshot's intent in the write-ahead
journal (:class:`~repro.archive.journal.IngestJournal`) *before*
touching objects or manifests, finishing with the hash the new catalog
will have just before the atomic catalog replace.  A writer that dies
at any instant leaves a journal file behind; ``archive repair`` uses
it to roll the ingest forward (catalog landed) or back (it did not).
Cleanup on *graceful* failure uses ``except Exception`` deliberately —
a simulated crash (:class:`~repro.archive.chaos.SimulatedCrash`
derives from :class:`BaseException`) must leave the lock held and the
journal on disk, exactly like ``kill -9``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.archive.index import _load_persisted, apply_index_delta, load_index, persist_index
from repro.archive.journal import IngestJournal, pending_transactions
from repro.archive.lock import WriterLock
from repro.archive.manifest import Archive, CatalogRow, SnapshotManifest, serialize_catalog
from repro.collection.retry import RetryPolicy
from repro.errors import ArchiveError
from repro.obs.instrument import count, observe, stage_timer
from repro.obs.runtime import get_telemetry
from repro.store.history import Dataset, StoreHistory
from repro.store.snapshot import RootStoreSnapshot


@dataclass
class IngestReport:
    """What one ingest run actually did to the archive."""

    snapshots_seen: int = 0
    snapshots_added: int = 0
    snapshots_replaced: int = 0
    snapshots_unchanged: int = 0
    objects_written: int = 0
    objects_deduplicated: int = 0
    manifests_written: int = 0
    providers: set = field(default_factory=set)

    def merge(self, other: "IngestReport") -> None:
        self.snapshots_seen += other.snapshots_seen
        self.snapshots_added += other.snapshots_added
        self.snapshots_replaced += other.snapshots_replaced
        self.snapshots_unchanged += other.snapshots_unchanged
        self.objects_written += other.objects_written
        self.objects_deduplicated += other.objects_deduplicated
        self.manifests_written += other.manifests_written
        self.providers |= other.providers

    def summary(self) -> str:
        return (
            f"{self.snapshots_seen} snapshots from {len(self.providers)} providers: "
            f"{self.snapshots_added} added, {self.snapshots_replaced} replaced, "
            f"{self.snapshots_unchanged} unchanged; "
            f"{self.objects_written} new objects "
            f"({self.objects_deduplicated} deduplicated), "
            f"{self.manifests_written} new manifests"
        )


class ArchiveWriter:
    """Stateful ingest session over one archive.

    Holds the catalog in memory while snapshots stream in (``collect
    --archive`` ingests provider by provider as scraping completes) and
    flushes it atomically on :meth:`commit`.
    """

    def __init__(
        self,
        archive: Archive,
        *,
        lock: bool = True,
        journal: bool = True,
        owner: str = "ingest",
        lock_policy: RetryPolicy | None = None,
        lock_sleep: Callable[[float], None] | None = None,
    ):
        self.archive = archive
        self.report = IngestReport()
        self._lock = (
            WriterLock(archive.root, owner=owner, policy=lock_policy, sleep=lock_sleep)
            if lock
            else None
        )
        self._journal = IngestJournal(archive.root) if journal else None
        if self._lock is not None:
            self._lock.acquire()
        try:
            pending = pending_transactions(archive.root)
            if pending:
                names = ", ".join(state.txn_id for state in pending)
                raise ArchiveError(
                    f"archive {archive.root} has {len(pending)} uncommitted ingest "
                    f"journal(s) ({names}) from a crashed writer; run "
                    "`repro-roots archive repair` before ingesting"
                )
            self._rows: dict[tuple[str, str, str], CatalogRow] = {
                row.key: row for row in archive.read_catalog()
            }
        except Exception:
            self._release_lock()
            raise
        self._dirty = False
        # Incremental-index bookkeeping: the catalog hash this session
        # started from, plus one (old_row, old_fingerprints, manifest)
        # record per snapshot that actually changed.  commit() patches
        # the persisted index with these instead of rescanning every
        # manifest — unless something forces a full rebuild.
        self._base_hash = archive.catalog_hash()
        self._index_changes: list[tuple] = []
        self._index_rebuild_needed = False

    # -- crash-consistency plumbing --------------------------------------

    def _release_lock(self) -> None:
        if self._lock is not None:
            self._lock.release()

    def _journal_snapshot(self, manifest: SnapshotManifest) -> None:
        """Record the snapshot's intent before any of its bytes land."""
        if self._journal is None:
            return
        clock = get_telemetry().clock
        start = clock()
        if not self._journal.active:
            self._journal.begin(self.archive.catalog_hash())
        self._journal.record_snapshot(
            manifest.provider,
            manifest.manifest_id,
            [e.fingerprint for e in manifest.entries],
        )
        observe("repro_archive_journal_seconds", clock() - start, phase="snapshot")

    def abort(self) -> None:
        """Retire this writer after a *graceful* failure, without committing.

        Anything already written is a content-named orphan (``gc``-able)
        and the catalog was never replaced, so the journal can be
        retired too — only an actual crash leaves one behind for
        ``archive repair``.
        """
        if self._journal is not None and self._journal.active:
            self._journal.close()
            if self._journal.path is not None:
                self._journal.path.unlink(missing_ok=True)
        self._release_lock()

    def add_snapshot(self, snapshot: RootStoreSnapshot) -> None:
        report = self.report
        report.snapshots_seen += 1
        report.providers.add(snapshot.provider)

        manifest = SnapshotManifest.from_snapshot(snapshot)
        row = CatalogRow(
            provider=manifest.provider,
            version=manifest.version,
            taken_at=manifest.taken_at,
            manifest_id=manifest.manifest_id,
            entries=len(manifest),
        )
        existing = self._rows.get(row.key)
        if existing is not None and existing.manifest_id == row.manifest_id:
            report.snapshots_unchanged += 1
            count("repro_archive_snapshots_total", outcome="unchanged")
            return  # manifest content-named and present: nothing to do

        if existing is not None:
            try:
                old = self.archive.read_manifest(existing.provider, existing.manifest_id)
                old_fingerprints = frozenset(e.fingerprint for e in old.entries)
            except ArchiveError:
                # Superseded manifest unreadable: the delta is unknowable,
                # so commit() falls back to a full index rebuild.
                self._index_rebuild_needed = True
                old_fingerprints = frozenset()
        else:
            old_fingerprints = frozenset()
        self._index_changes.append((existing, old_fingerprints, manifest))

        self._journal_snapshot(manifest)
        written = deduplicated = 0
        for entry in snapshot.entries:
            if self.archive.objects.put(entry.certificate.der).created:
                written += 1
            else:
                deduplicated += 1
        report.objects_written += written
        report.objects_deduplicated += deduplicated
        if written:
            count("repro_archive_objects_total", written, outcome="written")
        if deduplicated:
            count("repro_archive_objects_total", deduplicated, outcome="deduplicated")
        _, created = self.archive.write_manifest(manifest)
        if created:
            report.manifests_written += 1
        if existing is None:
            report.snapshots_added += 1
            count("repro_archive_snapshots_total", outcome="added")
        else:
            report.snapshots_replaced += 1
            count("repro_archive_snapshots_total", outcome="replaced")
        self._rows[row.key] = row
        self._dirty = True

    def _update_index(self) -> None:
        """Bring the persisted index to the just-written catalog.

        The cheap path patches the index that matched this session's
        *starting* catalog with the session's recorded deltas; anything
        that breaks the delta invariant (no persisted index, it was
        stale already, or a superseded manifest was unreadable) falls
        back to the full rebuild.  Runs after the catalog replace and
        before the journal retires, so a crash mid-update leaves a
        pending journal for ``archive repair`` to finish the job.
        """
        new_hash = self.archive.catalog_hash()
        if new_hash is None:  # pragma: no cover - write_catalog just ran
            return
        base = None
        if not self._index_rebuild_needed and self._base_hash is not None:
            base = _load_persisted(self.archive, self._base_hash)
        if base is not None:
            updated = apply_index_delta(base, self._index_changes, new_hash)
            persist_index(self.archive, updated)
            count("repro_archive_index_updates_total", mode="delta")
        else:
            load_index(self.archive, rebuild=True)
            count("repro_archive_index_updates_total", mode="rebuild")
        self._index_changes = []
        self._base_hash = new_hash

    def add_history(self, history: StoreHistory) -> None:
        for snapshot in history:
            self.add_snapshot(snapshot)

    def commit(self) -> IngestReport:
        """Write the catalog (only when something changed), release, report.

        The catalog intent — the SHA-256 the replaced catalog will have
        — is journaled first, so recovery can tell whether the replace
        landed; the journal itself is retired only after it did.
        """
        try:
            with stage_timer(
                "archive.commit", "repro_archive_commit_seconds", archive=str(self.archive.root)
            ):
                if self._dirty or self.archive.catalog_bytes() is None:
                    rows = list(self._rows.values())
                    if self._journal is not None:
                        clock = get_telemetry().clock
                        start = clock()
                        if not self._journal.active:
                            self._journal.begin(self.archive.catalog_hash())
                        intent = hashlib.sha256(serialize_catalog(rows)).hexdigest()
                        self._journal.record_catalog(intent)
                        observe(
                            "repro_archive_journal_seconds", clock() - start, phase="catalog"
                        )
                    self.archive.write_catalog(rows)
                    self._update_index()
                    if self._journal is not None:
                        self._journal.commit()
                    self._dirty = False
                elif self._journal is not None and self._journal.active:
                    self._journal.commit()  # intents that turned out to be no-ops
        except Exception:
            self.abort()
            raise
        self._release_lock()
        return self.report


def ingest_snapshots(
    archive: Archive, snapshots: Iterable[RootStoreSnapshot], **writer_options
) -> IngestReport:
    """Ingest a snapshot stream and commit the catalog once."""
    writer = ArchiveWriter(archive, **writer_options)
    try:
        for snapshot in snapshots:
            writer.add_snapshot(snapshot)
    except Exception:
        writer.abort()
        raise
    return writer.commit()


def ingest_history(archive: Archive, history: StoreHistory, **writer_options) -> IngestReport:
    return ingest_snapshots(archive, history, **writer_options)


def ingest_dataset(
    archive: Archive,
    dataset: Dataset,
    *,
    providers: Iterable[str] | None = None,
    **writer_options,
) -> IngestReport:
    """Ingest every (selected) provider history in deterministic order."""
    selected = sorted(providers) if providers is not None else dataset.providers
    return ingest_snapshots(
        archive, (s for p in selected for s in dataset[p]), **writer_options
    )
