"""Seeded crash and fault injection for the archive's write path.

The spiritual sibling of :class:`repro.collection.faults.FaultPlan`,
one layer down: where the collection plan damages what an origin
*serves*, the chaos plan kills the archive writer itself, at any of
the named write sites :mod:`repro.archive.io` announces (journal
appends, object/manifest/catalog replaces, and the windows just after
each rename).  Everything is deterministic: the kill-point matrix for
a given site trace is a pure function, and the per-point injection
style (clean kill, torn write, flipped bytes) is a hash of
``(seed, site, hit)`` — two runs with the same seed crash identically.

Usage shape, mirroring the tests and the robustness bench::

    sites = record_sites(lambda: ingest_dataset(archive, dataset))
    for point, style in ChaosPlan(seed="pr4").matrix(sites):
        with crash_at(point.site, hit=point.hit, style=style):
            with pytest.raises(SimulatedCrash):
                ingest_dataset(fresh_archive, dataset)
        repair_archive(fresh_archive, force_unlock=True)

:class:`SimulatedCrash` derives from :class:`BaseException` on
purpose: a real ``kill -9`` is not catchable, so no ``except
Exception`` cleanup handler in the write path may observe it — the
lock stays held, the journal stays open, exactly as a dead process
would leave them.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.archive.io import clear_crash_hook, set_crash_hook


class SimulatedCrash(BaseException):
    """The writer was killed at a named write site (uncatchable on purpose)."""

    def __init__(self, site: str, hit: int, style: str = "kill"):
        super().__init__(f"simulated crash at write site {site!r} (hit {hit}, {style})")
        self.site = site
        self.hit = hit
        self.style = style


@dataclass(frozen=True)
class CrashPoint:
    """One cell of the kill matrix: the Nth firing of a write site."""

    site: str
    hit: int = 1  # 1-based occurrence within the instrumented run


#: Injection styles: die cleanly; die after writing a torn prefix of the
#: pending bytes to the *final* name (modelling a non-atomic sector
#: tear); die after writing the bytes with their head flipped (bitrot).
STYLES = ("kill", "torn", "flip")


def _fraction(key: str) -> float:
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class CrashInjector:
    """The installed hook: counts firings of one site, then crashes."""

    def __init__(
        self,
        point: CrashPoint,
        *,
        style: str = "kill",
        keep_fraction: float = 0.5,
        flip_window: int = 16,
        flip_mask: int = 0xA5,
    ):
        if style not in STYLES:
            raise ValueError(f"unknown crash style {style!r}")
        self.point = point
        self.style = style
        self.keep_fraction = keep_fraction
        self.flip_window = flip_window
        self.flip_mask = flip_mask
        self.seen = 0
        self.fired = False

    def __call__(self, site: str, path: Path | None, data: bytes | None) -> None:
        if site != self.point.site:
            return
        self.seen += 1
        if self.seen != self.point.hit:
            return
        self.fired = True
        if path is not None and data is not None and self.style != "kill":
            if self.style == "torn":
                damaged = data[: max(1, int(len(data) * self.keep_fraction))]
            else:  # flip
                head = bytes(b ^ self.flip_mask for b in data[: self.flip_window])
                damaged = head + data[self.flip_window :]
            # Journal-style sites are appends to a growing file; replace
            # sites pend a whole file.  Damaging an append must not
            # truncate the records already on disk.
            if site.startswith("journal:"):
                with open(path, "ab") as handle:
                    handle.write(damaged)
            else:
                path.write_bytes(damaged)
        raise SimulatedCrash(site, self.point.hit, self.style)


@contextmanager
def crash_at(site: str, *, hit: int = 1, style: str = "kill") -> Iterator[CrashInjector]:
    """Install a :class:`CrashInjector` for the duration of the block."""
    injector = CrashInjector(CrashPoint(site, hit), style=style)
    set_crash_hook(injector)
    try:
        yield injector
    finally:
        clear_crash_hook()


def record_sites(operation: Callable[[], object]) -> list[str]:
    """Run ``operation`` once, returning every write-site firing in order."""
    sites: list[str] = []
    set_crash_hook(lambda site, path, data: sites.append(site))
    try:
        operation()
    finally:
        clear_crash_hook()
    return sites


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded kill-matrix builder over a recorded site trace.

    For each distinct site the matrix covers the first, middle, and
    last occurrence (deduplicated when the site fires fewer than three
    times), and assigns each point an injection style by hashing
    ``(seed, site, hit)`` — so the matrix is exhaustive over site
    *types* and deterministic over *styles* without enumerating every
    one of a large ingest's thousands of object writes.
    """

    seed: str = "chaos"
    styles: tuple[str, ...] = STYLES

    def style_for(self, site: str, hit: int) -> str:
        choice = _fraction(f"{self.seed}:{site}:{hit}:style")
        return self.styles[int(choice * len(self.styles)) % len(self.styles)]

    def matrix(self, sites: list[str]) -> list[tuple[CrashPoint, str]]:
        counts: dict[str, int] = {}
        for site in sites:
            counts[site] = counts.get(site, 0) + 1
        points: list[tuple[CrashPoint, str]] = []
        for site in sorted(counts):
            total = counts[site]
            for hit in sorted({1, (total + 1) // 2, total}):
                points.append((CrashPoint(site, hit), self.style_for(site, hit)))
        return points
