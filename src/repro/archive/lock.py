"""Advisory single-writer locking for the archive.

Two concurrent ingests into the same archive would interleave catalog
rewrites and journal transactions; the :class:`WriterLock` serializes
them with an O_EXCL lockfile (``.writer.lock`` in the archive root)
holding the owner's pid and label as JSON.

Acquisition reuses the collection layer's retry machinery
(:mod:`repro.collection.retry`): a held lock raises
:class:`~repro.errors.TransientCollectionError` internally so
``call_with_retry`` applies its exponential backoff with deterministic
jitter, and only after the policy's budget is exhausted does the
caller see :class:`~repro.errors.ArchiveLockError`.  Sleeping goes
through an injectable callable (``SimulatedClock`` in tests), honoring
the no-wall-clock rule.

A lock whose holder is no longer alive (``os.kill(pid, 0)`` fails) is
*stale* — the writer crashed without releasing — and is broken
automatically during acquisition and by ``archive repair``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.collection.retry import RetryPolicy, call_with_retry
from repro.errors import ArchiveLockError, TransientCollectionError

#: File name of the writer lock inside an archive root.
LOCK_FILE = ".writer.lock"

#: Default acquisition budget: 5 attempts with fast exponential backoff.
LOCK_POLICY = RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=1.0, seed="archive-lock")


def lock_path(archive_root: Path) -> Path:
    return Path(archive_root) / LOCK_FILE


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process.

    Only :class:`ProcessLookupError` means dead.  A
    :class:`PermissionError` means the pid exists but belongs to
    another user — a *live* foreign writer whose lock must not be
    broken; conflating the two failure modes is exactly the bug that
    let a stale-lock sweep kill a foreign writer's lock.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


@dataclass(frozen=True)
class LockInfo:
    """The recorded holder of a writer lock."""

    pid: int
    owner: str
    #: Treat the holder as alive regardless of the pid probe — set when
    #: the lockfile itself could not be *read* for permission reasons,
    #: which proves a foreign owner exists even though their pid is
    #: unknown.
    presumed_alive: bool = False

    @property
    def alive(self) -> bool:
        return self.presumed_alive or _pid_alive(self.pid)


def read_lock(archive_root: Path) -> LockInfo | None:
    """The current lock holder, or None when absent/unreadable.

    A *corrupt* lockfile (torn write from a crash at exactly the wrong
    moment) reports pid 0, which is never alive — so it is treated as
    stale and broken on the next acquisition.  A lockfile we lack
    permission to read is the opposite case: some other user's writer
    owns it, so it reports ``presumed_alive=True`` and is never
    broken automatically.
    """
    try:
        payload = json.loads(lock_path(archive_root).read_text())
        return LockInfo(pid=int(payload["pid"]), owner=str(payload.get("owner", "?")))
    except FileNotFoundError:
        return None
    except PermissionError:
        return LockInfo(pid=0, owner="<foreign>", presumed_alive=True)
    except (ValueError, KeyError, TypeError, OSError):
        return LockInfo(pid=0, owner="<unreadable>")


def break_lock(archive_root: Path) -> bool:
    """Remove the lockfile unconditionally; True when one was removed."""
    try:
        lock_path(archive_root).unlink()
    except FileNotFoundError:
        return False
    return True


class WriterLock:
    """The advisory single-writer lock over one archive directory."""

    def __init__(
        self,
        archive_root: Path,
        *,
        owner: str = "ingest",
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] | None = None,
    ):
        self.root = Path(archive_root)
        self.owner = owner
        self.policy = policy or LOCK_POLICY
        self._sleep = sleep
        self.held = False

    @property
    def path(self) -> Path:
        return lock_path(self.root)

    def acquire(self) -> None:
        """Take the lock, backing off behind a live holder, breaking a stale one."""
        if self.held:
            raise ArchiveLockError(f"writer lock on {self.root} already held by this writer")
        try:
            call_with_retry(
                self._try_acquire,
                policy=self.policy,
                key=str(self.root),
                sleep=self._sleep,
            )
        except TransientCollectionError as exc:
            raise ArchiveLockError(
                f"could not acquire writer lock on {self.root} after "
                f"{self.policy.max_attempts} attempts: {exc}"
            ) from exc
        self.held = True

    def _try_acquire(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"pid": os.getpid(), "owner": self.owner}) + "\n"
        try:
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            info = read_lock(self.root)
            if info is None:
                # Holder released between our open and our read: retry.
                raise TransientCollectionError(f"writer lock on {self.root} contended")
            if not info.alive:
                break_lock(self.root)  # crashed writer: break and retry
                raise TransientCollectionError(
                    f"stale writer lock on {self.root} (dead pid {info.pid}) broken"
                )
            raise TransientCollectionError(
                f"writer lock on {self.root} held by pid {info.pid} ({info.owner})"
            )
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)

    def release(self) -> None:
        if not self.held:
            return
        self.held = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass  # broken by force while we held it: nothing to release

    def __enter__(self) -> "WriterLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()
