"""Content-addressed trust-store archive with an indexed query engine.

The persistence layer under the ROADMAP's serving goals.  Collected
root-store histories land on disk exactly once — certificate DER
deduplicated by SHA-256 into a sharded object store
(:mod:`repro.archive.cas`), one canonical-JSON manifest per snapshot
plus an atomically rewritten catalog (:mod:`repro.archive.manifest`),
incremental ingest straight from ``scrape_history``/``Dataset``
(:mod:`repro.archive.ingest`) — and are served back through persisted
inverted indexes and LRU caches (:mod:`repro.archive.index`,
:mod:`repro.archive.query`): point-in-time trust lookups, snapshot
reconstruction, cross-provider diffs, removal lags, and archive-backed
incidence/distance matrices, all in milliseconds instead of a
full-corpus rebuild.  :mod:`repro.archive.verify` is the integrity
pass (every object re-hashed, catalog cross-checked, orphans found)
behind ``archive verify`` / ``archive gc``.

The archive is crash-consistent and self-healing end to end: every
write is durable and atomic with a unique per-writer temp name
(:mod:`repro.archive.io`), every ingest runs under the single-writer
lock (:mod:`repro.archive.lock`) with its intent in a write-ahead
journal (:mod:`repro.archive.journal`), a seeded fault harness can
kill a writer at every write site (:mod:`repro.archive.chaos`), and
``archive repair`` (:mod:`repro.archive.repair`) rolls interrupted
ingests forward or back and quarantines bitrot, leaving ``verify``
clean while degraded queries keep serving the intact snapshots.
"""

from repro.archive.binindex import (
    BinaryIndex,
    check_binary_index,
    encode_binary_index,
    load_binary_index,
    persist_binary_index,
    read_binary_index,
)
from repro.archive.cas import ContentStore, PutResult, content_address
from repro.archive.checkpoint import CheckpointStore, Cursor
from repro.archive.chaos import (
    ChaosPlan,
    CrashInjector,
    CrashPoint,
    SimulatedCrash,
    crash_at,
    record_sites,
)
from repro.archive.index import (
    ArchiveIndex,
    apply_index_delta,
    Posting,
    TimelineEntry,
    build_index,
    load_index,
    persist_index,
)
from repro.archive.ingest import (
    ArchiveWriter,
    IngestReport,
    ingest_dataset,
    ingest_history,
    ingest_snapshots,
)
from repro.archive.io import (
    atomic_write_bytes,
    fsync_enabled,
    set_crash_hook,
    set_fsync,
    stray_tmp_files,
)
from repro.archive.journal import (
    IngestJournal,
    JournalState,
    pending_transactions,
    read_journal,
)
from repro.archive.lock import LockInfo, WriterLock, break_lock, read_lock
from repro.archive.manifest import (
    Archive,
    CatalogRow,
    ManifestEntry,
    SnapshotManifest,
    serialize_catalog,
)
from repro.archive.query import (
    ArchiveDiff,
    ArchiveQuery,
    CacheStats,
    RemovalLag,
    TrustObservation,
)
from repro.archive.repair import (
    QuarantinedSnapshot,
    RepairReport,
    read_quarantine,
    repair_archive,
)
from repro.archive.verify import GCResult, VerificationReport, gc_archive, verify_archive

__all__ = [
    "Archive",
    "ArchiveDiff",
    "ArchiveIndex",
    "ArchiveQuery",
    "ArchiveWriter",
    "BinaryIndex",
    "CacheStats",
    "CatalogRow",
    "ChaosPlan",
    "CheckpointStore",
    "Cursor",
    "ContentStore",
    "CrashInjector",
    "CrashPoint",
    "GCResult",
    "IngestJournal",
    "IngestReport",
    "JournalState",
    "LockInfo",
    "ManifestEntry",
    "Posting",
    "PutResult",
    "QuarantinedSnapshot",
    "RemovalLag",
    "RepairReport",
    "SimulatedCrash",
    "SnapshotManifest",
    "TimelineEntry",
    "TrustObservation",
    "VerificationReport",
    "WriterLock",
    "apply_index_delta",
    "atomic_write_bytes",
    "break_lock",
    "build_index",
    "check_binary_index",
    "content_address",
    "crash_at",
    "encode_binary_index",
    "fsync_enabled",
    "load_binary_index",
    "gc_archive",
    "ingest_dataset",
    "ingest_history",
    "ingest_snapshots",
    "load_index",
    "pending_transactions",
    "persist_binary_index",
    "persist_index",
    "read_binary_index",
    "read_journal",
    "read_lock",
    "read_quarantine",
    "record_sites",
    "repair_archive",
    "serialize_catalog",
    "set_crash_hook",
    "set_fsync",
    "stray_tmp_files",
    "verify_archive",
]
