"""Content-addressed trust-store archive with an indexed query engine.

The persistence layer under the ROADMAP's serving goals.  Collected
root-store histories land on disk exactly once — certificate DER
deduplicated by SHA-256 into a sharded object store
(:mod:`repro.archive.cas`), one canonical-JSON manifest per snapshot
plus an atomically rewritten catalog (:mod:`repro.archive.manifest`),
incremental ingest straight from ``scrape_history``/``Dataset``
(:mod:`repro.archive.ingest`) — and are served back through persisted
inverted indexes and LRU caches (:mod:`repro.archive.index`,
:mod:`repro.archive.query`): point-in-time trust lookups, snapshot
reconstruction, cross-provider diffs, removal lags, and archive-backed
incidence/distance matrices, all in milliseconds instead of a
full-corpus rebuild.  :mod:`repro.archive.verify` is the integrity
pass (every object re-hashed, catalog cross-checked, orphans found)
behind ``archive verify`` / ``archive gc``.
"""

from repro.archive.cas import ContentStore, PutResult, content_address
from repro.archive.index import (
    ArchiveIndex,
    Posting,
    TimelineEntry,
    build_index,
    load_index,
    persist_index,
)
from repro.archive.ingest import (
    ArchiveWriter,
    IngestReport,
    ingest_dataset,
    ingest_history,
    ingest_snapshots,
)
from repro.archive.manifest import (
    Archive,
    CatalogRow,
    ManifestEntry,
    SnapshotManifest,
)
from repro.archive.query import (
    ArchiveDiff,
    ArchiveQuery,
    CacheStats,
    RemovalLag,
    TrustObservation,
)
from repro.archive.verify import GCResult, VerificationReport, gc_archive, verify_archive

__all__ = [
    "Archive",
    "ArchiveDiff",
    "ArchiveIndex",
    "ArchiveQuery",
    "ArchiveWriter",
    "CacheStats",
    "CatalogRow",
    "ContentStore",
    "GCResult",
    "IngestReport",
    "ManifestEntry",
    "Posting",
    "PutResult",
    "RemovalLag",
    "SnapshotManifest",
    "TimelineEntry",
    "TrustObservation",
    "VerificationReport",
    "build_index",
    "content_address",
    "gc_archive",
    "ingest_dataset",
    "ingest_history",
    "ingest_snapshots",
    "load_index",
    "persist_index",
    "verify_archive",
]
