"""A keyed result cache living beside the archive's object store.

The scenario engine sweeps (provider, date) grids whose per-cell answer
is fully determined by content hashes: the snapshot manifest in force,
the scenario definition, and the engine version.  :class:`ResultCache`
stores those answers as JSON blobs under ``<archive>/cache/<namespace>/``
using the same two-hex sharding and atomic-write discipline as the CAS,
so repeated sweeps, phased-schedule steps, and baseline re-runs are
disk reads instead of recomputation.

The cache is strictly an accelerator: entries are keyed by a SHA-256
the *caller* derives from content hashes, damaged or truncated entries
read as misses, and ``archive gc``-style deletion of the whole
directory is always safe.

Damage **self-heals**: a torn or corrupted entry is not just a miss —
on first read it is moved into the archive quarantine
(``<archive>/quarantine/cache/<namespace>/``) so the next sweep's
recompute-and-``put`` rewrites a clean entry instead of tripping over
the same broken bytes forever.  Heals are counted in
``repro_archive_cache_heal_total`` per namespace.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.archive.io import atomic_write_bytes
from repro.obs.instrument import count

#: Directory (under the archive root) holding all result caches.
CACHE_DIR = "cache"

_KEY_LENGTH = 64  # hex sha256


def cache_key(payload: dict) -> str:
    """Derive a cache key from a dict of content hashes / parameters.

    The payload must be JSON-serializable with deterministic content
    (hashes, names, ISO dates — not floats of measured time).
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Sharded JSON blob cache under ``<archive>/cache/<namespace>/``."""

    def __init__(self, archive_root: Path | str, namespace: str):
        if not namespace or "/" in namespace:
            raise ValueError(f"bad cache namespace {namespace!r}")
        self.archive_root = Path(archive_root)
        self.root = self.archive_root / CACHE_DIR / namespace
        self.namespace = namespace

    def _path(self, key: str) -> Path:
        if len(key) != _KEY_LENGTH or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys are lowercase hex sha256, got {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str):
        """The cached value for ``key``, or None on miss/damage.

        A damaged entry is quarantined on the way out (self-heal): the
        miss triggers a recompute, the recompute's ``put`` writes clean
        bytes, and the broken original is preserved for forensics under
        the archive quarantine instead of shadowing every future read.
        """
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            return json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            self._quarantine(path)
            return None  # torn or corrupted entry: treat as a miss

    def _quarantine(self, path: Path) -> None:
        # Lazy import: repair is a higher layer (it imports the catalog
        # machinery); only the directory-name constant is shared.
        from repro.archive.repair import QUARANTINE_DIR

        target_dir = self.archive_root / QUARANTINE_DIR / CACHE_DIR / self.namespace
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            path.replace(target_dir / f"{path.name}.corrupt")
        except OSError:
            return  # racing reader already healed it (or FS is read-only)
        count("repro_archive_cache_heal_total", namespace=self.namespace)

    def put(self, key: str, value) -> None:
        """Store ``value`` (JSON-serializable) under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = json.dumps(value, sort_keys=True, separators=(",", ":")).encode()
        atomic_write_bytes(path, data, site=f"cache.{self.namespace}.put")

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(
            1
            for shard in self.root.iterdir()
            if shard.is_dir()
            for entry in shard.iterdir()
            if entry.suffix == ".json"
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.suffix == ".json":
                    entry.unlink()
                    removed += 1
        return removed
