"""Persisted inverted indexes over the archive catalog.

Two indexes turn the high-value queries from catalog scans into direct
lookups:

- **fingerprint postings** (``index/fingerprints.json``): certificate
  fingerprint → sorted ``(provider, version, taken_at)`` postings — one
  per snapshot that contains the root.  Answers "who ever shipped X,
  and in which releases?" without opening a single manifest.
- **provider timelines** (``index/timelines.json``): provider → the
  date-ordered ``(taken_at, version, manifest_id)`` release timeline.
  Point-in-time resolution ("the snapshot in force on date D") is a
  ``bisect`` over this list.

Both files carry the catalog hash they were built from.  Loading
compares it against the live catalog and silently rebuilds (and
re-persists) when stale, so indexes never need manual invalidation:
ingest rewrites the catalog, and the next query rebuilds exactly once.

Payloads are compact canonical JSON (sorted keys, no whitespace):
byte-determinism is load-bearing — the kill-matrix tests require a
delta-maintained index to be byte-identical to a rebuilt one — and the
pretty-printed form only made the files bigger and the legacy parse
path slower.  ``persist_index`` additionally installs the mmap-able
binary form (:mod:`repro.archive.binindex`) so the two formats can
never drift: every writer path (full rebuild, incremental delta,
repair) lands all three files under the same ``index`` crash site.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import Iterable

from repro.archive.io import atomic_write_bytes
from repro.archive.manifest import Archive
from repro.errors import ArchiveError

#: Directory name of the index files inside an archive root.
INDEX_DIR = "index"
FINGERPRINTS_FILE = "fingerprints.json"
TIMELINES_FILE = "timelines.json"
INDEX_SCHEMA = 1


@dataclass(frozen=True)
class Posting:
    """One appearance of a fingerprint: a (provider, release) pair."""

    provider: str
    version: str
    taken_at: date


@dataclass(frozen=True)
class TimelineEntry:
    """One release on a provider's timeline."""

    taken_at: date
    version: str
    manifest_id: str
    entries: int


@dataclass(frozen=True)
class ArchiveIndex:
    """The loaded (or freshly built) index pair, ready to query."""

    catalog_hash: str
    postings: dict  # fingerprint -> tuple[Posting, ...]
    timelines: dict  # provider -> tuple[TimelineEntry, ...] (date-ordered)

    @property
    def providers(self) -> list[str]:
        return sorted(self.timelines)

    @property
    def fingerprint_count(self) -> int:
        return len(self.postings)

    def postings_for(self, fingerprint: str) -> tuple[Posting, ...]:
        return self.postings.get(fingerprint, ())

    def timeline(self, provider: str) -> tuple[TimelineEntry, ...]:
        try:
            return self.timelines[provider]
        except KeyError as exc:
            raise ArchiveError(f"no provider {provider!r} in archive") from exc

    def in_force(self, provider: str, when: date) -> TimelineEntry | None:
        """The release in force at ``when`` (latest taken on or before).

        Both edges answer "no snapshot" (None) explicitly rather than
        falling through to the bisect arithmetic: an empty timeline has
        nothing to resolve, and a ``when`` before the first release
        must *not* index ``position - 1 == -1`` (which would silently
        wrap to the provider's *last* snapshot).
        """
        timeline = self.timeline(provider)
        if not timeline:
            return None  # provider known, but no snapshots on record
        position = bisect_right(timeline, when, key=lambda t: t.taken_at)
        if position == 0:
            return None  # `when` predates the first release
        return timeline[position - 1]


def build_index(archive: Archive) -> ArchiveIndex:
    """Scan catalog + manifests into a fresh in-memory index."""
    catalog_hash = archive.catalog_hash()
    if catalog_hash is None:
        raise ArchiveError(f"archive {archive.root} has no catalog (nothing ingested?)")
    postings: dict[str, list[Posting]] = {}
    timelines: dict[str, list[TimelineEntry]] = {}
    for row in archive.read_catalog():
        timelines.setdefault(row.provider, []).append(
            TimelineEntry(
                taken_at=row.taken_at,
                version=row.version,
                manifest_id=row.manifest_id,
                entries=row.entries,
            )
        )
        manifest = archive.read_manifest(row.provider, row.manifest_id)
        for entry in manifest.entries:
            postings.setdefault(entry.fingerprint, []).append(
                Posting(provider=row.provider, version=row.version, taken_at=row.taken_at)
            )
    for timeline in timelines.values():
        timeline.sort(key=lambda t: (t.taken_at, t.version))
    for plist in postings.values():
        plist.sort(key=lambda p: (p.provider, p.taken_at.isoformat(), p.version))
    return ArchiveIndex(
        catalog_hash=catalog_hash,
        postings={fp: tuple(ps) for fp, ps in postings.items()},
        timelines={p: tuple(ts) for p, ts in timelines.items()},
    )


def apply_index_delta(
    base: ArchiveIndex,
    changes: Iterable[tuple],
    catalog_hash: str,
) -> ArchiveIndex:
    """A new index equal to rebuilding after ``changes``, without the scan.

    ``changes`` is what one writer session did: ``(old_row, old_fingerprints,
    manifest)`` triples where ``old_row`` is the superseded
    :class:`~repro.archive.manifest.CatalogRow` (None for a brand-new
    snapshot) and ``manifest`` the snapshot's new manifest.  Postings
    and timelines are patched in place and re-sorted with exactly the
    :func:`build_index` sort keys, so the persisted bytes come out
    identical to a full rebuild — the kill-matrix test depends on that.
    """
    postings = {fp: list(ps) for fp, ps in base.postings.items()}
    timelines = {p: list(ts) for p, ts in base.timelines.items()}
    for old_row, old_fingerprints, manifest in changes:
        new_fingerprints = {entry.fingerprint for entry in manifest.entries}
        posting = Posting(
            provider=manifest.provider, version=manifest.version, taken_at=manifest.taken_at
        )
        entry = TimelineEntry(
            taken_at=manifest.taken_at,
            version=manifest.version,
            manifest_id=manifest.manifest_id,
            entries=len(manifest),
        )
        timeline = timelines.setdefault(manifest.provider, [])
        if old_row is not None:
            # Same (provider, version, taken_at) key, new content: the
            # Posting value is unchanged, so only the fingerprint sets'
            # symmetric difference needs touching.
            for fp in set(old_fingerprints) - new_fingerprints:
                plist = postings.get(fp, [])
                if posting in plist:
                    plist.remove(posting)
                if not plist:
                    postings.pop(fp, None)
            for fp in new_fingerprints - set(old_fingerprints):
                postings.setdefault(fp, []).append(posting)
            for position, existing in enumerate(timeline):
                if (existing.taken_at, existing.version) == (entry.taken_at, entry.version):
                    timeline[position] = entry
                    break
            else:
                timeline.append(entry)
        else:
            for fp in new_fingerprints:
                postings.setdefault(fp, []).append(posting)
            timeline.append(entry)
    for timeline in timelines.values():
        timeline.sort(key=lambda t: (t.taken_at, t.version))
    for plist in postings.values():
        plist.sort(key=lambda p: (p.provider, p.taken_at.isoformat(), p.version))
    return ArchiveIndex(
        catalog_hash=catalog_hash,
        postings={fp: tuple(ps) for fp, ps in postings.items()},
        timelines={p: tuple(ts) for p, ts in timelines.items()},
    )


def _index_dir(archive: Archive) -> Path:
    return archive.root / INDEX_DIR


def persist_index(archive: Archive, index: ArchiveIndex) -> None:
    """Write every index file atomically (same pattern as the catalog).

    Three files land, all under the ``index`` crash site: the two
    compact-JSON payloads and the binary ``trust.bin`` the serving
    layer mmaps.  A crash between any two of them leaves a stale or
    missing sibling that ``repair`` (and lazy query loads) rebuild.
    """
    directory = _index_dir(archive)
    directory.mkdir(parents=True, exist_ok=True)
    files = {
        FINGERPRINTS_FILE: {
            "schema": INDEX_SCHEMA,
            "catalog_hash": index.catalog_hash,
            "postings": {
                fp: [[p.provider, p.version, p.taken_at.isoformat()] for p in ps]
                for fp, ps in sorted(index.postings.items())
            },
        },
        TIMELINES_FILE: {
            "schema": INDEX_SCHEMA,
            "catalog_hash": index.catalog_hash,
            "timelines": {
                provider: [
                    [t.taken_at.isoformat(), t.version, t.manifest_id, t.entries]
                    for t in timeline
                ]
                for provider, timeline in sorted(index.timelines.items())
            },
        },
    }
    for name, payload in files.items():
        data = (
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("ascii")
        atomic_write_bytes(directory / name, data, site="index")

    from repro.archive.binindex import persist_binary_index  # circular at module scope

    persist_binary_index(archive, index)


def _load_persisted(archive: Archive, catalog_hash: str) -> ArchiveIndex | None:
    """The persisted index, or None when missing/stale/unreadable."""
    directory = _index_dir(archive)
    try:
        fp_payload = json.loads((directory / FINGERPRINTS_FILE).read_text())
        tl_payload = json.loads((directory / TIMELINES_FILE).read_text())
    except (FileNotFoundError, ValueError):
        return None
    if (
        fp_payload.get("catalog_hash") != catalog_hash
        or tl_payload.get("catalog_hash") != catalog_hash
    ):
        return None  # stale: catalog changed since this index was built
    try:
        postings = {
            fp: tuple(
                Posting(provider=p, version=v, taken_at=date.fromisoformat(d))
                for p, v, d in ps
            )
            for fp, ps in fp_payload["postings"].items()
        }
        timelines = {
            provider: tuple(
                TimelineEntry(
                    taken_at=date.fromisoformat(d),
                    version=v,
                    manifest_id=m,
                    entries=n,
                )
                for d, v, m, n in timeline
            )
            for provider, timeline in tl_payload["timelines"].items()
        }
    except (KeyError, TypeError, ValueError):
        return None  # malformed on disk: treat as absent and rebuild
    return ArchiveIndex(catalog_hash=catalog_hash, postings=postings, timelines=timelines)


def load_index(archive: Archive, *, rebuild: bool = False) -> ArchiveIndex:
    """The archive's index: persisted when fresh, rebuilt when stale.

    A rebuild is persisted before returning, so the cost is paid once
    per catalog version no matter how many query sessions follow.
    """
    catalog_hash = archive.catalog_hash()
    if catalog_hash is None:
        raise ArchiveError(f"archive {archive.root} has no catalog (nothing ingested?)")
    if not rebuild:
        persisted = _load_persisted(archive, catalog_hash)
        if persisted is not None:
            return persisted
    index = build_index(archive)
    persist_index(archive, index)
    return index
