"""The write-ahead ingest journal: crash-consistent intent logging.

Every ingest transaction records its *intent* before touching the
archive, so a crash at any instant leaves enough on disk to either
finish the ingest or undo it — never a silently half-written archive.
One append-only JSONL file per transaction lives under ``journal/``
inside the archive root; each record is fsync'd before the action it
describes happens::

    journal/txn-<pid>-<n>.jsonl
      {"record": "begin",    "txn": ..., "catalog_hash": <before|null>}
      {"record": "snapshot", "provider": ..., "manifest_id": ...,
       "objects": [<fingerprints the snapshot may write>]}
      {"record": "catalog",  "catalog_hash": <hash the new catalog will have>}
      {"record": "commit"}

The ``snapshot`` intent is written *before* its objects and manifest,
and may over-approximate (it lists every object the snapshot
references, including ones already present from deduplication) —
recovery only ever removes intent-listed files the current catalog
does not reach, so an over-approximation is always safe.  The
``catalog`` record carries the hash the new catalog *will* have, which
is what lets :func:`repro.archive.repair.repair_archive` distinguish
roll-forward (the catalog replace landed: the ingest is complete,
journal can be retired) from roll-back (it did not: remove the
transaction's unreachable objects and manifests).

A committed journal is deleted immediately; the ``journal/`` directory
is therefore exactly the set of in-flight or crashed transactions.
Torn trailing lines (a crash mid-append) are tolerated and ignored on
read.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.archive.io import AppendFile, fire_site, fsync_dir
from repro.errors import ArchiveError

#: Directory name of the journal inside an archive root.
JOURNAL_DIR = "journal"
JOURNAL_SCHEMA = 1


def journal_dir(archive_root: Path) -> Path:
    return archive_root / JOURNAL_DIR


@dataclass
class JournalState:
    """One transaction's journal, as read back during recovery."""

    txn_id: str
    path: Path
    committed: bool = False
    catalog_hash_before: str | None = None
    catalog_intent: str | None = None  # hash the new catalog would have
    snapshots: list = field(default_factory=list)  # (provider, manifest_id, objects)
    torn_tail: bool = False  # the final line was cut off mid-append

    @property
    def objects(self) -> set[str]:
        return {fp for _, _, objects in self.snapshots for fp in objects}

    @property
    def manifests(self) -> set[tuple[str, str]]:
        return {(provider, manifest_id) for provider, manifest_id, _ in self.snapshots}


class IngestJournal:
    """The writer side: append intents with per-record durability."""

    def __init__(self, archive_root: Path):
        self.directory = journal_dir(archive_root)
        self.txn_id: str | None = None
        self.path: Path | None = None
        self._file: AppendFile | None = None

    @property
    def active(self) -> bool:
        return self._file is not None

    def begin(self, catalog_hash: str | None) -> str:
        """Open a fresh transaction file and record the starting state."""
        if self.active:
            raise ArchiveError("ingest journal transaction already begun")
        self.directory.mkdir(parents=True, exist_ok=True)
        for n in itertools.count():
            txn_id = f"txn-{os.getpid()}-{n:04d}"
            path = self.directory / f"{txn_id}.jsonl"
            try:
                self._file = AppendFile(path, exclusive=True)
            except FileExistsError:
                continue
            self.txn_id, self.path = txn_id, path
            break
        self._append(
            {
                "record": "begin",
                "schema": JOURNAL_SCHEMA,
                "txn": self.txn_id,
                "catalog_hash": catalog_hash,
            },
            site="journal:begin",
        )
        return self.txn_id

    def record_snapshot(self, provider: str, manifest_id: str, objects: list[str]) -> None:
        """Intent: this snapshot's manifest and objects are about to land."""
        self._append(
            {
                "record": "snapshot",
                "provider": provider,
                "manifest_id": manifest_id,
                "objects": sorted(objects),
            },
            site="journal:snapshot",
        )

    def record_catalog(self, catalog_hash: str) -> None:
        """Intent: the catalog is about to be replaced by bytes hashing so."""
        self._append(
            {"record": "catalog", "catalog_hash": catalog_hash},
            site="journal:catalog",
        )

    def commit(self) -> None:
        """Mark the transaction durable, then retire its journal file."""
        self._append({"record": "commit"}, site="journal:commit")
        self.close()
        fire_site("journal:cleanup", self.path, None)
        self.path.unlink(missing_ok=True)
        fsync_dir(self.directory)

    def close(self) -> None:
        """Drop the file handle (the file itself stays for recovery)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def _append(self, record: dict, *, site: str) -> None:
        if self._file is None:
            raise ArchiveError("ingest journal transaction not begun")
        line = (json.dumps(record, sort_keys=True) + "\n").encode("ascii")
        self._file.append(line, site=site)


def read_journal(path: Path) -> JournalState:
    """Parse one journal file leniently — a torn tail is not an error."""
    state = JournalState(txn_id=path.stem, path=path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError as exc:
        raise ArchiveError(f"journal {path} vanished while being read") from exc
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    elif lines:
        state.torn_tail = True  # no trailing newline: the append was cut off
        lines.pop()
    for line in lines:
        try:
            record = json.loads(line)
            kind = record["record"]
        except (ValueError, KeyError, TypeError):
            state.torn_tail = True
            break  # damage mid-file: trust nothing after it
        if kind == "begin":
            state.catalog_hash_before = record.get("catalog_hash")
        elif kind == "snapshot":
            state.snapshots.append(
                (
                    record.get("provider", ""),
                    record.get("manifest_id", ""),
                    list(record.get("objects", [])),
                )
            )
        elif kind == "catalog":
            state.catalog_intent = record.get("catalog_hash")
        elif kind == "commit":
            state.committed = True
    return state


def pending_transactions(archive_root: Path) -> list[JournalState]:
    """Every journal file still on disk, oldest first (by name)."""
    directory = journal_dir(archive_root)
    if not directory.is_dir():
        return []
    return [read_journal(path) for path in sorted(directory.glob("*.jsonl"))]
