"""Snapshot manifests, the archive catalog, and the :class:`Archive` facade.

A *manifest* is the on-disk record of one root-store snapshot: which
provider, which version, when it was taken, and the ordered list of
entries — each a certificate fingerprint (pointing into the content
store) plus the trust context that cannot be recovered from the DER
(purpose→level map, partial-distrust date).  Manifests are canonical
JSON (sorted keys, fingerprint-ordered entries), and each is named by
the SHA-256 of its own serialization, so identical snapshots produce
identical manifest files and re-ingest is byte-idempotent::

    manifests/
      nss/1c9e...77.json
      debian/05ab...f0.json
    catalog.json                # the atomic top-level table of contents

The *catalog* maps every ``(provider, version, taken_at)`` to its
manifest id.  It is rewritten as a whole via temp file + ``os.replace``
on every ingest, so readers always observe either the old or the new
catalog, never a torn one.  Its own SHA-256 (:meth:`Archive.catalog_hash`)
is the archive's version stamp: indexes persist it to detect staleness
and the idempotence tests compare it across re-ingests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from datetime import date, datetime
from pathlib import Path

from repro.archive.cas import ContentStore, OBJECTS_DIR
from repro.archive.io import atomic_write_bytes
from repro.errors import ArchiveCorruptionError, ArchiveError
from repro.store.entry import TrustEntry
from repro.store.purposes import TrustLevel, TrustPurpose
from repro.store.snapshot import RootStoreSnapshot
from repro.x509.certificate import Certificate

#: Directory name of the manifest tree inside an archive root.
MANIFESTS_DIR = "manifests"
#: File name of the top-level catalog.
CATALOG_FILE = "catalog.json"
#: Schema stamps, bumped on incompatible layout changes.
MANIFEST_SCHEMA = 1
CATALOG_SCHEMA = 1


@dataclass(frozen=True)
class ManifestEntry:
    """One trust entry as stored: fingerprint + non-derivable context."""

    fingerprint: str
    trust: tuple[tuple[str, str], ...]  # (purpose value, level value), sorted
    distrust_after: str | None  # ISO 8601 or None

    @classmethod
    def from_entry(cls, entry: TrustEntry) -> "ManifestEntry":
        return cls(
            fingerprint=entry.fingerprint,
            trust=tuple((p.value, lv.value) for p, lv in entry.trust),
            distrust_after=(
                entry.distrust_after.isoformat() if entry.distrust_after else None
            ),
        )

    def to_entry(self, certificate: Certificate) -> TrustEntry:
        return TrustEntry(
            certificate=certificate,
            trust=tuple((TrustPurpose(p), TrustLevel(lv)) for p, lv in self.trust),
            distrust_after=(
                datetime.fromisoformat(self.distrust_after) if self.distrust_after else None
            ),
        )

    def level_for(self, purpose: TrustPurpose) -> TrustLevel | None:
        """Trust level for a purpose straight from the manifest (no DER)."""
        for value, level in self.trust:
            if value == purpose.value:
                return TrustLevel(level)
        return None

    def is_trusted_for(self, purpose: TrustPurpose) -> bool:
        return self.level_for(purpose) is TrustLevel.TRUSTED


@dataclass(frozen=True)
class SnapshotManifest:
    """The stored form of one :class:`RootStoreSnapshot`."""

    provider: str
    version: str
    taken_at: date
    entries: tuple[ManifestEntry, ...]
    #: Fingerprint → entry map, built lazily for point lookups.
    _index: dict = field(default=None, init=False, repr=False, compare=False)
    #: Canonical serialization, computed once — the ingest path asks for
    #: ``manifest_id`` several times per snapshot (catalog row, journal
    #: intent, store name) and each recompute is a full JSON encode.
    _serialized: bytes = field(default=None, init=False, repr=False, compare=False)
    _manifest_id: str = field(default=None, init=False, repr=False, compare=False)

    @classmethod
    def from_snapshot(cls, snapshot: RootStoreSnapshot) -> "SnapshotManifest":
        return cls(
            provider=snapshot.provider,
            version=snapshot.version,
            taken_at=snapshot.taken_at,
            entries=tuple(ManifestEntry.from_entry(e) for e in snapshot.entries),
        )

    # -- serialization ---------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "provider": self.provider,
            "version": self.version,
            "taken_at": self.taken_at.isoformat(),
            "entries": [
                {
                    "fingerprint": e.fingerprint,
                    "trust": [[p, lv] for p, lv in e.trust],
                    "distrust_after": e.distrust_after,
                }
                for e in self.entries
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SnapshotManifest":
        try:
            return cls(
                provider=payload["provider"],
                version=payload["version"],
                taken_at=date.fromisoformat(payload["taken_at"]),
                entries=tuple(
                    ManifestEntry(
                        fingerprint=e["fingerprint"],
                        trust=tuple((p, lv) for p, lv in e["trust"]),
                        distrust_after=e["distrust_after"],
                    )
                    for e in payload["entries"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArchiveError(f"malformed manifest payload: {exc}") from exc

    def serialize(self) -> bytes:
        serialized = self._serialized
        if serialized is None:
            serialized = (
                json.dumps(self.to_payload(), sort_keys=True, indent=1) + "\n"
            ).encode("ascii")
            object.__setattr__(self, "_serialized", serialized)
        return serialized

    @property
    def manifest_id(self) -> str:
        """SHA-256 of the canonical serialization — the manifest's name."""
        manifest_id = self._manifest_id
        if manifest_id is None:
            manifest_id = hashlib.sha256(self.serialize()).hexdigest()
            object.__setattr__(self, "_manifest_id", manifest_id)
        return manifest_id

    # -- views -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def entry_index(self) -> dict[str, ManifestEntry]:
        index = self._index
        if index is None:
            index = {e.fingerprint: e for e in self.entries}
            object.__setattr__(self, "_index", index)
        return index

    def get(self, fingerprint: str) -> ManifestEntry | None:
        return self.entry_index.get(fingerprint)

    def fingerprints(self, purpose: TrustPurpose | None = None) -> frozenset[str]:
        """The snapshot's (purpose-filtered) fingerprint set — no DER needed.

        Mirrors :meth:`RootStoreSnapshot.fingerprints`: the manifest
        stores the full purpose→level map, so archive-backed analyses
        can filter by trust purpose without reconstructing certificates.
        """
        if purpose is None:
            return frozenset(self.entry_index)
        return frozenset(e.fingerprint for e in self.entries if e.is_trusted_for(purpose))


@dataclass(frozen=True)
class CatalogRow:
    """One snapshot's line in the top-level catalog."""

    provider: str
    version: str
    taken_at: date
    manifest_id: str
    entries: int

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.provider, self.version, self.taken_at.isoformat())


def serialize_catalog(rows: list[CatalogRow]) -> bytes:
    """The catalog's canonical bytes for a row set (sorted, stable JSON).

    Exposed separately from :meth:`Archive.write_catalog` so the ingest
    journal can record the hash the new catalog *will* have before the
    replace happens — the intent that lets ``repair`` tell a completed
    ingest from an interrupted one.
    """
    ordered = sorted(rows, key=lambda r: (r.provider, r.taken_at.isoformat(), r.version))
    payload = {
        "schema": CATALOG_SCHEMA,
        "snapshots": [
            {
                "provider": r.provider,
                "version": r.version,
                "taken_at": r.taken_at.isoformat(),
                "manifest": r.manifest_id,
                "entries": r.entries,
            }
            for r in ordered
        ],
    }
    return (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode("ascii")


class Archive:
    """An on-disk trust-store archive: object store + manifests + catalog.

    The facade owns the directory layout and the atomic catalog write;
    ingest (:mod:`repro.archive.ingest`) and querying
    (:mod:`repro.archive.query`) build on it.
    """

    def __init__(self, root: Path | str, *, create: bool = False):
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise ArchiveError(f"archive directory {self.root} does not exist")
        self.objects = ContentStore(self.root / OBJECTS_DIR)

    # -- catalog ---------------------------------------------------------

    @property
    def catalog_path(self) -> Path:
        return self.root / CATALOG_FILE

    def catalog_bytes(self) -> bytes | None:
        try:
            return self.catalog_path.read_bytes()
        except FileNotFoundError:
            return None

    def catalog_hash(self) -> str | None:
        """SHA-256 of the catalog file — the archive's version stamp."""
        data = self.catalog_bytes()
        return hashlib.sha256(data).hexdigest() if data is not None else None

    def read_catalog(self) -> list[CatalogRow]:
        """The catalog rows, or an empty list for a fresh archive."""
        data = self.catalog_bytes()
        if data is None:
            return []
        try:
            payload = json.loads(data)
            rows = [
                CatalogRow(
                    provider=r["provider"],
                    version=r["version"],
                    taken_at=date.fromisoformat(r["taken_at"]),
                    manifest_id=r["manifest"],
                    entries=r["entries"],
                )
                for r in payload["snapshots"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ArchiveError(f"malformed catalog {self.catalog_path}: {exc}") from exc
        return rows

    def write_catalog(self, rows: list[CatalogRow]) -> None:
        """Durably, atomically replace the catalog (sorted, canonical JSON)."""
        atomic_write_bytes(self.catalog_path, serialize_catalog(rows), site="catalog")

    # -- manifests -------------------------------------------------------

    @property
    def manifests_root(self) -> Path:
        return self.root / MANIFESTS_DIR

    def manifest_path(self, provider: str, manifest_id: str) -> Path:
        return self.manifests_root / provider / f"{manifest_id}.json"

    def write_manifest(self, manifest: SnapshotManifest) -> tuple[str, bool]:
        """Persist a manifest under its content id; False when present."""
        manifest_id = manifest.manifest_id
        path = self.manifest_path(manifest.provider, manifest_id)
        if path.exists():
            return manifest_id, False
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, manifest.serialize(), site="manifest")
        return manifest_id, True

    def read_manifest(self, provider: str, manifest_id: str) -> SnapshotManifest:
        path = self.manifest_path(provider, manifest_id)
        try:
            data = path.read_bytes()
        except FileNotFoundError as exc:
            raise ArchiveCorruptionError(
                f"manifest {provider}/{manifest_id} missing ({path})",
                fingerprint=manifest_id,
                path=str(path),
            ) from exc
        actual = hashlib.sha256(data).hexdigest()
        if actual != manifest_id:
            raise ArchiveCorruptionError(
                f"manifest {provider}/{manifest_id} is corrupt: bytes hash to {actual} ({path})",
                fingerprint=manifest_id,
                path=str(path),
            )
        try:
            payload = json.loads(data)
        except ValueError as exc:
            raise ArchiveError(f"manifest {path} is not valid JSON: {exc}") from exc
        return SnapshotManifest.from_payload(payload)

    def manifest_files(self) -> list[tuple[str, str, Path]]:
        """Every (provider, manifest_id, path) present on disk, sorted."""
        result: list[tuple[str, str, Path]] = []
        if not self.manifests_root.is_dir():
            return result
        for provider_dir in sorted(p for p in self.manifests_root.iterdir() if p.is_dir()):
            for path in sorted(provider_dir.glob("*.json")):
                result.append((provider_dir.name, path.stem, path))
        return result

    # -- reconstruction --------------------------------------------------

    def load_snapshot(self, manifest: SnapshotManifest) -> RootStoreSnapshot:
        """Rebuild the full :class:`RootStoreSnapshot` from stored state.

        Certificate bytes come out of the content store (integrity
        checked) and are parsed through the interned
        :meth:`Certificate.from_der`, so a certificate shared by many
        snapshots is parsed once per process, not once per manifest.
        """
        entries = [
            e.to_entry(Certificate.from_der(self.objects.get(e.fingerprint)))
            for e in manifest.entries
        ]
        return RootStoreSnapshot.build(
            manifest.provider, manifest.taken_at, manifest.version, entries
        )
