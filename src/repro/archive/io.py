"""Durable atomic writes and the crash-site instrumentation hook.

Every file the archive persists — objects, manifests, the catalog, the
index pair, journal appends — goes through this module, which supplies
the two properties "temp file + ``os.replace``" alone does not:

- **Durability.**  File contents are flushed and ``fsync``'d before the
  rename, and the parent directory is fsync'd after it, so a commit
  survives a power loss, not just a process death.  A unique per-writer
  temp name (pid + per-process counter) means two concurrent writers of
  the same object can never clobber each other's half-written temp —
  the loser of the ``os.replace`` race simply installs an identical
  byte-for-byte object a second time.
- **Observability for fault injection.**  Each durable step announces a
  named *write site* through a process-wide hook just before (and just
  after) it becomes visible on disk.  The chaos harness
  (:mod:`repro.archive.chaos`) uses the hook to kill an ingest at every
  such site, optionally tearing or flipping the pending bytes first;
  production runs leave the hook unset and pay one indirect call per
  write.

``fsync`` can be disabled process-wide (``REPRO_ARCHIVE_FSYNC=0`` or
:func:`set_fsync`) for benchmarks that need the PR-3 baseline and for
test suites on filesystems where it is pure overhead; atomicity and
crash-site firing are unaffected.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path
from typing import Callable, Iterable

#: Environment toggle: set to ``"0"`` to skip fsync (atomicity remains).
FSYNC_ENV = "REPRO_ARCHIVE_FSYNC"

_FSYNC = os.environ.get(FSYNC_ENV, "1") != "0"

#: The crash-site hook: ``hook(site, path, data)`` called at each write
#: site.  ``path``/``data`` are the final destination and pending bytes
#: (``None`` for purely sequencing sites), letting an injector model a
#: torn or bit-flipped write before simulating the kill.
CrashHook = Callable[[str, Path | None, bytes | None], None]

_crash_hook: CrashHook | None = None

_TMP_COUNTER = itertools.count()


def set_fsync(enabled: bool) -> bool:
    """Toggle fsync process-wide; returns the previous setting."""
    global _FSYNC
    previous = _FSYNC
    _FSYNC = enabled
    return previous


def fsync_enabled() -> bool:
    return _FSYNC


def set_crash_hook(hook: CrashHook | None) -> None:
    """Install (or clear, with ``None``) the process-wide crash hook."""
    global _crash_hook
    _crash_hook = hook


def clear_crash_hook() -> None:
    set_crash_hook(None)


def fire_site(site: str, path: Path | None = None, data: bytes | None = None) -> None:
    """Announce one named write site to the installed hook, if any."""
    if _crash_hook is not None:
        _crash_hook(site, path, data)


def unique_tmp(path: Path) -> Path:
    """A temp name no other writer (process or thread) can collide on."""
    return path.with_name(f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp")


def _fsync_file(fd: int) -> None:
    if _FSYNC:
        os.fsync(fd)


def fsync_dir(directory: Path) -> None:
    """Persist a directory entry (the rename itself) to stable storage."""
    if not _FSYNC:
        return
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds: nothing more we can do
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes, *, site: str) -> None:
    """Durably install ``data`` at ``path`` via a unique temp + replace.

    Fires ``{site}:replace`` after the temp file is written (and synced)
    but before the rename — a crash here leaves only a stale ``*.tmp``
    for ``gc``/``repair`` to sweep — and ``{site}:replaced`` immediately
    after the rename lands, the window where the file exists but every
    later step of the ingest is missing.
    """
    tmp = unique_tmp(path)
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            _fsync_file(handle.fileno())
    except Exception:
        # A failed temp write never leaves a final-name artifact; the
        # stale temp itself is swept by gc/repair.
        raise
    fire_site(f"{site}:replace", path, data)
    os.replace(tmp, path)
    fsync_dir(path.parent)
    fire_site(f"{site}:replaced", path, data)


class AppendFile:
    """An fsync-per-record append handle (the journal's write primitive)."""

    def __init__(self, path: Path, *, exclusive: bool = True):
        flags = os.O_WRONLY | os.O_CREAT | (os.O_EXCL if exclusive else os.O_APPEND)
        self.path = path
        self._fd = os.open(path, flags, 0o644)
        fsync_dir(path.parent)  # the journal file's own creation is durable

    def append(self, line: bytes, *, site: str) -> None:
        """Fire ``site``, then durably append one record line."""
        fire_site(site, self.path, line)
        os.write(self._fd, line)
        _fsync_file(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


def stray_tmp_files(root: Path) -> list[Path]:
    """Every ``*.tmp`` under ``root`` — debris of crashed writers."""
    if not root.is_dir():
        return []
    return sorted(p for p in root.rglob("*.tmp") if p.is_file())


def remove_all(paths: Iterable[Path]) -> int:
    """Unlink each path (ignoring racers); the number actually removed."""
    removed = 0
    for path in paths:
        try:
            path.unlink()
        except FileNotFoundError:
            continue
        removed += 1
    return removed
