"""Archive integrity verification and garbage collection.

``archive verify`` is the full-archive integrity pass: every stored
object is re-hashed against its content address, every catalog row is
cross-checked against its manifest file (present, byte-exact, and
describing the snapshot the catalog claims), and both directions of
dangling references are reported — objects/manifests on disk that
nothing references (*orphans*, from superseded ingests) and references
whose target is missing.  ``archive gc`` deletes exactly the orphans
``verify`` reports; nothing reachable from the catalog is ever touched.

Both passes also sweep for stale ``*.tmp`` files — the debris a writer
killed between its temp write and its ``os.replace`` leaves behind.
``verify`` counts and names them (they never make an archive CORRUPT:
the final name was untouched); ``gc`` deletes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.archive.io import remove_all, stray_tmp_files
from repro.archive.manifest import Archive
from repro.errors import ArchiveCorruptionError, ArchiveError


@dataclass
class VerificationReport:
    """Everything the integrity pass found wrong (empty lists = healthy)."""

    objects_checked: int = 0
    manifests_checked: int = 0
    catalog_rows: int = 0
    corrupt_objects: list = field(default_factory=list)  # (fingerprint, detail)
    missing_objects: list = field(default_factory=list)  # (provider, manifest_id, fingerprint)
    orphan_objects: list = field(default_factory=list)  # fingerprints
    corrupt_manifests: list = field(default_factory=list)  # (provider, manifest_id, detail)
    missing_manifests: list = field(default_factory=list)  # (provider, manifest_id)
    mismatched_rows: list = field(default_factory=list)  # (provider, manifest_id, detail)
    orphan_manifests: list = field(default_factory=list)  # (provider, manifest_id)
    stale_tmp: list = field(default_factory=list)  # str paths of crashed-writer temp files
    damaged_index: list = field(default_factory=list)  # (file, detail) — torn/flipped index
    catalog_hash: str | None = None

    @property
    def ok(self) -> bool:
        return not (
            self.corrupt_objects
            or self.missing_objects
            or self.corrupt_manifests
            or self.missing_manifests
            or self.mismatched_rows
            or self.damaged_index
        )

    @property
    def orphan_count(self) -> int:
        return len(self.orphan_objects) + len(self.orphan_manifests)

    def problem_lines(self) -> list[str]:
        """One human-readable line per finding, for the CLI."""
        lines: list[str] = []
        for fingerprint, detail in self.corrupt_objects:
            lines.append(f"corrupt object {fingerprint}: {detail}")
        for provider, manifest_id, fingerprint in self.missing_objects:
            lines.append(
                f"manifest {provider}/{manifest_id} references missing object {fingerprint}"
            )
        for provider, manifest_id, detail in self.corrupt_manifests:
            lines.append(f"corrupt manifest {provider}/{manifest_id}: {detail}")
        for provider, manifest_id in self.missing_manifests:
            lines.append(f"catalog references missing manifest {provider}/{manifest_id}")
        for provider, manifest_id, detail in self.mismatched_rows:
            lines.append(f"catalog row disagrees with manifest {provider}/{manifest_id}: {detail}")
        for name, detail in self.damaged_index:
            lines.append(f"damaged index file {name}: {detail} (repair rebuilds it)")
        for fingerprint in self.orphan_objects:
            lines.append(f"orphan object {fingerprint} (unreferenced; gc-able)")
        for provider, manifest_id in self.orphan_manifests:
            lines.append(f"orphan manifest {provider}/{manifest_id} (not in catalog; gc-able)")
        for path in self.stale_tmp:
            lines.append(f"stale temp file {path} (crashed writer; gc-able)")
        return lines

    def summary(self) -> str:
        state = "OK" if self.ok else "CORRUPT"
        problems = len(self.problem_lines()) - self.orphan_count - len(self.stale_tmp)
        return (
            f"{state}: {self.objects_checked} objects, "
            f"{self.manifests_checked} manifests, {self.catalog_rows} catalog rows "
            f"checked; {problems} problems, {self.orphan_count} orphans, "
            f"{len(self.stale_tmp)} stale temp files"
        )


def verify_archive(archive: Archive) -> VerificationReport:
    """Hash every object, cross-check manifests vs. catalog, find orphans."""
    report = VerificationReport(catalog_hash=archive.catalog_hash())
    rows = archive.read_catalog()
    report.catalog_rows = len(rows)
    cataloged = {(row.provider, row.manifest_id) for row in rows}
    referenced: set[str] = set()

    # Catalog → manifests → objects (reachability + cross-checks).
    for row in rows:
        try:
            manifest = archive.read_manifest(row.provider, row.manifest_id)
        except ArchiveError as exc:
            if archive.manifest_path(row.provider, row.manifest_id).exists():
                report.corrupt_manifests.append((row.provider, row.manifest_id, str(exc)))
            else:
                report.missing_manifests.append((row.provider, row.manifest_id))
            continue
        report.manifests_checked += 1
        mismatches = [
            f"{field_name} {ours!r} != {theirs!r}"
            for field_name, ours, theirs in (
                ("provider", row.provider, manifest.provider),
                ("version", row.version, manifest.version),
                ("taken_at", row.taken_at, manifest.taken_at),
                ("entries", row.entries, len(manifest)),
            )
            if ours != theirs
        ]
        if mismatches:
            report.mismatched_rows.append(
                (row.provider, row.manifest_id, "; ".join(mismatches))
            )
        for entry in manifest.entries:
            referenced.add(entry.fingerprint)
            if entry.fingerprint not in archive.objects:
                report.missing_objects.append(
                    (row.provider, row.manifest_id, entry.fingerprint)
                )

    # Every object on disk: re-hash, and flag the unreferenced.
    for fingerprint in archive.objects.fingerprints():
        report.objects_checked += 1
        try:
            archive.objects.get(fingerprint)
        except ArchiveCorruptionError as exc:
            report.corrupt_objects.append((fingerprint, str(exc)))
            continue
        if fingerprint not in referenced:
            report.orphan_objects.append(fingerprint)

    # Manifest files not reachable from the catalog.
    for provider, manifest_id, _path in archive.manifest_files():
        if (provider, manifest_id) not in cataloged:
            report.orphan_manifests.append((provider, manifest_id))

    # Debris of writers killed mid-write (before their os.replace).
    report.stale_tmp = [str(path) for path in stray_tmp_files(archive.root)]

    # The binary query index: a torn header or checksum mismatch is
    # crash damage a serve/ingest must never keep answering from
    # (stale-but-valid is fine — queries rebuild it lazily).
    from repro.archive.binindex import check_binary_index

    finding = check_binary_index(archive)
    if finding is not None:
        report.damaged_index.append(finding)

    return report


@dataclass(frozen=True)
class GCResult:
    """What a garbage-collection pass removed (or would remove)."""

    objects_removed: int
    manifests_removed: int
    dry_run: bool
    tmp_removed: int = 0

    def summary(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"{verb} {self.objects_removed} objects, {self.manifests_removed} manifests, "
            f"{self.tmp_removed} stale temp files"
        )


def gc_archive(archive: Archive, *, dry_run: bool = False) -> GCResult:
    """Delete orphan objects, manifests, and stale temp files."""
    report = verify_archive(archive)
    if not dry_run:
        for fingerprint in report.orphan_objects:
            archive.objects.remove(fingerprint)
        for provider, manifest_id in report.orphan_manifests:
            archive.manifest_path(provider, manifest_id).unlink(missing_ok=True)
        remove_all(Path(path) for path in report.stale_tmp)
    return GCResult(
        objects_removed=len(report.orphan_objects),
        manifests_removed=len(report.orphan_manifests),
        dry_run=dry_run,
        tmp_removed=len(report.stale_tmp),
    )
