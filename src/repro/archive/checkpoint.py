"""Durable per-origin watch cursors with journal-style intent records.

The continuous-ingestion loop (:mod:`repro.collection.watch`) must
survive ``kill -9`` at any instant and resume exactly where it
stopped.  Two small files under ``watch/`` in the archive root carry
all of its durable state:

- ``checkpoints.json`` — the committed high-water cursor per origin:
  the ``(released, tag)`` of the newest snapshot whose ingest has been
  committed.  Written with the same durable atomic replace as the
  catalog (crash site ``checkpoint``).
- ``intent.json`` — a journal-style intent record written *before* a
  cycle's delta is ingested, naming the cursors the cycle is about to
  advance to (crash site ``checkpoint-intent``).  It is retired only
  after ``checkpoints.json`` reflects the committed cycle, so its mere
  presence on disk means "a cycle may have died between ingest and
  checkpoint" — harmless, because re-ingest is byte-idempotent, but
  useful for operators and ``archive repair`` diagnostics.

Loading is deliberately lenient: a torn or damaged cursor file decodes
to "no checkpoints" (with :attr:`CheckpointStore.damaged` set) rather
than an error, because the worst case of losing a cursor is re-walking
an origin from the start — which the content-addressed archive absorbs
as a no-op.  ``archive repair`` quarantines a damaged cursor file so
the next cycle starts from a clean slate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import date
from pathlib import Path

from repro.archive.io import atomic_write_bytes, fire_site

#: Directory under the archive root holding watch state.
WATCH_DIR = "watch"
CHECKPOINTS_FILE = "checkpoints.json"
INTENT_FILE = "intent.json"
CHECKPOINT_SCHEMA = 1


@dataclass(frozen=True)
class Cursor:
    """A per-origin high-water mark: the newest committed tag."""

    released: date
    tag: str

    @property
    def key(self) -> tuple[date, str]:
        """Sort key matching origin enumeration order ``(released, tag)``."""
        return (self.released, self.tag)

    def as_dict(self) -> dict:
        return {"released": self.released.isoformat(), "tag": self.tag}

    @classmethod
    def from_dict(cls, payload: dict) -> "Cursor":
        return cls(released=date.fromisoformat(payload["released"]), tag=payload["tag"])


class CheckpointStore:
    """Load/save watch cursors and the pre-ingest intent record."""

    def __init__(self, root: Path):
        self.root = Path(root)
        self.directory = self.root / WATCH_DIR
        self.damaged = False

    @property
    def checkpoints_path(self) -> Path:
        return self.directory / CHECKPOINTS_FILE

    @property
    def intent_path(self) -> Path:
        return self.directory / INTENT_FILE

    def _load_file(self, path: Path) -> dict[str, Cursor] | None:
        """Cursors from one file; None when absent, {} + damaged flag on rot."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return {
                origin: Cursor.from_dict(entry)
                for origin, entry in payload["cursors"].items()
            }
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError):
            # Torn tail or bit rot: treat as empty.  Losing a cursor only
            # costs a re-walk that idempotent re-ingest absorbs.
            self.damaged = True
            return {}

    def load(self) -> dict[str, Cursor]:
        """The committed per-origin cursors (empty on first run or damage)."""
        return self._load_file(self.checkpoints_path) or {}

    def save(self, cursors: dict[str, Cursor]) -> None:
        """Durably replace the committed cursor file."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "cursors": {origin: cursors[origin].as_dict() for origin in sorted(cursors)},
        }
        data = (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode("ascii")
        atomic_write_bytes(self.checkpoints_path, data, site="checkpoint")

    def write_intent(self, cursors: dict[str, Cursor]) -> None:
        """Record the cursors this cycle intends to reach, before ingest."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "cursors": {origin: cursors[origin].as_dict() for origin in sorted(cursors)},
        }
        data = (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode("ascii")
        atomic_write_bytes(self.intent_path, data, site="checkpoint-intent")

    def read_intent(self) -> dict[str, Cursor] | None:
        """The pending intent record, if a cycle died before retiring it."""
        return self._load_file(self.intent_path)

    def clear_intent(self) -> None:
        """Retire the intent record after the checkpoint save landed."""
        fire_site("checkpoint:retire", self.intent_path)
        self.intent_path.unlink(missing_ok=True)
