"""The indexed query engine over an on-disk archive.

:class:`ArchiveQuery` answers the workloads the archive exists for —
point-in-time trust lookups, snapshot reconstruction, cross-provider
diffs, removal lags, and archive-backed analysis inputs — from disk,
without ever re-synthesizing or re-scraping the corpus.

Two layers keep repeated queries off the filesystem entirely:

- the persisted inverted indexes (:mod:`repro.archive.index`) resolve
  *which* manifest a query needs without scanning the catalog, and
- two LRU caches hold decoded manifests and fully reconstructed
  snapshots, so the second query touching the same release costs a
  dictionary hit, not JSON parsing or DER decoding.

With ``allow_degraded=True`` the engine keeps serving a damaged
archive: corpus-level queries (``history``, ``dataset``,
``trusted_on``) skip snapshots whose storage raises
:class:`~repro.errors.ArchiveCorruptionError` — recording each skip in
:attr:`ArchiveQuery.skipped` — and :attr:`ArchiveQuery.quarantined`
reports what ``archive repair`` pulled out of the catalog, so callers
see intact data *and* an explicit account of what is missing.
Point lookups (``snapshot``, ``snapshot_at``) still raise: an
explicitly requested release is never silently absent.

Set-level queries (membership, diffs, incidence matrices) run on
manifests alone — the manifest stores each entry's purpose→level map,
so no certificate bytes are read until a caller actually asks for a
reconstructed :class:`~repro.store.snapshot.RootStoreSnapshot`.

Every engine pins the catalog hash it was constructed against and
checks (via a cheap ``stat`` of the catalog file) that it still holds
on each query; a re-ingest under a live engine raises
:class:`~repro.errors.ArchiveStaleError` instead of silently serving
point-in-time answers from the superseded catalog
(``refresh_on_stale=True`` reloads instead).  Cache traffic, degraded
skips, and stale detections are all reported to the active
:mod:`repro.obs` registry.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.archive.index import ArchiveIndex, Posting, TimelineEntry, load_index
from repro.archive.manifest import Archive, SnapshotManifest
from repro.archive.repair import QuarantinedSnapshot, read_quarantine
from repro.errors import ArchiveCorruptionError, ArchiveError, ArchiveStaleError
from repro.obs.instrument import count
from repro.obs.runtime import get_telemetry
from repro.store.history import Dataset, StoreHistory
from repro.store.purposes import TrustLevel, TrustPurpose
from repro.store.snapshot import RootStoreSnapshot

#: Default LRU capacities: manifests are small JSON, snapshots hold
#: parsed certificates — size the hot set to the whole corpus's release
#: count so steady-state serving never thrashes.
MANIFEST_CACHE_SIZE = 1024
SNAPSHOT_CACHE_SIZE = 1024


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one LRU cache."""

    size: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _LRUCache:
    """A plain LRU map with observability counters.

    ``maxsize=0`` disables caching entirely: every ``get`` is a miss
    and ``put`` stores nothing.  (It used to be silently clamped to a
    size-1 cache, which is the opposite of what a caller asking for 0
    wants.)  Negative sizes are a caller bug and raise.
    """

    def __init__(self, maxsize: int):
        if maxsize < 0:
            raise ArchiveError(f"cache maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        if self.maxsize == 0:
            return  # caching disabled
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> CacheStats:
        return CacheStats(size=len(self._data), hits=self.hits, misses=self.misses)


@dataclass(frozen=True)
class TrustObservation:
    """One provider's answer to a point-in-time trust question."""

    provider: str
    version: str
    taken_at: date  # release date of the snapshot in force
    present: bool
    level: TrustLevel | None  # for the queried purpose; None when absent/silent


@dataclass(frozen=True)
class ArchiveDiff:
    """Fingerprint-set difference between two archived releases."""

    provider_a: str
    version_a: str
    provider_b: str
    version_b: str
    only_a: frozenset[str]
    only_b: frozenset[str]
    shared: frozenset[str]

    @property
    def jaccard_distance(self) -> float:
        union = len(self.only_a) + len(self.only_b) + len(self.shared)
        if union == 0:
            return 0.0
        return 1.0 - len(self.shared) / union

    def describe(self) -> str:
        return (
            f"{self.provider_a}@{self.version_a} vs {self.provider_b}@{self.version_b}: "
            f"{len(self.shared)} shared, +{len(self.only_b)} only-{self.provider_b}, "
            f"-{len(self.only_a)} only-{self.provider_a} "
            f"(jaccard {self.jaccard_distance:.3f})"
        )


@dataclass(frozen=True)
class RemovalLag:
    """When one provider stopped shipping a fingerprint."""

    provider: str
    last_present: date  # release date of the last snapshot containing it
    removed_on: date | None  # first release without it (None = still shipped)
    lag_days: int | None  # vs. a reference date, when one was given


class ArchiveQuery:
    """Indexed, cached reads over one archive directory."""

    def __init__(
        self,
        archive: Archive | Path | str,
        *,
        manifest_cache: int = MANIFEST_CACHE_SIZE,
        snapshot_cache: int = SNAPSHOT_CACHE_SIZE,
        allow_degraded: bool = False,
        refresh_on_stale: bool = False,
        index_loader: Callable[[Archive], ArchiveIndex] | None = None,
    ):
        self.archive = archive if isinstance(archive, Archive) else Archive(archive)
        #: How this engine materializes its index — the default parses
        #: the persisted JSON pair; the serving layer passes
        #: :func:`repro.archive.binindex.load_binary_index` for the
        #: zero-parse mmap form.  Loaders must return an object with
        #: the ``ArchiveIndex`` query surface and ``catalog_hash``.
        self._index_loader = index_loader if index_loader is not None else load_index
        with get_telemetry().span("archive.query.load_index", archive=str(self.archive.root)):
            self.index: ArchiveIndex = self._index_loader(self.archive)
        self._manifests = _LRUCache(manifest_cache)
        self._snapshots = _LRUCache(snapshot_cache)
        self.allow_degraded = allow_degraded
        #: Refresh the index and drop the caches when the catalog
        #: changes under us, instead of raising ArchiveStaleError.
        self.refresh_on_stale = refresh_on_stale
        #: The catalog hash every answer from this engine refers to.
        self.catalog_hash: str = self.index.catalog_hash
        self._catalog_stamp = self._stat_catalog()
        #: (provider, version, reason) for every snapshot a degraded
        #: corpus query had to skip in this session.
        self.skipped: list[tuple[str, str, str]] = []

    # -- staleness detection ---------------------------------------------

    def _stat_catalog(self):
        """A cheap change stamp of the catalog file (no hashing)."""
        try:
            stat = os.stat(self.archive.catalog_path)
        except FileNotFoundError:
            return None
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def _ensure_fresh(self) -> None:
        """Detect a catalog rewritten while this engine is alive.

        The manifest/snapshot LRU caches are keyed by content hash, so
        their *entries* never go stale — but the pinned index does: a
        re-ingest under a live engine would silently answer
        point-in-time lookups from the superseded catalog.  A cheap
        ``stat`` guards the common case; only a stamp change pays for
        re-hashing.  On a real hash change this raises
        :class:`~repro.errors.ArchiveStaleError` (or, with
        ``refresh_on_stale=True``, reloads the index, drops the caches,
        and keeps serving the new catalog).
        """
        stamp = self._stat_catalog()
        if stamp == self._catalog_stamp:
            return
        current = self.archive.catalog_hash()
        if current == self.catalog_hash:
            self._catalog_stamp = stamp  # byte-identical rewrite (e.g. re-ingest)
            return
        if not self.refresh_on_stale:
            count("repro_archive_stale_detected_total", action="raise")
            raise ArchiveStaleError(
                f"archive {self.archive.root} catalog changed under a live query "
                f"(pinned {self.catalog_hash[:12]}…, now "
                f"{(current or '<missing>')[:12]}…); construct a new ArchiveQuery "
                "or pass refresh_on_stale=True",
                pinned=self.catalog_hash,
                current=current,
            )
        count("repro_archive_stale_detected_total", action="refresh")
        with get_telemetry().span("archive.query.refresh", archive=str(self.archive.root)):
            self.index = self._index_loader(self.archive)
        self._manifests.clear()
        self._snapshots.clear()
        self.catalog_hash = self.index.catalog_hash
        self._catalog_stamp = stamp

    # -- degraded-mode accounting ----------------------------------------

    @property
    def quarantined(self) -> list[QuarantinedSnapshot]:
        """What ``archive repair`` removed and has not been re-ingested.

        Records whose snapshot key is back in the catalog (a later
        re-ingest restored them) are filtered out, so this is always
        the *currently* unavailable set.
        """
        in_catalog = {
            (provider, entry.version, entry.taken_at.isoformat())
            for provider, timeline in self.index.timelines.items()
            for entry in timeline
        }
        return [r for r in read_quarantine(self.archive.root) if r.key not in in_catalog]

    def _skip(self, provider: str, version: str, exc: ArchiveCorruptionError) -> None:
        count("repro_archive_degraded_skips_total", provider=provider)
        self.skipped.append((provider, version, str(exc)))

    # -- cache plumbing --------------------------------------------------

    def cache_stats(self) -> dict[str, CacheStats]:
        return {"manifest": self._manifests.stats(), "snapshot": self._snapshots.stats()}

    def _manifest(self, provider: str, manifest_id: str) -> SnapshotManifest:
        cached = self._manifests.get(manifest_id)
        if cached is not None:
            count("repro_archive_cache_total", cache="manifest", outcome="hit")
            return cached
        count("repro_archive_cache_total", cache="manifest", outcome="miss")
        manifest = self.archive.read_manifest(provider, manifest_id)
        self._manifests.put(manifest_id, manifest)
        return manifest

    def _snapshot(self, provider: str, entry: TimelineEntry) -> RootStoreSnapshot:
        cached = self._snapshots.get(entry.manifest_id)
        if cached is not None:
            count("repro_archive_cache_total", cache="snapshot", outcome="hit")
            return cached
        count("repro_archive_cache_total", cache="snapshot", outcome="miss")
        snapshot = self.archive.load_snapshot(self._manifest(provider, entry.manifest_id))
        self._snapshots.put(entry.manifest_id, snapshot)
        return snapshot

    # -- catalog views ---------------------------------------------------

    @property
    def providers(self) -> list[str]:
        return self.index.providers

    def timeline(self, provider: str) -> tuple[TimelineEntry, ...]:
        self._ensure_fresh()
        return self.index.timeline(provider)

    def release(self, provider: str, version: str) -> TimelineEntry:
        self._ensure_fresh()
        for entry in self.index.timeline(provider):
            if entry.version == version:
                return entry
        raise ArchiveError(f"no version {version!r} of provider {provider!r} in archive")

    # -- point-in-time trust ---------------------------------------------

    def trusted_on(
        self,
        fingerprint: str,
        when: date,
        *,
        purpose: TrustPurpose | None = TrustPurpose.SERVER_AUTH,
        providers: list[str] | None = None,
    ) -> list[TrustObservation]:
        """Which providers trusted ``fingerprint`` on date ``when``.

        For each provider the release in force at ``when`` is resolved
        by timeline bisection and its manifest consulted — no DER is
        read.  ``purpose=None`` asks about raw presence; otherwise
        ``present`` means the entry exists *and* is trusted for the
        purpose, with the raw level reported either way.
        """
        self._ensure_fresh()
        observations: list[TrustObservation] = []
        with get_telemetry().span(
            "archive.query.trusted_on", fingerprint=fingerprint[:16], when=when.isoformat()
        ):
            observations = self._trusted_on(fingerprint, when, purpose, providers)
        return observations

    def _resolve_in_force(self, when, providers) -> list[tuple[str, TimelineEntry, SnapshotManifest]]:
        """One timeline bisect + manifest fetch per provider at ``when``."""
        resolved = []
        for provider in providers if providers is not None else self.providers:
            entry = self.index.in_force(provider, when)
            if entry is None:
                continue  # provider had no release yet at `when`
            try:
                manifest = self._manifest(provider, entry.manifest_id)
            except ArchiveCorruptionError as exc:
                if not self.allow_degraded:
                    raise
                self._skip(provider, entry.version, exc)
                continue
            resolved.append((provider, entry, manifest))
        return resolved

    @staticmethod
    def _observe(provider, entry, manifest, fingerprint, purpose) -> TrustObservation:
        stored = manifest.get(fingerprint)
        if stored is None:
            present, level = False, None
        elif purpose is None:
            present, level = True, None
        else:
            level = stored.level_for(purpose)
            present = level is TrustLevel.TRUSTED
        return TrustObservation(
            provider=provider,
            version=entry.version,
            taken_at=entry.taken_at,
            present=present,
            level=level,
        )

    def _trusted_on(self, fingerprint, when, purpose, providers) -> list[TrustObservation]:
        return [
            self._observe(provider, entry, manifest, fingerprint, purpose)
            for provider, entry, manifest in self._resolve_in_force(when, providers)
        ]

    def trusted_on_many(
        self,
        fingerprints: Iterable[str],
        when: date,
        *,
        purpose: TrustPurpose | None = TrustPurpose.SERVER_AUTH,
        providers: list[str] | None = None,
    ) -> list[list[TrustObservation]]:
        """Batch :meth:`trusted_on`: many fingerprints, one timeline walk.

        The per-provider work — timeline bisection and the manifest
        fetch — is resolved exactly once for the whole batch instead of
        once per fingerprint; each fingerprint then costs a dictionary
        probe per provider.  Returns one observation list per input
        fingerprint, in input order, element-wise identical to calling
        :meth:`trusted_on` in a loop.  This is the library-level
        primitive behind the serving daemon's batch endpoint.
        """
        self._ensure_fresh()
        batch = list(fingerprints)
        with get_telemetry().span(
            "archive.query.trusted_on_many", batch=len(batch), when=when.isoformat()
        ):
            resolved = self._resolve_in_force(when, providers)
            return [
                [
                    self._observe(provider, entry, manifest, fingerprint, purpose)
                    for provider, entry, manifest in resolved
                ]
                for fingerprint in batch
            ]

    def ever_shipped(self, fingerprint: str) -> tuple[Posting, ...]:
        """Every (provider, release) that ever contained the fingerprint."""
        self._ensure_fresh()
        return self.index.postings_for(fingerprint)

    # -- snapshot reconstruction -----------------------------------------

    def snapshot(self, provider: str, version: str) -> RootStoreSnapshot:
        """Reconstruct one release as a full snapshot (LRU cached)."""
        return self._snapshot(provider, self.release(provider, version))

    def snapshot_at(self, provider: str, when: date) -> RootStoreSnapshot | None:
        """The reconstructed snapshot in force at ``when`` (or None)."""
        self._ensure_fresh()
        entry = self.index.in_force(provider, when)
        return self._snapshot(provider, entry) if entry is not None else None

    def history(self, provider: str) -> StoreHistory:
        """A provider's full history, reconstructed release by release.

        In degraded mode, releases whose storage is damaged are skipped
        (and recorded in :attr:`skipped`) instead of failing the whole
        history.
        """
        self._ensure_fresh()
        history = StoreHistory(provider)
        for entry in self.index.timeline(provider):
            try:
                history.add(self._snapshot(provider, entry))
            except ArchiveCorruptionError as exc:
                if not self.allow_degraded:
                    raise
                self._skip(provider, entry.version, exc)
        return history

    def dataset(self, *, providers: list[str] | None = None) -> Dataset:
        """The whole archived corpus as an in-memory :class:`Dataset`.

        This is the bridge back to every existing analysis: anything
        that consumes a ``Dataset`` can now run from the archive
        instead of a freshly synthesized corpus.
        """
        dataset = Dataset()
        for provider in providers if providers is not None else self.providers:
            dataset.add_history(self.history(provider))
        return dataset

    # -- diffs and removal lags ------------------------------------------

    def diff(
        self,
        provider_a: str,
        provider_b: str,
        *,
        when: date | None = None,
        version_a: str | None = None,
        version_b: str | None = None,
        purpose: TrustPurpose | None = TrustPurpose.SERVER_AUTH,
    ) -> ArchiveDiff:
        """Pairwise fingerprint diff between two releases (manifests only).

        Pick the releases either by explicit versions or by the shared
        point-in-time ``when``; exactly one selection style per side.
        """
        entry_a = (
            self.release(provider_a, version_a)
            if version_a is not None
            else self._require_in_force(provider_a, when)
        )
        entry_b = (
            self.release(provider_b, version_b)
            if version_b is not None
            else self._require_in_force(provider_b, when)
        )
        set_a = self._manifest(provider_a, entry_a.manifest_id).fingerprints(purpose)
        set_b = self._manifest(provider_b, entry_b.manifest_id).fingerprints(purpose)
        return ArchiveDiff(
            provider_a=provider_a,
            version_a=entry_a.version,
            provider_b=provider_b,
            version_b=entry_b.version,
            only_a=frozenset(set_a - set_b),
            only_b=frozenset(set_b - set_a),
            shared=frozenset(set_a & set_b),
        )

    def _require_in_force(self, provider: str, when: date | None) -> TimelineEntry:
        self._ensure_fresh()
        if when is None:
            raise ArchiveError(f"need either a version or a date for provider {provider!r}")
        entry = self.index.in_force(provider, when)
        if entry is None:
            raise ArchiveError(f"provider {provider!r} has no release on or before {when}")
        return entry

    def removal_lags(
        self, fingerprint: str, *, reference: date | None = None
    ) -> list[RemovalLag]:
        """Per provider: when the fingerprint was last shipped and first dropped.

        Mirrors :meth:`StoreHistory.trusted_until` but runs on manifests
        via the posting index — only providers that ever shipped the
        root are visited.  ``reference`` (e.g. an incident's disclosure
        date) turns removal dates into response lags in days.
        """
        self._ensure_fresh()
        by_provider: dict[str, list[Posting]] = {}
        for posting in self.index.postings_for(fingerprint):
            by_provider.setdefault(posting.provider, []).append(posting)
        lags: list[RemovalLag] = []
        for provider in sorted(by_provider):
            present_dates = {(p.taken_at, p.version) for p in by_provider[provider]}
            last_present = max(d for d, _ in present_dates)
            removed_on = None
            for entry in self.index.timeline(provider):
                if entry.taken_at > last_present:
                    removed_on = entry.taken_at
                    break
            lag = (removed_on - reference).days if removed_on and reference else None
            lags.append(
                RemovalLag(
                    provider=provider,
                    last_present=last_present,
                    removed_on=removed_on,
                    lag_days=lag,
                )
            )
        return lags

    # -- archive-backed analysis inputs ----------------------------------

    def collect_labels(
        self, *, since: date | None = None, providers: list[str] | None = None
    ) -> list[tuple[str, TimelineEntry]]:
        """(provider, release) pairs in the analysis layer's canonical order."""
        self._ensure_fresh()
        result = []
        for provider in providers if providers is not None else self.providers:
            for entry in self.index.timeline(provider):
                if since is not None and entry.taken_at < since:
                    continue
                result.append((provider, entry))
        return result

    def _fingerprint_sets(
        self,
        *,
        purpose: TrustPurpose | None,
        since: date | None,
        providers: list[str] | None,
    ) -> tuple[tuple[tuple[str, date, str], ...], list[frozenset[str]]]:
        """Labels plus per-snapshot fingerprint sets, straight from manifests."""
        selected = self.collect_labels(since=since, providers=providers)
        if not selected:
            raise ArchiveError("no archived snapshots match the selection")
        sets = [
            self._manifest(provider, entry.manifest_id).fingerprints(purpose)
            for provider, entry in selected
        ]
        labels = tuple(
            (provider, entry.taken_at, entry.version) for provider, entry in selected
        )
        return labels, sets

    def incidence(
        self,
        *,
        purpose: TrustPurpose | None = TrustPurpose.SERVER_AUTH,
        since: date | None = None,
        providers: list[str] | None = None,
        sparse: bool = False,
    ):
        """The snapshots × fingerprints incidence matrix, from manifests.

        Feeds the vectorized analysis substrate
        (:mod:`repro.analysis.incidence`) directly from the archive: no
        corpus synthesis, no scraping, no certificate parsing — the
        purpose filter runs on the trust bits stored in each manifest.

        With ``sparse=True`` returns a
        :class:`~repro.analysis.sparse.SparseIncidence` instead — the
        CSR-style representation that stays a few percent of the dense
        footprint at population scale (tens of thousands of snapshots).
        """
        from repro.analysis.incidence import IncidenceMatrix
        from repro.analysis.sparse import sparse_from_sets

        labels, sets = self._fingerprint_sets(
            purpose=purpose, since=since, providers=providers
        )
        if sparse:
            return sparse_from_sets(labels, sets)
        universe = sorted(frozenset().union(*sets))
        column = {fingerprint: k for k, fingerprint in enumerate(universe)}
        matrix = np.zeros((len(sets), len(universe)), dtype=bool)
        for row, fingerprints in enumerate(sets):
            if fingerprints:
                matrix[row, [column[f] for f in fingerprints]] = True
        return IncidenceMatrix(labels=labels, fingerprints=tuple(universe), matrix=matrix)

    def distance_matrix(
        self,
        *,
        metric: str = "jaccard",
        purpose: TrustPurpose | None = TrustPurpose.SERVER_AUTH,
        since: date | None = None,
        providers: list[str] | None = None,
        blocked: bool = False,
        block_rows: int | None = None,
    ):
        """The pairwise distance matrix over archived snapshots.

        Equivalent to ``repro.analysis.distance_matrix`` over the live
        corpus (the equivalence tests assert element-wise identity) but
        sourced purely from the archive.

        With ``blocked=True`` the matrix is computed tile-by-tile from
        the sparse incidence — element-wise identical output, but peak
        memory stays one (n, n) output buffer plus two
        (``block_rows`` × universe) slabs instead of the dense boolean
        matrix and its full-size temporaries.
        """
        from repro.analysis.incidence import jaccard_distances, overlap_distances
        from repro.analysis.jaccard import LabelledMatrix
        from repro.analysis.sparse import (
            DEFAULT_BLOCK_ROWS,
            blocked_jaccard_distances,
            blocked_overlap_distances,
        )

        vectorized = {"jaccard": jaccard_distances, "overlap": overlap_distances}
        tiled = {"jaccard": blocked_jaccard_distances, "overlap": blocked_overlap_distances}
        if metric not in vectorized:
            raise ArchiveError(f"unknown metric {metric!r}")
        if blocked:
            sparse = self.incidence(
                purpose=purpose, since=since, providers=providers, sparse=True
            )
            matrix = tiled[metric](
                sparse, block_rows=block_rows or DEFAULT_BLOCK_ROWS
            )
            return LabelledMatrix(labels=sparse.labels, matrix=matrix)
        incidence = self.incidence(purpose=purpose, since=since, providers=providers)
        return LabelledMatrix(
            labels=incidence.labels, matrix=vectorized[metric](incidence)
        )
