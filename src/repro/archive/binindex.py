"""The compact binary on-disk index (``index/trust.bin``).

The JSON index pair (:mod:`repro.archive.index`) is the durable,
human-auditable format, but loading it costs a full ``json.loads`` of
every posting before the first query can run — ~0.3 s of parse per
process on the seeded corpus, paid again by every worker.  This module
packs the same :class:`~repro.archive.index.ArchiveIndex` into one
struct-packed, versioned-header, checksummed file laid out for
``mmap``:

- **header** (104 bytes): magic, schema, the catalog hash the index
  was built from, a SHA-256 of the payload, section counts, and the
  fixed field widths.  Opening validates *only* the header — cold
  start is O(header read), and N pre-forked workers share the mapped
  pages instead of holding N parsed copies.
- **provider table**: fixed-width name + the (offset, count) of the
  provider's slice of the global timeline array.
- **timeline records**: fixed-width ``(taken_at, entries,
  manifest_id, version)``, date-ordered per provider, so
  point-in-time resolution is a ``bisect`` over raw records that
  decodes exactly one entry.
- **fingerprint table + posting ranges + postings**: the 32-byte raw
  fingerprints in sorted order (lowercase hex sorts identically to
  its bytes), each with an (offset, count) into a flat array of
  ``u32`` global timeline indexes — one lookup decodes one posting
  list, nothing else.

The encoding is a pure deterministic function of the
:class:`ArchiveIndex`, so the delta-maintained file is byte-identical
to a full rebuild (the kill-matrix property) and repair converges by
rebuilding.  The payload checksum is *not* verified on open — that
would defeat the zero-parse cold start — only by ``archive verify``
and ``archive repair`` (:func:`check_binary_index`), which treat a
mismatch as crash damage to quarantine and rebuild.
"""

from __future__ import annotations

import hashlib
import mmap
import struct
from bisect import bisect_right
from collections.abc import Mapping
from datetime import date
from pathlib import Path

from repro.archive.index import (
    INDEX_DIR,
    ArchiveIndex,
    Posting,
    TimelineEntry,
    load_index,
)
from repro.archive.io import atomic_write_bytes
from repro.archive.manifest import Archive
from repro.errors import ArchiveError

#: File name of the binary index inside ``index/``.
BINARY_FILE = "trust.bin"
#: Eight bytes no JSON file starts with.
MAGIC = b"REPROIDX"
BINARY_SCHEMA = 1

#: magic, schema, flags, provider_width, version_width, n_providers,
#: n_timelines, n_fingerprints, n_postings, payload_len, catalog_hash,
#: payload_sha256.
_HEADER = struct.Struct("<8sHHHHIIIIQ32s32s")
HEADER_SIZE = _HEADER.size

_TIMELINE_FIXED = struct.Struct("<II32s")  # taken_at ordinal, entries, manifest_id
_RANGE = struct.Struct("<II")  # postings (offset, count) / provider timeline slice
_POSTING = struct.Struct("<I")  # global timeline index
_FP_WIDTH = 32


def binary_index_path(archive: Archive) -> Path:
    return archive.root / INDEX_DIR / BINARY_FILE


def _hex_bytes(value: str, what: str) -> bytes:
    try:
        raw = bytes.fromhex(value)
    except ValueError as exc:
        raise ArchiveError(f"{what} {value!r} is not hex") from exc
    if len(raw) != _FP_WIDTH:
        raise ArchiveError(f"{what} {value!r} is not a SHA-256 (64 hex chars)")
    return raw


def _padded(value: str, width: int, what: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > width:
        raise ArchiveError(f"{what} {value!r} exceeds its declared width {width}")
    return raw.ljust(width, b"\x00")


def encode_binary_index(index: ArchiveIndex) -> bytes:
    """Serialize an index deterministically (same input, same bytes)."""
    providers = sorted(index.timelines)
    provider_width = max((len(p.encode("utf-8")) for p in providers), default=1)
    versions = [t.version for ts in index.timelines.values() for t in ts]
    version_width = max((len(v.encode("utf-8")) for v in versions), default=1)

    # Global timeline array: provider-sorted, each provider's entries in
    # stored (date, version) order; postings reference entries by index.
    timeline_index: dict[tuple[str, date, str], int] = {}
    provider_rows: list[bytes] = []
    timeline_rows: list[bytes] = []
    for provider in providers:
        timeline = index.timelines[provider]
        provider_rows.append(
            _padded(provider, provider_width, "provider")
            + _RANGE.pack(len(timeline_rows), len(timeline))
        )
        for entry in timeline:
            timeline_index[(provider, entry.taken_at, entry.version)] = len(timeline_rows)
            timeline_rows.append(
                _TIMELINE_FIXED.pack(
                    entry.taken_at.toordinal(),
                    entry.entries,
                    _hex_bytes(entry.manifest_id, "manifest id"),
                )
                + _padded(entry.version, version_width, "version")
            )

    fingerprints = sorted(index.postings)
    fp_rows: list[bytes] = []
    range_rows: list[bytes] = []
    posting_rows: list[bytes] = []
    for fingerprint in fingerprints:
        postings = index.postings[fingerprint]
        fp_rows.append(_hex_bytes(fingerprint, "fingerprint"))
        range_rows.append(_RANGE.pack(len(posting_rows), len(postings)))
        for posting in postings:
            try:
                ref = timeline_index[(posting.provider, posting.taken_at, posting.version)]
            except KeyError as exc:
                raise ArchiveError(
                    f"posting {posting} references no timeline entry"
                ) from exc
            posting_rows.append(_POSTING.pack(ref))

    payload = b"".join(provider_rows + timeline_rows + fp_rows + range_rows + posting_rows)
    header = _HEADER.pack(
        MAGIC,
        BINARY_SCHEMA,
        0,
        provider_width,
        version_width,
        len(providers),
        len(timeline_rows),
        len(fingerprints),
        len(posting_rows),
        len(payload),
        _hex_bytes(index.catalog_hash, "catalog hash"),
        hashlib.sha256(payload).digest(),
    )
    return header + payload


def persist_binary_index(archive: Archive, index: ArchiveIndex) -> None:
    """Atomically install ``trust.bin`` (same "index" crash site as JSON)."""
    path = binary_index_path(archive)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(path, encode_binary_index(index), site="index")


class _Header:
    """Decoded header fields plus the derived section offsets."""

    __slots__ = (
        "provider_width", "version_width", "n_providers", "n_timelines",
        "n_fingerprints", "n_postings", "payload_len", "catalog_hash",
        "payload_sha", "provider_record", "timeline_record",
        "providers_at", "timelines_at", "fingerprints_at", "ranges_at",
        "postings_at",
    )

    def __init__(self, raw: bytes):
        (
            magic, schema, _flags, self.provider_width, self.version_width,
            self.n_providers, self.n_timelines, self.n_fingerprints,
            self.n_postings, self.payload_len, catalog_hash, self.payload_sha,
        ) = _HEADER.unpack(raw)
        if magic != MAGIC:
            raise ArchiveError("bad magic (torn or foreign file)")
        if schema != BINARY_SCHEMA:
            raise ArchiveError(f"unsupported schema {schema}")
        self.catalog_hash = catalog_hash.hex()
        self.provider_record = self.provider_width + _RANGE.size
        self.timeline_record = _TIMELINE_FIXED.size + self.version_width
        self.providers_at = HEADER_SIZE
        self.timelines_at = self.providers_at + self.n_providers * self.provider_record
        self.fingerprints_at = self.timelines_at + self.n_timelines * self.timeline_record
        self.ranges_at = self.fingerprints_at + self.n_fingerprints * _FP_WIDTH
        self.postings_at = self.ranges_at + self.n_fingerprints * _RANGE.size
        expected = (
            self.postings_at + self.n_postings * _POSTING.size - HEADER_SIZE
        )
        if self.payload_len != expected:
            raise ArchiveError(
                f"payload length {self.payload_len} disagrees with section "
                f"counts (expect {expected})"
            )


class _PostingsView(Mapping):
    """Lazy ``fingerprint -> postings`` mapping over the mmap."""

    def __init__(self, index: BinaryIndex):
        self._index = index

    def __len__(self) -> int:
        return self._index._header.n_fingerprints

    def __iter__(self):
        return iter(self._index._fingerprints())

    def __contains__(self, fingerprint) -> bool:
        return self._index._find_fingerprint(fingerprint) is not None

    def __getitem__(self, fingerprint: str) -> tuple[Posting, ...]:
        position = self._index._find_fingerprint(fingerprint)
        if position is None:
            raise KeyError(fingerprint)
        return self._index._postings_at(position)


class _TimelinesView(Mapping):
    """Lazy ``provider -> timeline`` mapping over the mmap."""

    def __init__(self, index: BinaryIndex):
        self._index = index

    def __len__(self) -> int:
        return self._index._header.n_providers

    def __iter__(self):
        return iter(self._index.providers)

    def __getitem__(self, provider: str) -> tuple[TimelineEntry, ...]:
        try:
            return self._index.timeline(provider)
        except ArchiveError:
            raise KeyError(provider) from None


class BinaryIndex:
    """An mmap-backed read-only index, duck-typed to ``ArchiveIndex``.

    Construction validates the header only; every section decodes
    lazily, one record at a time, on first touch.  Decoded timeline
    entries are memoized (they are shared by every posting pointing at
    the same release), so a steady-state worker converges to exactly
    the hot subset of the index in Python objects while the cold bulk
    stays in shared pages.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        with open(self.path, "rb") as handle:
            head = handle.read(HEADER_SIZE)
            if len(head) < HEADER_SIZE:
                raise ArchiveError("short header (torn write)")
            self._header = _Header(head)
            self._map = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        actual = len(self._map)
        if actual != HEADER_SIZE + self._header.payload_len:
            self._map.close()
            raise ArchiveError(
                f"file is {actual} bytes, header promises "
                f"{HEADER_SIZE + self._header.payload_len} (torn write)"
            )
        self.catalog_hash: str = self._header.catalog_hash
        self._provider_table: list[tuple[str, int, int]] | None = None
        self._timeline_cache: dict[int, TimelineEntry] = {}
        self._provider_of_cache: dict[int, str] = {}

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self._map.close()

    def verify_payload(self) -> bool:
        """Whether the payload matches its recorded SHA-256 (full read)."""
        digest = hashlib.sha256(self._map[HEADER_SIZE:]).digest()
        return digest == self._header.payload_sha

    # -- provider table ---------------------------------------------------

    def _providers(self) -> list[tuple[str, int, int]]:
        if self._provider_table is None:
            header, table = self._header, []
            for k in range(header.n_providers):
                at = header.providers_at + k * header.provider_record
                name = self._map[at : at + header.provider_width].rstrip(b"\x00")
                offset, count = _RANGE.unpack_from(self._map, at + header.provider_width)
                table.append((name.decode("utf-8"), offset, count))
            self._provider_table = table
        return self._provider_table

    @property
    def providers(self) -> list[str]:
        return [name for name, _, _ in self._providers()]

    @property
    def fingerprint_count(self) -> int:
        return self._header.n_fingerprints

    @property
    def postings(self) -> Mapping:
        return _PostingsView(self)

    @property
    def timelines(self) -> Mapping:
        return _TimelinesView(self)

    # -- timeline records -------------------------------------------------

    def _timeline_entry(self, position: int) -> TimelineEntry:
        cached = self._timeline_cache.get(position)
        if cached is not None:
            return cached
        header = self._header
        at = header.timelines_at + position * header.timeline_record
        ordinal, entries, manifest_raw = _TIMELINE_FIXED.unpack_from(self._map, at)
        version_at = at + _TIMELINE_FIXED.size
        version = self._map[version_at : version_at + header.version_width]
        entry = TimelineEntry(
            taken_at=date.fromordinal(ordinal),
            version=version.rstrip(b"\x00").decode("utf-8"),
            manifest_id=manifest_raw.hex(),
            entries=entries,
        )
        self._timeline_cache[position] = entry
        return entry

    def _provider_range(self, provider: str) -> tuple[int, int]:
        for name, offset, count in self._providers():
            if name == provider:
                return offset, count
        raise ArchiveError(f"no provider {provider!r} in archive")

    def _provider_of(self, position: int) -> str:
        cached = self._provider_of_cache.get(position)
        if cached is None:
            for name, offset, count in self._providers():
                if offset <= position < offset + count:
                    cached = name
                    break
            else:  # pragma: no cover - encode() guarantees coverage
                raise ArchiveError(f"timeline index {position} out of range")
            self._provider_of_cache[position] = cached
        return cached

    def timeline(self, provider: str) -> tuple[TimelineEntry, ...]:
        offset, count = self._provider_range(provider)
        return tuple(self._timeline_entry(offset + k) for k in range(count))

    def _taken_at_ordinal(self, position: int) -> int:
        at = self._header.timelines_at + position * self._header.timeline_record
        return _TIMELINE_FIXED.unpack_from(self._map, at)[0]

    def in_force(self, provider: str, when: date) -> TimelineEntry | None:
        """Same contract as ``ArchiveIndex.in_force``, via raw bisect.

        The bisect probes read one ``u32`` date per step straight from
        the mapped records; only the winning entry is decoded.
        """
        offset, count = self._provider_range(provider)
        if count == 0:
            return None
        target = when.toordinal()
        lo, hi = 0, count
        while lo < hi:  # bisect_right over record dates without decoding
            mid = (lo + hi) // 2
            if self._taken_at_ordinal(offset + mid) <= target:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None  # `when` predates the first release
        return self._timeline_entry(offset + lo - 1)

    # -- fingerprint postings ---------------------------------------------

    def _fingerprint_at(self, position: int) -> bytes:
        at = self._header.fingerprints_at + position * _FP_WIDTH
        return self._map[at : at + _FP_WIDTH]

    def _fingerprints(self) -> list[str]:
        return [
            self._fingerprint_at(k).hex() for k in range(self._header.n_fingerprints)
        ]

    def _find_fingerprint(self, fingerprint: str) -> int | None:
        """Binary search the sorted raw table (hex order == byte order)."""
        try:
            raw = bytes.fromhex(fingerprint)
        except ValueError:
            return None
        if len(raw) != _FP_WIDTH:
            return None
        lo, hi = 0, self._header.n_fingerprints
        while lo < hi:
            mid = (lo + hi) // 2
            probe = self._fingerprint_at(mid)
            if probe < raw:
                lo = mid + 1
            elif probe > raw:
                hi = mid
            else:
                return mid
        return None

    def _postings_at(self, position: int) -> tuple[Posting, ...]:
        offset, count = _RANGE.unpack_from(
            self._map, self._header.ranges_at + position * _RANGE.size
        )
        postings = []
        for k in range(count):
            (ref,) = _POSTING.unpack_from(
                self._map, self._header.postings_at + (offset + k) * _POSTING.size
            )
            entry = self._timeline_entry(ref)
            postings.append(
                Posting(
                    provider=self._provider_of(ref),
                    version=entry.version,
                    taken_at=entry.taken_at,
                )
            )
        return tuple(postings)

    def postings_for(self, fingerprint: str) -> tuple[Posting, ...]:
        position = self._find_fingerprint(fingerprint)
        return () if position is None else self._postings_at(position)

    # -- materialization (tests / tooling) --------------------------------

    def to_archive_index(self) -> ArchiveIndex:
        """Fully decode into a plain ``ArchiveIndex`` (equivalence tests)."""
        return ArchiveIndex(
            catalog_hash=self.catalog_hash,
            postings={fp: self.postings[fp] for fp in self.postings},
            timelines={p: self.timeline(p) for p in self.providers},
        )


def read_binary_index(archive: Archive, catalog_hash: str) -> BinaryIndex | None:
    """Open ``trust.bin`` when present, intact-looking, and fresh.

    ``None`` means "treat as absent": missing file, torn/foreign
    header, or a catalog hash that is not ``catalog_hash``.  Only the
    header is validated — payload damage is ``verify``/``repair``'s
    job (:func:`check_binary_index`).
    """
    path = binary_index_path(archive)
    try:
        index = BinaryIndex(path)
    except FileNotFoundError:
        return None
    except (ArchiveError, ValueError, OSError):
        return None
    if index.catalog_hash != catalog_hash:
        index.close()
        return None
    return index


def load_binary_index(archive: Archive) -> BinaryIndex:
    """The query loader: fresh binary index, (re)built on demand.

    The drop-in ``index_loader`` for
    :class:`~repro.archive.query.ArchiveQuery`.  When ``trust.bin`` is
    missing or stale the JSON path is consulted (rebuilding *it* from
    manifests if needed), the binary file re-persisted, and the mmap
    opened — so the cost is paid once per catalog version no matter
    how many workers follow.
    """
    catalog_hash = archive.catalog_hash()
    if catalog_hash is None:
        raise ArchiveError(f"archive {archive.root} has no catalog (nothing ingested?)")
    binary = read_binary_index(archive, catalog_hash)
    if binary is not None:
        return binary
    index = load_index(archive)  # fresh JSON or a full rebuild (which persists)
    binary = read_binary_index(archive, catalog_hash)
    if binary is not None:
        return binary  # the rebuild already installed trust.bin
    persist_binary_index(archive, index)
    binary = read_binary_index(archive, catalog_hash)
    if binary is None:  # pragma: no cover - persist just wrote it
        raise ArchiveError(f"binary index unreadable after rebuild at {binary_index_path(archive)}")
    return binary


def check_binary_index(archive: Archive) -> tuple[str, str] | None:
    """A ``(file, detail)`` damage finding for ``trust.bin``, or None.

    Stale-but-valid (catalog hash mismatch) is *not* damage — queries
    rebuild lazily, exactly like the JSON pair.  Damage is a torn or
    foreign header, a length that disagrees with the header, or a
    payload whose checksum no longer matches: the signatures of a
    crashed or bit-flipped write landing under the final name.
    """
    path = binary_index_path(archive)
    if not path.exists():
        return None
    rel = f"{INDEX_DIR}/{BINARY_FILE}"
    try:
        index = BinaryIndex(path)
    except ArchiveError as exc:
        return (rel, str(exc))
    except OSError as exc:  # pragma: no cover - unreadable file
        return (rel, f"unreadable: {exc}")
    try:
        if not index.verify_payload():
            return (rel, "payload checksum mismatch (bit flip or torn write)")
    finally:
        index.close()
    return None
