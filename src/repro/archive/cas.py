"""Content-addressed storage for certificate DER blobs.

The archive's unit of deduplication is the raw certificate.  Root
stores share most of their roots — the same NSS certificate appears in
hundreds of snapshots across ten providers — so the corpus's ~68k
entry occurrences collapse to a few hundred distinct DER blobs.  The
:class:`ContentStore` keys every blob by its SHA-256 hex digest (the
same fingerprint the whole analysis layer uses as certificate
identity) and lays it out in a sharded object directory::

    objects/
      3f/3fa1c2...9be.der      # first two hex chars shard the namespace
      a0/a07744...01c.der

Writes are idempotent and atomic: an object that already exists is
never rewritten (re-ingest of an unchanged corpus touches nothing),
and new objects land via a temp file + ``os.replace`` so a crashed
ingest can never leave a half-written object under its final name.
Reads verify the content address by default, so a flipped byte on disk
surfaces as :class:`~repro.errors.ArchiveCorruptionError` naming the
damaged file rather than as silently wrong analysis output.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.archive.io import atomic_write_bytes
from repro.errors import ArchiveCorruptionError, ArchiveError

#: Directory name of the object store inside an archive root.
OBJECTS_DIR = "objects"
#: Suffix given to every stored blob (they are all certificate DER).
OBJECT_SUFFIX = ".der"


def content_address(data: bytes) -> str:
    """The SHA-256 hex digest that names ``data`` in the store."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class PutResult:
    """Outcome of one :meth:`ContentStore.put`."""

    fingerprint: str
    created: bool  # False when the object was already present


class ContentStore:
    """A sharded, content-addressed object directory."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    # -- layout ----------------------------------------------------------

    def path_for(self, fingerprint: str) -> Path:
        """Where the object named ``fingerprint`` lives (or would live)."""
        if len(fingerprint) < 3 or not all(c in "0123456789abcdef" for c in fingerprint):
            raise ArchiveError(f"not a SHA-256 hex fingerprint: {fingerprint!r}")
        return self.root / fingerprint[:2] / f"{fingerprint}{OBJECT_SUFFIX}"

    # -- writes ----------------------------------------------------------

    def put(self, data: bytes) -> PutResult:
        """Store ``data`` under its content address (idempotent, atomic)."""
        fingerprint = content_address(data)
        path = self.path_for(fingerprint)
        if path.exists():
            return PutResult(fingerprint=fingerprint, created=False)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, data, site="object")
        return PutResult(fingerprint=fingerprint, created=True)

    def remove(self, fingerprint: str) -> bool:
        """Delete one object (GC of orphans); True when a file was removed."""
        path = self.path_for(fingerprint)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    # -- reads -----------------------------------------------------------

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def get(self, fingerprint: str, *, verify: bool = True) -> bytes:
        """The object's bytes; integrity-checked against its address.

        ``verify=True`` (the default) re-hashes the bytes and raises
        :class:`ArchiveCorruptionError` on mismatch — queries must fail
        loudly on damaged storage, never return plausible garbage.
        """
        path = self.path_for(fingerprint)
        try:
            data = path.read_bytes()
        except FileNotFoundError as exc:
            raise ArchiveCorruptionError(
                f"object {fingerprint} missing from content store ({path})",
                fingerprint=fingerprint,
                path=str(path),
            ) from exc
        if verify:
            actual = content_address(data)
            if actual != fingerprint:
                raise ArchiveCorruptionError(
                    f"object {fingerprint} is corrupt: stored bytes hash to "
                    f"{actual} ({path})",
                    fingerprint=fingerprint,
                    path=str(path),
                )
        return data

    def fingerprints(self) -> Iterator[str]:
        """Every object name on disk, in sorted order."""
        if not self.root.is_dir():
            return
        for shard in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for path in sorted(shard.glob(f"*{OBJECT_SUFFIX}")):
                yield path.name.removesuffix(OBJECT_SUFFIX)

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())
