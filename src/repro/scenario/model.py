"""The declarative scenario model: ecosystem edits as data.

A :class:`Scenario` describes a *what-if* intervention in the trust
anchor ecosystem — "distrust CA Z on date D", a Symantec-style phased
removal schedule, a ``server-distrust-after`` marking, a revocation
push — as an ordered list of :class:`Edit` records plus the workload of
leaf chains whose fate the question is about.  The model is pure data:
it knows nothing about archives, corpora, or validators, so the
incident registry (:mod:`repro.simulation.incidents`) can compile its
historical removals into scenarios without an import cycle, and
scenario files round-trip through canonical JSON
(:meth:`Scenario.to_json` / :meth:`Scenario.from_json`).

Roots are named by catalog slug (``symantec-class3-g1``) or full hex
SHA-256 fingerprint; the engine resolves slugs against the corpus at
compile time.  Dates are calendar dates — an edit is *in effect* on
every evaluation date on or after ``effective`` for every provider it
names (``providers=None`` means all providers in the grid).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from datetime import date, timedelta

from repro.errors import ValidationError

#: Edit kinds (the closed vocabulary scenario files may use).
EDIT_REMOVE = "remove"
EDIT_DISTRUST_AFTER = "distrust-after"
EDIT_REVOKE = "revoke"
EDIT_KINDS = (EDIT_REMOVE, EDIT_DISTRUST_AFTER, EDIT_REVOKE)

#: Revocation channels an ``EDIT_REVOKE`` may push through.
REVOKE_MECHANISMS = ("onecrl", "crlset", "ocsp")

#: Scenario file schema version.
SCENARIO_SCHEMA = 1


@dataclass(frozen=True)
class Edit:
    """One ecosystem edit.

    Attributes:
        kind: ``remove`` (drop the root from the store),
            ``distrust-after`` (stamp NSS-style partial distrust), or
            ``revoke`` (push the root's issuance through a client
            revocation channel).
        root: catalog slug or hex SHA-256 fingerprint of the target root.
        effective: first date the edit is in effect.
        providers: provider keys the edit applies to (None = all).
        distrust_after: the issuance cutoff stamped by
            ``distrust-after`` edits — leaves issued after it stop
            validating for TLS server auth.
        mechanism: revocation channel for ``revoke`` edits
            (``onecrl`` | ``crlset`` | ``ocsp``).
        comment: free-form note carried into reports.
    """

    kind: str
    root: str
    effective: date
    providers: tuple[str, ...] | None = None
    distrust_after: date | None = None
    mechanism: str | None = None
    comment: str = ""

    def __post_init__(self):
        if self.kind not in EDIT_KINDS:
            raise ValidationError(
                f"unknown edit kind {self.kind!r} (expected one of {EDIT_KINDS})"
            )
        if self.kind == EDIT_DISTRUST_AFTER and self.distrust_after is None:
            raise ValidationError("distrust-after edits need a distrust_after date")
        if self.kind == EDIT_REVOKE and self.mechanism not in REVOKE_MECHANISMS:
            raise ValidationError(
                f"revoke edits need a mechanism from {REVOKE_MECHANISMS}, "
                f"got {self.mechanism!r}"
            )
        if self.providers is not None:
            object.__setattr__(self, "providers", tuple(self.providers))

    def applies(self, provider: str, when: date) -> bool:
        """Whether this edit is in effect for ``provider`` at ``when``."""
        if when < self.effective:
            return False
        return self.providers is None or provider in self.providers

    def label(self) -> str:
        """Stable human-readable identity for diff attribution."""
        mechanism = f":{self.mechanism}" if self.mechanism else ""
        return f"{self.kind}{mechanism} {self.root} @ {self.effective.isoformat()}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "root": self.root,
            "effective": self.effective.isoformat(),
            "providers": list(self.providers) if self.providers is not None else None,
            "distrust_after": (
                self.distrust_after.isoformat() if self.distrust_after else None
            ),
            "mechanism": self.mechanism,
            "comment": self.comment,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Edit":
        try:
            return cls(
                kind=payload["kind"],
                root=payload["root"],
                effective=date.fromisoformat(payload["effective"]),
                providers=(
                    tuple(payload["providers"])
                    if payload.get("providers") is not None
                    else None
                ),
                distrust_after=(
                    date.fromisoformat(payload["distrust_after"])
                    if payload.get("distrust_after")
                    else None
                ),
                mechanism=payload.get("mechanism"),
                comment=payload.get("comment", ""),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed scenario edit: {exc}") from exc


@dataclass(frozen=True)
class ChainSpec:
    """One workload chain: a server leaf minted under a catalog root."""

    issuer: str  # catalog slug of the issuing root
    domain: str
    not_before: date
    lifetime_days: int = 398
    #: chain through a deterministic intermediate CA instead of
    #: issuing the leaf directly from the root
    via_intermediate: bool = False

    def __post_init__(self):
        if self.lifetime_days <= 0:
            raise ValidationError("chain lifetime_days must be positive")

    def to_dict(self) -> dict:
        return {
            "issuer": self.issuer,
            "domain": self.domain,
            "not_before": self.not_before.isoformat(),
            "lifetime_days": self.lifetime_days,
            "via_intermediate": self.via_intermediate,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChainSpec":
        try:
            return cls(
                issuer=payload["issuer"],
                domain=payload["domain"],
                not_before=date.fromisoformat(payload["not_before"]),
                lifetime_days=payload.get("lifetime_days", 398),
                via_intermediate=payload.get("via_intermediate", False),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed workload chain: {exc}") from exc


#: Default evaluation offsets around each edit's effective date.
DEFAULT_DATE_OFFSETS = (-7, 0, 30, 90)


@dataclass(frozen=True)
class Scenario:
    """A named intervention: edits + workload + evaluation grid."""

    name: str
    description: str = ""
    edits: tuple[Edit, ...] = ()
    workload: tuple[ChainSpec, ...] = ()
    #: provider grid (None = every provider the engine's archive holds)
    providers: tuple[str, ...] | None = None
    #: evaluation dates (None = derived around the edit schedule)
    dates: tuple[date, ...] | None = None

    def __post_init__(self):
        if not self.name:
            raise ValidationError("a scenario needs a name")
        object.__setattr__(self, "edits", tuple(self.edits))
        object.__setattr__(self, "workload", tuple(self.workload))
        if self.providers is not None:
            object.__setattr__(self, "providers", tuple(self.providers))
        if self.dates is not None:
            object.__setattr__(self, "dates", tuple(sorted(set(self.dates))))

    # -- derived grids ----------------------------------------------------

    def dates_or_default(self) -> tuple[date, ...]:
        """Explicit dates, or a grid bracketing every edit's schedule."""
        if self.dates is not None:
            if not self.dates:
                raise ValidationError(f"scenario {self.name!r} has an empty date grid")
            return self.dates
        if not self.edits:
            raise ValidationError(
                f"scenario {self.name!r} has neither dates nor edits to derive them from"
            )
        derived: set[date] = set()
        for edit in self.edits:
            for offset in DEFAULT_DATE_OFFSETS:
                derived.add(edit.effective + timedelta(days=offset))
        return tuple(sorted(derived))

    def edited_roots(self) -> tuple[str, ...]:
        """Distinct roots named by the edit list, in first-seen order."""
        seen: list[str] = []
        for edit in self.edits:
            if edit.root not in seen:
                seen.append(edit.root)
        return tuple(seen)

    def workload_or_default(self) -> tuple[ChainSpec, ...]:
        """Explicit workload, or one leaf per edited root.

        The default leaf is issued 180 days before the root's first
        edit with a 398-day lifetime, so it is valid across the default
        evaluation window and — for ``distrust-after`` edits with a
        cutoff in the past — issued *after* the cutoff, which is the
        population the marking actually breaks.
        """
        if self.workload:
            return self.workload
        chains: list[ChainSpec] = []
        for root in self.edited_roots():
            first = min(e.effective for e in self.edits if e.root == root)
            chains.append(
                ChainSpec(
                    issuer=root,
                    domain=f"{root}.example",
                    not_before=first - timedelta(days=180),
                )
            )
        if not chains:
            raise ValidationError(
                f"scenario {self.name!r} has neither workload nor edits to derive one from"
            )
        return tuple(chains)

    def baseline(self) -> "Scenario":
        """The same grid and workload with every edit removed.

        The derived date grid and workload are materialized first (they
        are functions of the edit list, which is about to be emptied),
        so the baseline evaluates exactly the cells the scenario does.
        """
        return replace(
            self,
            name=f"{self.name}-baseline",
            edits=(),
            dates=self.dates_or_default(),
            workload=self.workload_or_default(),
        )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "description": self.description,
            "edits": [edit.to_dict() for edit in self.edits],
            "workload": [chain.to_dict() for chain in self.workload],
            "providers": list(self.providers) if self.providers is not None else None,
            "dates": (
                [d.isoformat() for d in self.dates] if self.dates is not None else None
            ),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        schema = payload.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ValidationError(f"unsupported scenario schema {schema!r}")
        try:
            return cls(
                name=payload["name"],
                description=payload.get("description", ""),
                edits=tuple(Edit.from_dict(e) for e in payload.get("edits", ())),
                workload=tuple(
                    ChainSpec.from_dict(c) for c in payload.get("workload", ())
                ),
                providers=(
                    tuple(payload["providers"])
                    if payload.get("providers") is not None
                    else None
                ),
                dates=(
                    tuple(date.fromisoformat(d) for d in payload["dates"])
                    if payload.get("dates") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed scenario: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"scenario file is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValidationError("a scenario file must hold a JSON object")
        return cls.from_dict(payload)

    def digest(self) -> str:
        """Content hash of the scenario definition (cache-key component)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()
