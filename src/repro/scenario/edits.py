"""Applying compiled scenario edits to snapshots and revocation feeds.

The model layer (:mod:`repro.scenario.model`) names roots by catalog
slug or fingerprint; the engine resolves those to SHA-256 fingerprints
at compile time and hands this module :class:`CompiledEdit` records.
Two things happen here:

- **Store edits** (``remove`` / ``distrust-after``) are applied to a
  :class:`~repro.store.snapshot.RootStoreSnapshot` for one (provider,
  date) cell, producing an edited in-memory snapshot — the archive
  itself is never mutated.  When no edit touches a root the snapshot
  actually contains, the original snapshot object is returned
  unchanged, so the common baseline path pays nothing.

- **Revocation edits** (``revoke`` via onecrl/crlset/ocsp) are
  materialized into a :class:`~repro.revocation.checker.RevocationChecker`
  per evaluation date.  Clients learn of a revocation when their feed
  updates, so only edits with ``effective <= date`` are present in the
  checker for that date — which is what lets a single scenario flip a
  chain from valid to ``revoked:<mechanism>`` as the grid crosses the
  effective date.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime, timezone

from repro.revocation.checker import RevocationChecker
from repro.revocation.crlset import CRLSet
from repro.revocation.ocsp import OCSPResponder
from repro.revocation.onecrl import OneCRL
from repro.scenario.model import (
    EDIT_DISTRUST_AFTER,
    EDIT_REMOVE,
    EDIT_REVOKE,
    Edit,
)
from repro.store.snapshot import RootStoreSnapshot
from repro.x509.builder import PrivateKey
from repro.x509.certificate import Certificate


def to_moment(when: date) -> datetime:
    """Calendar date -> the UTC midnight datetime the validators use."""
    return datetime(when.year, when.month, when.day, tzinfo=timezone.utc)


@dataclass(frozen=True)
class CompiledEdit:
    """A scenario edit with its root resolved to a SHA-256 fingerprint."""

    kind: str
    root: str  # the name used in the scenario (slug or fingerprint)
    fingerprint: str
    effective: date
    providers: tuple[str, ...] | None
    distrust_after: date | None
    mechanism: str | None
    label: str

    @classmethod
    def from_edit(cls, edit: Edit, fingerprint: str) -> "CompiledEdit":
        return cls(
            kind=edit.kind,
            root=edit.root,
            fingerprint=fingerprint,
            effective=edit.effective,
            providers=edit.providers,
            distrust_after=edit.distrust_after,
            mechanism=edit.mechanism,
            label=edit.label(),
        )

    def applies(self, provider: str, when: date) -> bool:
        if when < self.effective:
            return False
        return self.providers is None or provider in self.providers


def apply_edits(
    snapshot: RootStoreSnapshot,
    edits: tuple[CompiledEdit, ...],
    when: date,
) -> RootStoreSnapshot:
    """The snapshot as the scenario's store edits leave it at ``when``.

    Only ``remove`` and ``distrust-after`` edits touch the store;
    ``revoke`` edits live in the revocation feeds.  Returns the input
    snapshot object itself when no active edit matches a present root.
    """
    active = [
        e
        for e in edits
        if e.kind in (EDIT_REMOVE, EDIT_DISTRUST_AFTER)
        and e.applies(snapshot.provider, when)
        and snapshot.get(e.fingerprint) is not None
    ]
    if not active:
        return snapshot

    removed = {e.fingerprint for e in active if e.kind == EDIT_REMOVE}
    # Latest-effective distrust-after wins when several stamp one root.
    cutoffs: dict[str, date] = {}
    for e in sorted(active, key=lambda e: e.effective):
        if e.kind == EDIT_DISTRUST_AFTER:
            cutoffs[e.fingerprint] = e.distrust_after

    entries = []
    for entry in snapshot.entries:
        if entry.fingerprint in removed:
            continue
        cutoff = cutoffs.get(entry.fingerprint)
        if cutoff is not None:
            entry = entry.with_distrust_after(to_moment(cutoff))
        entries.append(entry)
    return RootStoreSnapshot.build(
        provider=snapshot.provider,
        taken_at=snapshot.taken_at,
        version=snapshot.version,
        entries=entries,
    )


@dataclass(frozen=True)
class RevocationMaterial:
    """What a revoke edit needs to materialize, per edited root.

    ``issued`` holds every workload certificate chained under the root
    (leaves and intermediates), so serial-keyed mechanisms (OneCRL,
    OCSP) can name them; SPKI-keyed blocks (CRLSet) only need the root.
    The root key signs OCSP responses.
    """

    root: Certificate
    root_key: PrivateKey
    issued: tuple[Certificate, ...] = ()


def materialize_revocation(
    edits: tuple[CompiledEdit, ...],
    material: dict[str, RevocationMaterial],
    provider: str,
    when: date,
) -> RevocationChecker | None:
    """The revocation state a client sees at (provider, when).

    Returns ``None`` when no revoke edit is in effect — the engine then
    runs the validator without a checker at all, keeping the baseline
    path identical to plain chain validation.
    """
    active = [
        e
        for e in edits
        if e.kind == EDIT_REVOKE
        and e.applies(provider, when)
        and e.fingerprint in material
    ]
    if not active:
        return None

    onecrl: OneCRL | None = None
    crlset: CRLSet | None = None
    responders: dict[str, OCSPResponder] = {}
    for edit in active:
        mat = material[edit.fingerprint]
        if edit.mechanism == "onecrl":
            if onecrl is None:
                onecrl = OneCRL()
            for cert in mat.issued:
                onecrl.add(cert, added=edit.effective, comment=edit.label)
        elif edit.mechanism == "crlset":
            if crlset is None:
                crlset = CRLSet()
            crlset.block_spki(mat.root)
        elif edit.mechanism == "ocsp":
            responder = responders.get(edit.fingerprint)
            if responder is None:
                responder = OCSPResponder(
                    issuer_certificate=mat.root, issuer_key=mat.root_key
                )
                responders[edit.fingerprint] = responder
            moment = to_moment(edit.effective)
            for cert in mat.issued:
                # Only certificates the root itself issued are in this
                # responder's authority (issuer-keyed CertID hashes).
                if cert.issuer == mat.root.subject:
                    responder.revoke(cert, moment)
    return RevocationChecker(
        onecrl=onecrl,
        crlset=crlset,
        ocsp_responders=list(responders.values()),
    )
