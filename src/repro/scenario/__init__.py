"""What-if incident engine: ecosystem edits, bulk verification, impact.

The paper measures how root stores *did* respond to incidents; this
subsystem answers the forward-looking question — given an edit to the
ecosystem (a distrust, a phased removal, a revocation push), which
chains stop verifying on which providers, and what fraction of the
user-agent population is affected, over time.

- :mod:`repro.scenario.model` — the declarative :class:`Scenario`
  (edits + workload + grid) with its JSON file format.
- :mod:`repro.scenario.edits` — applying compiled edits to snapshots
  and materializing date-gated revocation state.
- :mod:`repro.scenario.engine` — bulk grid evaluation: process pool,
  archive-adjacent result cache, full-path validation.
- :mod:`repro.scenario.impact` — Table-1 population roll-up and
  baseline diffing with edit attribution.
- :mod:`repro.scenario.report` — canonical run bytes + CLI tables.
"""

from repro.scenario.engine import (
    ENGINE_VERSION,
    CompiledScenario,
    PoolChaos,
    RunStats,
    ScenarioEngine,
    ScenarioRun,
)
from repro.scenario.impact import (
    ChainImpactSeries,
    Flip,
    ImpactPoint,
    ImpactReport,
    RunDiff,
    diff_runs,
    population_impact,
)
from repro.scenario.model import (
    ChainSpec,
    Edit,
    Scenario,
)
from repro.scenario.report import (
    render_diff,
    render_impact,
    render_run,
    run_from_json,
    run_to_json,
    summarize,
)

__all__ = [
    "ChainImpactSeries",
    "ChainSpec",
    "CompiledScenario",
    "ENGINE_VERSION",
    "Edit",
    "Flip",
    "ImpactPoint",
    "ImpactReport",
    "PoolChaos",
    "RunDiff",
    "RunStats",
    "Scenario",
    "ScenarioEngine",
    "ScenarioRun",
    "diff_runs",
    "population_impact",
    "render_diff",
    "render_impact",
    "render_run",
    "run_from_json",
    "run_to_json",
    "summarize",
]
