"""Population impact: from grid outcomes to affected user-agent shares.

A :class:`~repro.scenario.engine.ScenarioRun` says which chains fail on
which providers on which dates; this module rolls that up through the
Table-1 user-agent weights (:mod:`repro.useragents.population`) into a
per-chain, per-date time series — "on 2020-07-01, 23.4% of the
attributable agent population cannot reach hosts on this chain" — and
diffs a scenario run against its baseline so the report names exactly
which edit broke what.

Providers in the evaluation grid that have no Table-1 weight (e.g.
derivative stores like ``debian``) still show up in per-provider
outcomes; they simply carry zero population weight, mirroring how the
paper's coverage analysis treats unattributable agents.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.scenario.engine import NO_SNAPSHOT, ScenarioRun
from repro.scenario.model import (
    EDIT_DISTRUST_AFTER,
    EDIT_REMOVE,
    EDIT_REVOKE,
    Edit,
)
from repro.useragents.population import ImpactBreakdown, impact_breakdown

#: Validation failure reasons each edit kind can inflict.  Used to
#: attribute a baseline->scenario flip to the edit that caused it.
_REASONS_BY_KIND = {
    EDIT_REMOVE: ("no-anchor", "anchor-not-trusted"),
    EDIT_DISTRUST_AFTER: ("server-distrust-after",),
}


@dataclass(frozen=True)
class ImpactPoint:
    """One (date, chain) sample of the population time series."""

    when: date
    chain: str
    #: provider -> True when the chain fails to validate there
    provider_outcomes: tuple[tuple[str, bool], ...]
    breakdown: ImpactBreakdown

    @property
    def fraction(self) -> float:
        return self.breakdown.fraction


@dataclass(frozen=True)
class ChainImpactSeries:
    """The population-impact time series for one workload chain."""

    chain: str
    points: tuple[ImpactPoint, ...]

    def fraction_on(self, when: date) -> float | None:
        for point in self.points:
            if point.when == when:
                return point.fraction
        return None

    @property
    def peak_fraction(self) -> float:
        return max((p.fraction for p in self.points), default=0.0)


@dataclass(frozen=True)
class ImpactReport:
    """Per-chain population impact over the whole evaluation grid."""

    scenario: str
    dates: tuple[date, ...]
    series: tuple[ChainImpactSeries, ...]

    def for_chain(self, chain: str) -> ChainImpactSeries | None:
        for entry in self.series:
            if entry.chain == chain:
                return entry
        return None


def population_impact(run: ScenarioRun) -> ImpactReport:
    """Roll a run's grid up through the Table-1 population weights.

    A chain counts as *lost* on a provider when validation failed for
    any reason except ``no-snapshot`` (no store release in force means
    no evidence either way, matching how the removal-lag analysis
    treats pre-first-release dates).
    """
    series = []
    for chain in run.chain_keys:
        points = []
        for when in run.dates:
            outcomes: dict[str, bool] = {}
            for provider in run.providers:
                cell = run.outcomes(provider, when)
                verdict = cell.get(chain) if cell else None
                if verdict is None or verdict["reason"] == NO_SNAPSHOT:
                    continue
                outcomes[provider] = not verdict["valid"]
            points.append(
                ImpactPoint(
                    when=when,
                    chain=chain,
                    provider_outcomes=tuple(sorted(outcomes.items())),
                    breakdown=impact_breakdown(outcomes),
                )
            )
        series.append(ChainImpactSeries(chain=chain, points=tuple(points)))
    return ImpactReport(
        scenario=run.scenario.name, dates=run.dates, series=tuple(series)
    )


@dataclass(frozen=True)
class Flip:
    """One chain that changed verdict between baseline and scenario."""

    provider: str
    when: date
    chain: str
    baseline_reason: str
    scenario_reason: str
    #: True when the scenario broke it (False = the scenario fixed it)
    broke: bool
    #: labels of the edits whose failure signature matches (may be
    #: empty when the flip is a side effect no single edit explains)
    caused_by: tuple[str, ...] = ()


@dataclass(frozen=True)
class RunDiff:
    """Baseline-vs-scenario comparison over an identical grid."""

    scenario: str
    flips: tuple[Flip, ...]
    baseline_impact: ImpactReport
    scenario_impact: ImpactReport

    @property
    def broken(self) -> tuple[Flip, ...]:
        return tuple(f for f in self.flips if f.broke)

    @property
    def fixed(self) -> tuple[Flip, ...]:
        return tuple(f for f in self.flips if not f.broke)

    def impact_delta(self, chain: str, when: date) -> float:
        """Scenario-minus-baseline affected fraction for one sample."""
        base = self.baseline_impact.for_chain(chain)
        scen = self.scenario_impact.for_chain(chain)
        before = base.fraction_on(when) if base else None
        after = scen.fraction_on(when) if scen else None
        return (after or 0.0) - (before or 0.0)


def _attribute(
    reason: str, chain: str, edits: tuple[Edit, ...], provider: str, when: date
):
    """The edits whose in-effect failure signature matches ``reason``.

    When any signature-matching edit also names the chain's issuing
    root (chain keys are ``<issuer-slug>/<domain>``), attribution is
    narrowed to those; edits that target roots by raw fingerprint fall
    back to the signature match alone.
    """
    issuer = chain.split("/", 1)[0]
    matched = []
    for edit in edits:
        if not edit.applies(provider, when):
            continue
        if edit.kind == EDIT_REVOKE:
            expected = (f"revoked:{edit.mechanism}",)
        else:
            expected = _REASONS_BY_KIND[edit.kind]
        if reason in expected:
            matched.append(edit)
    by_issuer = [e for e in matched if e.root == issuer]
    return tuple(e.label() for e in (by_issuer or matched))


def diff_runs(baseline: ScenarioRun, scenario: ScenarioRun) -> RunDiff:
    """Every verdict flip between two runs of the same grid/workload.

    Flips that the scenario *caused* carry the labels of the matching
    edits, derived from the validation failure reason — a removal shows
    up as ``no-anchor``/``anchor-not-trusted``, a partial distrust as
    ``server-distrust-after``, a revocation as ``revoked:<mechanism>``.
    """
    flips = []
    edits = scenario.scenario.edits
    for provider in scenario.providers:
        for when in scenario.dates:
            after = scenario.outcomes(provider, when)
            before = baseline.outcomes(provider, when)
            if after is None or before is None:
                continue
            for chain, verdict in after.items():
                base = before.get(chain)
                if base is None or base["valid"] == verdict["valid"]:
                    continue
                broke = base["valid"] and not verdict["valid"]
                flips.append(
                    Flip(
                        provider=provider,
                        when=when,
                        chain=chain,
                        baseline_reason=base["reason"],
                        scenario_reason=verdict["reason"],
                        broke=broke,
                        caused_by=(
                            _attribute(verdict["reason"], chain, edits, provider, when)
                            if broke
                            else ()
                        ),
                    )
                )
    return RunDiff(
        scenario=scenario.scenario.name,
        flips=tuple(flips),
        baseline_impact=population_impact(baseline),
        scenario_impact=population_impact(scenario),
    )
