"""The scenario engine: bulk what-if evaluation over an archive.

:class:`ScenarioEngine` takes a :class:`~repro.scenario.model.Scenario`
and answers, for every (provider, evaluation date) cell of the grid:
which workload chains still validate once the scenario's edits are in
effect?  Snapshots come from :class:`~repro.archive.query.ArchiveQuery`
(the archive itself is never mutated), edits are applied in memory by
:mod:`repro.scenario.edits`, and every chain runs through the full
:class:`~repro.verify.chain.ChainValidator` path — expiry, CA bits,
EKU, ``server-distrust-after``, and revocation
(OneCRL/CRLSet/OCSP) when the scenario pushes any.

Three performance layers, because a phased-removal sweep multiplies
providers x dates x chains:

- **Compile once.**  Slug resolution, leaf/intermediate minting, and
  revocation material are built one time into a picklable
  :class:`CompiledScenario` (certificates travel as DER, keys as their
  integer dataclass) shared by every cell.
- **Process pool.**  Cells are split into contiguous per-worker blocks
  (provider-major order, so a block stays inside one provider's
  timeline and its snapshot cache) and merged back in block order —
  results are byte-identical to a serial run, the same discipline as
  ``scrape_history(workers=N)``.  ``workers=1`` runs the identical
  chunk function inline.
- **Keyed result cache.**  A cell's answer is fully determined by
  (engine version, snapshot manifest id, provider, date, scenario
  digest), so it is cached in the archive-adjacent
  :class:`~repro.archive.cache.ResultCache`; warm sweeps — phased
  schedules revisit most cells — skip validation *and* the simulated
  snapshot fetch entirely.

``fetch_latency_s`` models the per-cell snapshot fetch of a remote
archive (the same latent-origin device as the collection benches); the
bench suite uses it to measure pool and cache speedups with an
I/O-bound shape, and it defaults to 0 (no sleep) for real runs.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from datetime import date, timedelta
from multiprocessing import get_context
from pathlib import Path

from repro.archive.cache import ResultCache, cache_key
from repro.archive.manifest import Archive
from repro.archive.query import ArchiveQuery
from repro.crypto.rng import DeterministicRandom
from repro.crypto.rsa import generate_rsa_key
from repro.errors import ScenarioPoolError, ValidationError
from repro.obs.instrument import count, set_gauge, stage_timer
from repro.scenario.edits import (
    CompiledEdit,
    RevocationMaterial,
    apply_edits,
    materialize_revocation,
    to_moment,
)
from repro.scenario.model import ChainSpec, Scenario
from repro.simulation.corpus import Corpus, default_corpus
from repro.verify.chain import ChainValidator
from repro.verify.issuance import issue_intermediate, issue_server_leaf
from repro.x509.builder import CertificateBuilder
from repro.x509.certificate import Certificate
from repro.x509.extensions import ExtendedKeyUsage, SubjectAltName
from repro.x509.name import Name
from repro.asn1.oid import EKU_SERVER_AUTH

#: Bumped whenever cell semantics change; part of every cache key.
ENGINE_VERSION = 1

#: Chains that cannot be evaluated because no snapshot is in force.
NO_SNAPSHOT = "no-snapshot"

_HEX = set("0123456789abcdef")


@dataclass(frozen=True)
class CompiledChain:
    """One workload chain, compiled to picklable primitives.

    ``ders`` is leaf-first and excludes the anchor (the validator finds
    anchors in the store); non-leaf elements are offered to the
    validator as intermediates.
    """

    key: str
    issuer_slug: str
    issuer_fingerprint: str
    ders: tuple[bytes, ...]


@dataclass(frozen=True)
class CompiledMaterial:
    """Revocation material for one edited root, as primitives.

    The private key rides along as its dataclass (RSA and EC keys are
    plain dataclasses of integers, picklable by construction).
    """

    fingerprint: str
    root_der: bytes
    key: object
    issued_ders: tuple[bytes, ...]


@dataclass(frozen=True)
class CompiledScenario:
    """Everything a worker needs, resolved and picklable."""

    name: str
    digest: str
    edits: tuple[CompiledEdit, ...]
    chains: tuple[CompiledChain, ...]
    material: tuple[CompiledMaterial, ...]


@dataclass
class RunStats:
    """Execution accounting (kept out of the canonical result bytes)."""

    workers: int = 1
    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_skips: int = 0
    chains_validated: int = 0
    #: Chunk re-dispatches after a pool worker died mid-block.
    redispatches: int = 0


@dataclass(frozen=True)
class PoolChaos:
    """Deterministic pool-worker kill injection (test/bench device).

    The same philosophy as :mod:`repro.archive.chaos`, one layer up:
    instead of crashing a write at a named site, kill the *process*
    evaluating a named grid cell.  ``kill_cells`` are ``provider@iso``
    labels; with ``die_once`` each label kills only the first worker
    that reaches it (a marker file on disk survives the re-dispatch, so
    the retried chunk completes), without it the cell is lethal every
    time — how the bench proves the retry budget actually bounds.

    Only the *pool* path arms this: a serial run evaluates chunks
    inline, where ``os._exit`` would take the caller down with it.
    """

    kill_cells: tuple[str, ...]
    marker_dir: str
    die_once: bool = True
    exit_code: int = 113

    def maybe_kill(self, provider: str, when: date) -> None:
        label = f"{provider}@{when.isoformat()}"
        if label not in self.kill_cells:
            return
        if self.die_once:
            marker = Path(self.marker_dir) / f"{label}.killed"
            try:
                marker.touch(exist_ok=False)
            except OSError:
                return  # this cell already claimed its kill: survive
        os._exit(self.exit_code)


@dataclass(frozen=True)
class ScenarioRun:
    """The evaluated grid: one payload dict per (provider, date) cell.

    ``cells`` is provider-major ordered and JSON-canonical — the bench
    suite asserts byte-identity of its serialization across serial,
    parallel, and cached executions.
    """

    scenario: Scenario
    digest: str
    providers: tuple[str, ...]
    dates: tuple[date, ...]
    chain_keys: tuple[str, ...]
    cells: tuple[dict, ...]
    stats: RunStats = field(compare=False)

    def cell(self, provider: str, when: date) -> dict | None:
        iso = when.isoformat()
        for payload in self.cells:
            if payload["provider"] == provider and payload["date"] == iso:
                return payload
        return None

    def outcomes(self, provider: str, when: date) -> dict[str, dict] | None:
        """chain key -> {"valid", "reason"} for one cell (or None)."""
        payload = self.cell(provider, when)
        return payload["chains"] if payload is not None else None


# -- the per-chunk worker (module level: must be picklable by name) ------


def _run_chunk(
    archive_root: str,
    compiled: CompiledScenario,
    cells: list[tuple[str, date]],
    fetch_latency_s: float,
    chaos: PoolChaos | None = None,
) -> list[dict]:
    """Evaluate a contiguous block of grid cells against the archive.

    Runs identically inline (serial mode) and inside a forked pool
    worker; everything it needs arrives via arguments, and it builds
    its own :class:`ArchiveQuery` so no live handles cross the fork.
    """
    query = ArchiveQuery(archive_root)
    chains = [
        (spec, tuple(Certificate.from_der(der) for der in spec.ders))
        for spec in compiled.chains
    ]
    intermediates = [cert for _, certs in chains for cert in certs[1:]]
    material = {
        m.fingerprint: RevocationMaterial(
            root=Certificate.from_der(m.root_der),
            root_key=m.key,
            issued=tuple(Certificate.from_der(der) for der in m.issued_ders),
        )
        for m in compiled.material
    }

    validators: dict[tuple, ChainValidator] = {}
    results: list[dict] = []
    for provider, when in cells:
        if chaos is not None:
            chaos.maybe_kill(provider, when)
        if fetch_latency_s > 0:
            time.sleep(fetch_latency_s)  # simulated remote snapshot fetch
        snapshot = query.snapshot_at(provider, when)
        if snapshot is None:
            results.append(
                {
                    "provider": provider,
                    "date": when.isoformat(),
                    "version": None,
                    "chains": {
                        spec.key: {"valid": False, "reason": NO_SNAPSHOT}
                        for spec, _ in chains
                    },
                }
            )
            continue
        checker = materialize_revocation(compiled.edits, material, provider, when)
        # One validator per distinct edited-store state: the edited
        # snapshot is a pure function of (release, active store edits),
        # so a phased sweep revisiting the same state reuses the issuer
        # index and signature memo instead of rebuilding per cell.
        store_key = (
            provider,
            snapshot.version,
            tuple(
                sorted(
                    e.label
                    for e in compiled.edits
                    if e.kind != "revoke" and e.applies(provider, when)
                )
            ),
        )
        validator = validators.get(store_key)
        if validator is None:
            edited = apply_edits(snapshot, compiled.edits, when)
            validator = ChainValidator(store=edited, intermediates=list(intermediates))
            validators[store_key] = validator
        validator.revocation = checker
        moment = to_moment(when)
        outcomes = {}
        for spec, certs in chains:
            result = validator.validate(certs[0], moment)
            outcomes[spec.key] = {"valid": result.valid, "reason": result.reason}
        results.append(
            {
                "provider": provider,
                "date": when.isoformat(),
                "version": snapshot.version,
                "chains": outcomes,
            }
        )
    return results


# -- the engine ----------------------------------------------------------


class ScenarioEngine:
    """Evaluates scenarios against one archive.

    Args:
        archive: the archive directory (or an :class:`Archive`).
        corpus: simulation corpus for slug resolution and minting
            (defaults to the shared process corpus).
        workers: process-pool size; 1 means serial (same code path).
        use_cache: consult/populate the archive-adjacent result cache.
        fetch_latency_s: simulated per-cell snapshot fetch latency.
        chunk_retries: how many times a grid block whose pool worker
            died may be re-dispatched (split in half per retry) before
            the sweep fails with :class:`ScenarioPoolError`.
        chaos: deterministic pool-worker kill injection (tests/bench).
    """

    CACHE_NAMESPACE = "scenario"

    def __init__(
        self,
        archive: Archive | str,
        *,
        corpus: Corpus | None = None,
        workers: int = 1,
        use_cache: bool = True,
        fetch_latency_s: float = 0.0,
        chunk_retries: int = 2,
        chaos: PoolChaos | None = None,
    ):
        self.archive = archive if isinstance(archive, Archive) else Archive(archive)
        self._corpus = corpus
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if chunk_retries < 0:
            raise ValidationError(f"chunk_retries must be >= 0, got {chunk_retries}")
        self.workers = workers
        self.use_cache = use_cache
        self.fetch_latency_s = fetch_latency_s
        self.chunk_retries = chunk_retries
        self.chaos = chaos
        self.query = ArchiveQuery(self.archive)
        self.cache = ResultCache(self.archive.root, self.CACHE_NAMESPACE)
        #: minted workload chains, memoized per spec — a baseline and
        #: its scenario share one workload, and pure-Python RSA keygen
        #: is the expensive part of compiling it
        self._chain_cache: dict[ChainSpec, CompiledChain] = {}

    @property
    def corpus(self) -> Corpus:
        if self._corpus is None:
            self._corpus = default_corpus()
        return self._corpus

    # -- compilation ------------------------------------------------------

    def _resolve_fingerprint(self, root: str) -> str:
        corpus = self.corpus
        if root in corpus.specs_by_slug:
            return corpus.fingerprint(root)
        lowered = root.lower()
        if len(lowered) == 64 and set(lowered) <= _HEX:
            return lowered
        raise ValidationError(
            f"unknown root {root!r}: neither a catalog slug nor a sha256 fingerprint"
        )

    def _resolve_issuer_slug(self, issuer: str) -> str:
        corpus = self.corpus
        if issuer in corpus.specs_by_slug:
            return issuer
        slug = corpus.slug_for(issuer.lower())
        if slug is not None:
            return slug
        raise ValidationError(
            f"workload issuer {issuer!r} is not a catalog root (chains need a mintable key)"
        )

    def _mint_chain(self, spec: ChainSpec) -> CompiledChain:
        cached = self._chain_cache.get(spec)
        if cached is not None:
            return cached
        compiled = self._mint_chain_uncached(spec)
        self._chain_cache[spec] = compiled
        return compiled

    def _mint_chain_uncached(self, spec: ChainSpec) -> CompiledChain:
        corpus = self.corpus
        slug = self._resolve_issuer_slug(spec.issuer)
        root_spec = corpus.specs_by_slug[slug]
        issued_at = to_moment(spec.not_before)
        if not spec.via_intermediate:
            leaf = issue_server_leaf(
                root_spec,
                corpus.mint,
                spec.domain,
                not_before=issued_at,
                lifetime_days=spec.lifetime_days,
            )
            ders = (leaf.der,)
        else:
            intermediate, ca_key = issue_intermediate(
                root_spec,
                corpus.mint,
                f"{spec.domain} Issuing CA",
                not_before=issued_at - timedelta(days=30),
            )
            leaf = self._issue_from_intermediate(intermediate, ca_key, spec, issued_at)
            ders = (leaf.der, intermediate.der)
        return CompiledChain(
            key=f"{slug}/{spec.domain}",
            issuer_slug=slug,
            issuer_fingerprint=corpus.fingerprint(slug),
            ders=ders,
        )

    @staticmethod
    def _issue_from_intermediate(intermediate, ca_key, spec: ChainSpec, issued_at):
        """A server leaf under a scenario intermediate (same idiom as
        :func:`repro.verify.issuance.issue_server_leaf`, but signed by
        the intermediate's key)."""
        import hashlib

        rng = DeterministicRandom(f"scenario-leaf/{spec.issuer}/{spec.domain}")
        leaf_key = generate_rsa_key(1024, rng)
        serial = (
            int.from_bytes(
                hashlib.sha256(f"scenario/{spec.issuer}/{spec.domain}".encode()).digest()[:8],
                "big",
            )
            | 1
        )
        builder = (
            CertificateBuilder()
            .subject(Name.build(common_name=spec.domain, organization=f"{spec.domain} operator"))
            .issuer(intermediate.subject)
            .serial(serial)
            .valid(issued_at, issued_at + timedelta(days=spec.lifetime_days))
            .public_key(leaf_key.public_key)
            .ca(False)
            .add_extension(SubjectAltName(dns_names=(spec.domain,)).to_extension())
            .add_extension(ExtendedKeyUsage(purposes=(EKU_SERVER_AUTH,)).to_extension())
        )
        return builder.sign(ca_key, "sha256", issuer_public_key=intermediate.public_key)

    def compile(self, scenario: Scenario) -> CompiledScenario:
        """Resolve roots, mint the workload, gather revocation material."""
        corpus = self.corpus
        edits = tuple(
            CompiledEdit.from_edit(edit, self._resolve_fingerprint(edit.root))
            for edit in scenario.edits
        )
        chains = tuple(self._mint_chain(spec) for spec in scenario.workload_or_default())

        revoke_fps = {e.fingerprint for e in edits if e.kind == "revoke"}
        material = []
        for fingerprint in sorted(revoke_fps):
            slug = corpus.slug_for(fingerprint)
            if slug is None:
                raise ValidationError(
                    f"revoke edit targets {fingerprint[:12]}…, which is not a "
                    "catalog root (no key to sign revocation data with)"
                )
            root_spec = corpus.specs_by_slug[slug]
            issued = tuple(
                cert_der
                for chain in chains
                if chain.issuer_fingerprint == fingerprint
                for cert_der in chain.ders
            )
            material.append(
                CompiledMaterial(
                    fingerprint=fingerprint,
                    root_der=corpus.certificate(slug).der,
                    key=corpus.mint.key_for(root_spec),
                    issued_ders=issued,
                )
            )
        return CompiledScenario(
            name=scenario.name,
            digest=scenario.digest(),
            edits=edits,
            chains=chains,
            material=tuple(material),
        )

    # -- execution --------------------------------------------------------

    def _grid(self, scenario: Scenario) -> tuple[tuple[str, ...], tuple[date, ...]]:
        providers = scenario.providers or tuple(self.query.providers)
        if not providers:
            raise ValidationError("the archive holds no providers to evaluate against")
        return tuple(providers), scenario.dates_or_default()

    def _cell_cache_key(self, compiled: CompiledScenario, provider: str, when: date):
        """The content-hash key for one cell, or None (uncacheable).

        Cells with no snapshot in force are not cached: absence is not
        content-addressed, and a later ingest may fill the hole.
        """
        entry = self.query.index.in_force(provider, when)
        if entry is None:
            return None
        return cache_key(
            {
                "engine": ENGINE_VERSION,
                "scenario": compiled.digest,
                "manifest": entry.manifest_id,
                "provider": provider,
                "when": when.isoformat(),
            }
        )

    def run(self, scenario: Scenario) -> ScenarioRun:
        """Evaluate the full (provider, date) grid for one scenario."""
        stats = RunStats(workers=self.workers)
        with stage_timer(
            "scenario.compile",
            "repro_scenario_stage_seconds",
            metric_labels={"stage": "compile"},
            scenario=scenario.name,
        ):
            compiled = self.compile(scenario)
            providers, dates = self._grid(scenario)

        cells = [(provider, when) for provider in providers for when in dates]
        stats.cells = len(cells)

        with stage_timer(
            "scenario.grid",
            "repro_scenario_stage_seconds",
            metric_labels={"stage": "grid"},
            cells=str(len(cells)),
        ):
            cached: dict[tuple[str, date], dict] = {}
            keys: dict[tuple[str, date], str] = {}
            pending: list[tuple[str, date]] = []
            for cell in cells:
                key = (
                    self._cell_cache_key(compiled, *cell) if self.use_cache else None
                )
                if key is None:
                    if self.use_cache:
                        stats.cache_skips += 1
                        count("repro_scenario_cache_total", outcome="skip")
                    pending.append(cell)
                    continue
                keys[cell] = key
                hit = self.cache.get(key)
                if hit is not None:
                    stats.cache_hits += 1
                    count("repro_scenario_cache_total", outcome="hit")
                    cached[cell] = hit
                else:
                    stats.cache_misses += 1
                    count("repro_scenario_cache_total", outcome="miss")
                    pending.append(cell)

        with stage_timer(
            "scenario.validate",
            "repro_scenario_stage_seconds",
            metric_labels={"stage": "validate"},
            pending=str(len(pending)),
            workers=str(self.workers),
        ):
            computed = self._evaluate(compiled, pending, stats)
        set_gauge("repro_scenario_pool_workers", float(self.workers))

        by_cell = dict(cached)
        for cell, payload in zip(pending, computed):
            by_cell[cell] = payload
            if self.use_cache and cell in keys:
                self.cache.put(keys[cell], payload)

        ordered = tuple(by_cell[cell] for cell in cells)
        for payload in ordered:
            for outcome in payload["chains"].values():
                if outcome["reason"] == NO_SNAPSHOT:
                    continue
                stats.chains_validated += 1
                count(
                    "repro_scenario_chains_total",
                    outcome="valid" if outcome["valid"] else "invalid",
                )
        return ScenarioRun(
            scenario=scenario,
            digest=compiled.digest,
            providers=providers,
            dates=dates,
            chain_keys=tuple(chain.key for chain in compiled.chains),
            cells=ordered,
            stats=stats,
        )

    def _evaluate(
        self,
        compiled: CompiledScenario,
        cells: list[tuple[str, date]],
        stats: RunStats | None = None,
    ) -> list[dict]:
        """Run pending cells serially or across the fork pool.

        Results merge by their unique (provider, date) cell into the
        original grid order, so output is invariant in ``workers`` *and*
        in how blocks were re-chunked by retries.

        A pool worker that dies mid-block breaks the whole
        ``ProcessPoolExecutor`` (one shared result pipe), so each retry
        round builds a fresh pool; the failed block's *uncomputed* cells
        are split in half and re-dispatched with an inherited retry
        counter, and a block that exhausts ``chunk_retries`` fails the
        sweep with :class:`ScenarioPoolError` instead of spinning.
        """
        if not cells:
            return []
        root = str(self.archive.root)
        if self.workers == 1:
            # Inline evaluation: no process to lose, chaos stays unarmed
            # (maybe_kill here would take the engine down with it).
            return _run_chunk(root, compiled, cells, self.fetch_latency_s)
        by_cell: dict[tuple[str, date], dict] = {}
        work = [(block, 0) for block in _split(cells, self.workers)]
        while work:
            failed: list[tuple[list[tuple[str, date]], int]] = []
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(work)),
                mp_context=get_context("fork"),
            ) as pool:
                futures = [
                    (
                        block,
                        retries,
                        pool.submit(
                            _run_chunk,
                            root,
                            compiled,
                            block,
                            self.fetch_latency_s,
                            self.chaos,
                        ),
                    )
                    for block, retries in work
                ]
                for block, retries, future in futures:
                    try:
                        results = future.result()
                    except BrokenProcessPool:
                        # This block's worker died (or the broken pool
                        # cancelled it before it ran): re-dispatch.
                        failed.append((block, retries))
                        continue
                    for cell, payload in zip(block, results):
                        by_cell[cell] = payload
            work = []
            for block, retries in failed:
                remaining = [cell for cell in block if cell not in by_cell]
                if not remaining:
                    continue
                if retries >= self.chunk_retries:
                    count("repro_scenario_redispatch_total", outcome="exhausted")
                    raise ScenarioPoolError(
                        f"grid block of {len(remaining)} cells starting at "
                        f"{remaining[0][0]}@{remaining[0][1].isoformat()} killed "
                        f"its pool worker {retries + 1} times "
                        f"(chunk_retries={self.chunk_retries})"
                    )
                if stats is not None:
                    stats.redispatches += 1
                count("repro_scenario_redispatch_total", outcome="requeued")
                # Split on retry: if one poisonous cell keeps killing
                # workers, halving isolates it while the healthy half
                # completes.
                for half in _split(remaining, 2):
                    work.append((half, retries + 1))
        return [by_cell[cell] for cell in cells]

    def run_with_baseline(self, scenario: Scenario) -> tuple[ScenarioRun, ScenarioRun]:
        """(baseline, scenario) runs over the identical grid/workload."""
        baseline = self.run(scenario.baseline())
        return baseline, self.run(scenario)


def _split(items: list, parts: int) -> list[list]:
    """Contiguous near-equal blocks, never empty, at most ``parts``."""
    parts = min(parts, len(items))
    size, excess = divmod(len(items), parts)
    blocks = []
    start = 0
    for index in range(parts):
        stop = start + size + (1 if index < excess else 0)
        blocks.append(items[start:stop])
        start = stop
    return blocks
