"""Scenario run serialization and human-readable reports.

Two jobs:

- **Canonical bytes.**  :func:`run_to_json` serializes a
  :class:`~repro.scenario.engine.ScenarioRun` deterministically
  (sorted keys, compact separators, no execution stats) — the form the
  bench suite compares byte-for-byte across serial/parallel/cached
  executions, and what ``repro-roots scenario run --output`` writes.
  :func:`run_from_json` round-trips it for offline diffing.

- **Tables.**  :func:`render_run` / :func:`render_impact` /
  :func:`render_diff` produce the aligned monospace tables the CLI
  prints, via the shared :func:`repro.analysis.report.render_table`.
"""

from __future__ import annotations

import json
from datetime import date

from repro.analysis.report import render_table
from repro.errors import ValidationError
from repro.scenario.engine import RunStats, ScenarioRun
from repro.scenario.impact import ImpactReport, RunDiff, population_impact
from repro.scenario.model import Scenario

#: Version of the run-file format.
RUN_SCHEMA = 1


def run_to_dict(run: ScenarioRun) -> dict:
    """The canonical (stats-free) JSON shape of a run."""
    return {
        "schema": RUN_SCHEMA,
        "scenario": run.scenario.to_dict(),
        "digest": run.digest,
        "providers": list(run.providers),
        "dates": [d.isoformat() for d in run.dates],
        "chains": list(run.chain_keys),
        "cells": list(run.cells),
    }


def run_to_json(run: ScenarioRun) -> str:
    return json.dumps(run_to_dict(run), sort_keys=True, separators=(",", ":")) + "\n"


def run_from_dict(payload: dict) -> ScenarioRun:
    schema = payload.get("schema")
    if schema != RUN_SCHEMA:
        raise ValidationError(f"unsupported scenario run schema {schema!r}")
    try:
        return ScenarioRun(
            scenario=Scenario.from_dict(payload["scenario"]),
            digest=payload["digest"],
            providers=tuple(payload["providers"]),
            dates=tuple(date.fromisoformat(d) for d in payload["dates"]),
            chain_keys=tuple(payload["chains"]),
            cells=tuple(payload["cells"]),
            stats=RunStats(),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed scenario run file: {exc}") from exc


def run_from_json(text: str) -> ScenarioRun:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"run file is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValidationError("a run file must hold a JSON object")
    return run_from_dict(payload)


# -- tables ---------------------------------------------------------------


def render_run(run: ScenarioRun) -> str:
    """Per-cell verdicts: one row per (provider, date, chain)."""
    rows = []
    for cell in run.cells:
        for chain, verdict in sorted(cell["chains"].items()):
            rows.append(
                (
                    cell["provider"],
                    cell["date"],
                    cell["version"] or "-",
                    chain,
                    "valid" if verdict["valid"] else "INVALID",
                    verdict["reason"],
                )
            )
    return render_table(
        ("provider", "date", "release", "chain", "verdict", "reason"),
        rows,
        title=f"scenario {run.scenario.name} ({len(run.cells)} cells)",
    )


def render_impact(report: ImpactReport) -> str:
    """The population time series: chain x date affected fractions."""
    rows = []
    for series in report.series:
        for point in series.points:
            affected = ", ".join(p for p, lost in point.provider_outcomes if lost)
            rows.append(
                (
                    series.chain,
                    point.when.isoformat(),
                    f"{point.fraction * 100:.1f}%",
                    point.breakdown.affected_versions,
                    point.breakdown.included_versions,
                    point.breakdown.excluded_versions,
                    affected or "-",
                )
            )
    return render_table(
        ("chain", "date", "impact", "affected", "included", "excluded", "providers hit"),
        rows,
        title=f"population impact: {report.scenario}",
    )


def render_diff(diff: RunDiff) -> str:
    """Baseline-vs-scenario flips with their causing edits."""
    rows = []
    for flip in diff.flips:
        rows.append(
            (
                flip.provider,
                flip.when.isoformat(),
                flip.chain,
                "broke" if flip.broke else "fixed",
                flip.scenario_reason if flip.broke else flip.baseline_reason,
                f"{diff.impact_delta(flip.chain, flip.when) * 100:+.1f}%",
                "; ".join(flip.caused_by) or "-",
            )
        )
    if not rows:
        return f"scenario {diff.scenario}: no verdict changes vs baseline\n"
    return render_table(
        ("provider", "date", "chain", "change", "reason", "impact delta", "caused by"),
        rows,
        title=f"diff vs baseline: {diff.scenario}",
    )


def summarize(run: ScenarioRun) -> str:
    """One-paragraph run summary for CLI output."""
    impact = population_impact(run)
    peak = max((s.peak_fraction for s in impact.series), default=0.0)
    stats = run.stats
    return (
        f"scenario {run.scenario.name}: {len(run.cells)} cells "
        f"({len(run.providers)} providers x {len(run.dates)} dates), "
        f"{len(run.chain_keys)} chains, peak population impact "
        f"{peak * 100:.1f}% | workers={stats.workers} "
        f"cache hit/miss/skip={stats.cache_hits}/{stats.cache_misses}/{stats.cache_skips}"
    )
