"""Native root store artifact codecs.

One module per provider format (see
:class:`repro.store.provider.StoreFormat`):

- :mod:`repro.formats.certdata` — NSS ``certdata.txt``
- :mod:`repro.formats.authroot` — Microsoft ``authroot.stl`` + cert map
- :mod:`repro.formats.applestore` — Apple roots directory + trust plist
- :mod:`repro.formats.jks` — Java keystore (real binary JKS)
- :mod:`repro.formats.pem_bundle` — concatenated PEM bundles
- :mod:`repro.formats.certdir` — Debian/Android cert directories
- :mod:`repro.formats.nodeheader` — NodeJS ``node_root_certs.h``

Every codec is a (serialize, parse) pair whose round trip preserves the
trust semantics the format can express — lossy conversions (e.g. NSS
partial distrust flattened into a PEM bundle) are exactly the artifacts
the paper's Section 6 measures.

Every parser additionally accepts ``lenient=True`` with an optional
:class:`~repro.formats.diagnostics.DiagnosticLog`, skipping individually
malformed entries instead of failing the artifact — the salvage layer
underneath the fault-tolerant collection pipeline.
"""

from repro.formats.applestore import parse_apple_store, serialize_apple_store
from repro.formats.authroot import (
    AuthrootArtifact,
    decode_filetime,
    encode_filetime,
    parse_authroot,
    serialize_authroot,
)
from repro.formats.certdata import parse_certdata, serialize_certdata
from repro.formats.certdir import parse_cert_dir, serialize_cert_dir
from repro.formats.diagnostics import DiagnosticLog, ParseDiagnostic
from repro.formats.jks import DEFAULT_PASSWORD, parse_jks, serialize_jks
from repro.formats.nodeheader import parse_node_header, serialize_node_header
from repro.formats.pem_bundle import parse_pem_bundle, serialize_pem_bundle

__all__ = [
    "AuthrootArtifact",
    "DEFAULT_PASSWORD",
    "DiagnosticLog",
    "ParseDiagnostic",
    "decode_filetime",
    "encode_filetime",
    "parse_apple_store",
    "parse_authroot",
    "parse_cert_dir",
    "parse_certdata",
    "parse_jks",
    "parse_node_header",
    "parse_pem_bundle",
    "serialize_apple_store",
    "serialize_authroot",
    "serialize_cert_dir",
    "serialize_certdata",
    "serialize_jks",
    "serialize_node_header",
    "serialize_pem_bundle",
]
