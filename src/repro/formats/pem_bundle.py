"""Linux-style PEM bundle reader/writer (``tls-ca-bundle.pem`` et al.).

Alpine and Amazon Linux publish one concatenated PEM file.  The format
carries *no* trust context — a certificate's presence means full trust
for whatever the consuming application wants — which is exactly the
"multi-purpose root store" failure mode Section 6.2 analyzes.  Parsing
therefore assigns trust for the conventional bundle purposes.
"""

from __future__ import annotations

from repro.encoding.pem import encode_pem, split_bundle
from repro.formats.diagnostics import DiagnosticLog, salvage
from repro.obs.instrument import instrumented_codec
from repro.store.entry import TrustEntry
from repro.store.purposes import BUNDLE_PURPOSES, TrustLevel, TrustPurpose
from repro.x509.certificate import Certificate


def serialize_pem_bundle(
    entries: list[TrustEntry], *, header_comment: str | None = None
) -> str:
    """Concatenate entries into one PEM bundle with label comments."""
    chunks: list[str] = []
    if header_comment:
        for line in header_comment.splitlines():
            chunks.append(f"# {line}\n")
        chunks.append("\n")
    for entry in sorted(entries, key=lambda e: e.fingerprint):
        cert = entry.certificate
        label = cert.subject.common_name or cert.subject.rfc4514()
        chunks.append(f"# {label}\n")
        chunks.append(encode_pem(cert.der))
        chunks.append("\n")
    return "".join(chunks)


@instrumented_codec("pem-bundle")
def parse_pem_bundle(
    text: str,
    *,
    purposes: tuple[TrustPurpose, ...] = BUNDLE_PURPOSES,
    lenient: bool = False,
    diagnostics: DiagnosticLog | None = None,
) -> list[TrustEntry]:
    """Parse a PEM bundle; every certificate is fully trusted for ``purposes``.

    In lenient mode, malformed PEM armor and unparseable certificates
    are skipped individually (recorded in ``diagnostics``) instead of
    aborting the whole bundle.
    """
    def armor_error(message: str, line_no: int) -> None:
        if diagnostics is not None:
            diagnostics.record(f"bundle line {line_no}", message)

    entries: list[TrustEntry] = []
    for index, der in enumerate(split_bundle(text, lenient=lenient, on_error=armor_error)):
        with salvage(lenient, diagnostics, f"bundle certificate #{index}"):
            entries.append(
                TrustEntry.make(
                    Certificate.from_der(der),
                    purposes={purpose: TrustLevel.TRUSTED for purpose in purposes},
                )
            )
    entries.sort(key=lambda e: e.fingerprint)
    return entries
