"""Linux-style PEM bundle reader/writer (``tls-ca-bundle.pem`` et al.).

Alpine and Amazon Linux publish one concatenated PEM file.  The format
carries *no* trust context — a certificate's presence means full trust
for whatever the consuming application wants — which is exactly the
"multi-purpose root store" failure mode Section 6.2 analyzes.  Parsing
therefore assigns trust for the conventional bundle purposes.
"""

from __future__ import annotations

from repro.encoding.pem import encode_pem, split_bundle
from repro.store.entry import TrustEntry
from repro.store.purposes import BUNDLE_PURPOSES, TrustLevel, TrustPurpose
from repro.x509.certificate import Certificate


def serialize_pem_bundle(
    entries: list[TrustEntry], *, header_comment: str | None = None
) -> str:
    """Concatenate entries into one PEM bundle with label comments."""
    chunks: list[str] = []
    if header_comment:
        for line in header_comment.splitlines():
            chunks.append(f"# {line}\n")
        chunks.append("\n")
    for entry in sorted(entries, key=lambda e: e.fingerprint):
        cert = entry.certificate
        label = cert.subject.common_name or cert.subject.rfc4514()
        chunks.append(f"# {label}\n")
        chunks.append(encode_pem(cert.der))
        chunks.append("\n")
    return "".join(chunks)


def parse_pem_bundle(
    text: str, *, purposes: tuple[TrustPurpose, ...] = BUNDLE_PURPOSES
) -> list[TrustEntry]:
    """Parse a PEM bundle; every certificate is fully trusted for ``purposes``."""
    entries = [
        TrustEntry.make(
            Certificate.from_der(der),
            purposes={purpose: TrustLevel.TRUSTED for purpose in purposes},
        )
        for der in split_bundle(text)
    ]
    entries.sort(key=lambda e: e.fingerprint)
    return entries
