"""Directory-of-certificates stores (Debian/Ubuntu and Android).

Debian-family ``ca-certificates`` packages install one PEM file per
root under ``/usr/share/ca-certificates/mozilla/`` named after the
certificate label.  Android's ``system/ca-certificates`` repository
names files by the OpenSSL *old* subject-hash (``c18d2a74.0`` style).
Both are "file tree" artifacts: ``dict[path, bytes]``.

Like PEM bundles, these formats carry no trust context — the design
limitation at the center of Section 6.
"""

from __future__ import annotations

import hashlib
import re

from repro.encoding.pem import encode_pem, split_bundle
from repro.errors import FormatError
from repro.formats.diagnostics import DiagnosticLog, salvage
from repro.obs.instrument import instrumented_codec
from repro.store.entry import TrustEntry
from repro.store.purposes import BUNDLE_PURPOSES, TrustLevel, TrustPurpose
from repro.x509.certificate import Certificate


def debian_filename(cert: Certificate, used: set[str]) -> str:
    """Debian-style ``mozilla/<Label>.crt`` path, deduplicated."""
    base = cert.subject.common_name or cert.fingerprint_sha256[:16]
    base = re.sub(r"[^A-Za-z0-9._-]+", "_", base) or "root"
    name = f"mozilla/{base}.crt"
    counter = 1
    while name in used:
        counter += 1
        name = f"mozilla/{base}_{counter}.crt"
    used.add(name)
    return name


def android_filename(cert: Certificate, used: set[str]) -> str:
    """Android-style subject-hash path ``<hash8>.<n>``.

    OpenSSL's legacy ``-subject_hash_old`` is the first four bytes of
    MD5(subject DER), little-endian; we reproduce that exactly.
    """
    digest = hashlib.md5(cert.subject.encode()).digest()
    value = int.from_bytes(digest[:4], "little")
    counter = 0
    name = f"files/{value:08x}.{counter}"
    while name in used:
        counter += 1
        name = f"files/{value:08x}.{counter}"
    used.add(name)
    return name


def serialize_cert_dir(entries: list[TrustEntry], *, style: str = "debian") -> dict[str, bytes]:
    """Render a directory tree of one-PEM-per-root files."""
    if style == "debian":
        namer = debian_filename
    elif style == "android":
        namer = android_filename
    else:
        raise FormatError(f"unknown cert-dir style {style!r}")
    tree: dict[str, bytes] = {}
    used: set[str] = set()
    for entry in sorted(entries, key=lambda e: e.fingerprint):
        path = namer(entry.certificate, used)
        tree[path] = encode_pem(entry.certificate.der).encode("ascii")
    return tree


@instrumented_codec("cert-dir")
def parse_cert_dir(
    tree: dict[str, bytes],
    *,
    purposes: tuple[TrustPurpose, ...] = BUNDLE_PURPOSES,
    lenient: bool = False,
    diagnostics: DiagnosticLog | None = None,
) -> list[TrustEntry]:
    """Read every PEM file in the tree; all certs fully trusted for ``purposes``.

    In lenient mode, a file that fails to decode, holds no certificate,
    or holds unparseable DER is skipped (and recorded) while the rest of
    the directory is still collected.
    """
    entries: list[TrustEntry] = []
    for path in sorted(tree):
        with salvage(lenient, diagnostics, path):
            try:
                text = tree[path].decode("ascii")
            except UnicodeDecodeError:
                if not lenient:
                    raise
                if diagnostics is not None:
                    diagnostics.record(path, f"non-ASCII bytes in {path}; decoded with replacement")
                text = tree[path].decode("ascii", errors="replace")
            ders = split_bundle(
                text,
                lenient=lenient,
                on_error=lambda message, line_no, path=path: (
                    diagnostics.record(f"{path}:{line_no}", message)
                    if diagnostics is not None
                    else None
                ),
            )
            if not ders and not lenient:
                raise FormatError(f"no certificate in {path}")
            if not ders and diagnostics is not None:
                diagnostics.record(path, f"no certificate in {path}")
            for der in ders:
                with salvage(lenient, diagnostics, path):
                    entries.append(
                        TrustEntry.make(
                            Certificate.from_der(der),
                            purposes={purpose: TrustLevel.TRUSTED for purpose in purposes},
                        )
                    )
    entries.sort(key=lambda e: e.fingerprint)
    return entries
