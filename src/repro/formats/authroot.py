"""Microsoft ``authroot.stl`` reader/writer.

Windows Automatic Root Update ships a Certificate Trust List (CTL):
an ASN.1 structure listing trust anchors by SHA-1 hash, each with a
bag of Microsoft-specific attributes.  The full certificates are *not*
in the STL — Windows fetches them by hash from a separate URL.  We
model both halves:

- :func:`serialize_authroot` produces the STL DER plus a hash->DER
  certificate map (standing in for the download endpoint).
- :func:`parse_authroot` consumes both and reconstructs trust entries.

The CTL body follows the real layout (CertificateTrustList from
MS-CAESO): version, subjectUsage, sequenceNumber, thisUpdate,
subjectAlgorithm, entries.  Per-entry attributes use the documented
property OIDs: EKU restrictions (disallowed/allowed purposes), the
"disallowed filetime" (full distrust date) and "NotBefore filetime"
(partial distrust: leaves issued after the date are rejected), with
FILETIME values in genuine Windows 64-bit little-endian form.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone

from repro.asn1 import (
    decode as decode_der,
    encode_integer,
    encode_octet_string,
    encode_oid,
    encode_sequence,
    encode_set,
    encode_time,
)
from repro.asn1.oid import (
    EKU_CODE_SIGNING,
    EKU_EMAIL_PROTECTION,
    EKU_SERVER_AUTH,
    MS_DISALLOWED_EKU,
    MS_EKU_RESTRICTIONS,
    MS_NOTBEFORE_FILETIME,
    ObjectIdentifier,
)
from repro.errors import FormatError
from repro.formats.diagnostics import DiagnosticLog, salvage
from repro.obs.instrument import instrumented_codec
from repro.store.entry import TrustEntry
from repro.store.purposes import TrustLevel, TrustPurpose
from repro.x509.certificate import Certificate

_EPOCH_1601 = datetime(1601, 1, 1, tzinfo=timezone.utc)

#: EKU OID <-> purpose for the restriction attribute.
_EKU_PURPOSES: dict[ObjectIdentifier, TrustPurpose] = {
    EKU_SERVER_AUTH: TrustPurpose.SERVER_AUTH,
    EKU_EMAIL_PROTECTION: TrustPurpose.EMAIL_PROTECTION,
    EKU_CODE_SIGNING: TrustPurpose.CODE_SIGNING,
}
_PURPOSE_EKUS = {purpose: oid for oid, purpose in _EKU_PURPOSES.items()}


def encode_filetime(moment: datetime) -> bytes:
    """Encode a Windows FILETIME: 100ns intervals since 1601, little-endian."""
    delta = moment.astimezone(timezone.utc) - _EPOCH_1601
    intervals = int(delta.total_seconds() * 10_000_000)
    return intervals.to_bytes(8, "little")


def decode_filetime(data: bytes) -> datetime:
    """Decode a Windows FILETIME blob."""
    if len(data) != 8:
        raise FormatError(f"FILETIME must be 8 bytes, got {len(data)}")
    intervals = int.from_bytes(data, "little")
    return _EPOCH_1601 + timedelta(microseconds=intervals // 10)


@dataclass(frozen=True)
class AuthrootArtifact:
    """The two halves of a Microsoft root update."""

    stl_der: bytes
    certificates: dict[str, bytes]  # sha1 hex -> certificate DER


def serialize_authroot(
    entries: list[TrustEntry],
    *,
    sequence_number: int,
    this_update: datetime,
) -> AuthrootArtifact:
    """Render entries as an STL + certificate download map."""
    ctl_entries = []
    certificates: dict[str, bytes] = {}
    for entry in sorted(entries, key=lambda e: e.fingerprint):
        der = entry.certificate.der
        sha1 = hashlib.sha1(der).digest()
        certificates[sha1.hex()] = der
        ctl_entries.append(
            encode_sequence(
                encode_octet_string(sha1),
                encode_set(*_entry_attributes(entry)),
            )
        )

    stl = encode_sequence(
        encode_integer(1),  # version
        encode_sequence(encode_oid("1.3.6.1.4.1.311.10.1")),  # subjectUsage: CTL
        encode_integer(sequence_number),
        encode_time(this_update),
        encode_sequence(encode_oid("1.3.14.3.2.26")),  # subjectAlgorithm: SHA-1
        encode_sequence(*ctl_entries),
    )
    return AuthrootArtifact(stl_der=stl, certificates=certificates)


def _entry_attributes(entry: TrustEntry) -> list[bytes]:
    """The attribute SET for one CTL entry."""
    attributes = []

    # EKU restriction attribute: the purposes this root is trusted for.
    trusted_ekus = [
        _PURPOSE_EKUS[purpose]
        for purpose, level in entry.trust
        if level is TrustLevel.TRUSTED and purpose in _PURPOSE_EKUS
    ]
    attributes.append(
        encode_sequence(
            encode_oid(MS_EKU_RESTRICTIONS),
            encode_set(
                encode_octet_string(
                    encode_sequence(*(encode_oid(oid) for oid in sorted(trusted_ekus)))
                )
            ),
        )
    )

    # Full distrust per purpose: the disallowed-EKU attribute.
    disallowed_ekus = [
        _PURPOSE_EKUS[purpose]
        for purpose, level in entry.trust
        if level is TrustLevel.DISTRUSTED and purpose in _PURPOSE_EKUS
    ]
    if disallowed_ekus:
        attributes.append(
            encode_sequence(
                encode_oid(MS_DISALLOWED_EKU),
                encode_set(
                    encode_octet_string(
                        encode_sequence(*(encode_oid(oid) for oid in sorted(disallowed_ekus)))
                    )
                ),
            )
        )

    # Partial distrust: leaves issued after this date are rejected.
    if entry.distrust_after is not None:
        attributes.append(
            encode_sequence(
                encode_oid(MS_NOTBEFORE_FILETIME),
                encode_set(encode_octet_string(encode_filetime(entry.distrust_after))),
            )
        )
    return attributes


@instrumented_codec("authroot")
def parse_authroot(
    artifact: AuthrootArtifact,
    *,
    lenient: bool = False,
    diagnostics: DiagnosticLog | None = None,
) -> list[TrustEntry]:
    """Reconstruct trust entries from an STL + certificate map.

    The outer STL structure must decode even in lenient mode (there is
    no way to resynchronize inside damaged DER), but an individually
    broken trusted-subject entry — unfetchable certificate, hash
    mismatch, bad DER, malformed attributes — is skipped and recorded
    rather than failing the whole update.
    """
    reader = decode_der(artifact.stl_der).reader()
    version = reader.next("version").as_integer()
    if version != 1:
        raise FormatError(f"unsupported CTL version {version}")
    reader.next("subjectUsage")
    reader.next("sequenceNumber").as_integer()
    reader.next("thisUpdate").as_time()
    reader.next("subjectAlgorithm")
    entries_seq = reader.next("trustedSubjects")
    reader.finish()

    entries: list[TrustEntry] = []
    for number, ctl_entry in enumerate(entries_seq.children()):
        with salvage(lenient, diagnostics, f"authroot subject #{number}"):
            entry_reader = ctl_entry.reader()
            sha1 = entry_reader.next("subjectIdentifier").as_octet_string()
            attr_set = entry_reader.next("attributes")
            entry_reader.finish()

            der = artifact.certificates.get(sha1.hex())
            if der is None:
                raise FormatError(f"STL references undownloadable certificate {sha1.hex()}")
            if hashlib.sha1(der).digest() != sha1:
                raise FormatError(f"certificate map hash mismatch for {sha1.hex()}")
            cert = Certificate.from_der(der)

            trust: dict[TrustPurpose, TrustLevel] = {}
            distrust_after: datetime | None = None
            for attribute in attr_set.children():
                attr_reader = attribute.reader()
                attr_oid = attr_reader.next("attribute oid").as_oid()
                values = attr_reader.next("attribute values")
                attr_reader.finish()
                value = values.children()[0].as_octet_string()
                if attr_oid == MS_EKU_RESTRICTIONS:
                    for eku in decode_der(value).children():
                        purpose = _EKU_PURPOSES.get(eku.as_oid())
                        if purpose is not None:
                            trust[purpose] = TrustLevel.TRUSTED
                elif attr_oid == MS_DISALLOWED_EKU:
                    for eku in decode_der(value).children():
                        purpose = _EKU_PURPOSES.get(eku.as_oid())
                        if purpose is not None:
                            trust[purpose] = TrustLevel.DISTRUSTED
                elif attr_oid == MS_NOTBEFORE_FILETIME:
                    distrust_after = decode_filetime(value)
            entries.append(
                TrustEntry(
                    certificate=cert, trust=tuple(trust.items()), distrust_after=distrust_after
                )
            )
    entries.sort(key=lambda e: e.fingerprint)
    return entries
