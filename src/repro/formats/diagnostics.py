"""Per-entry diagnostics for the codecs' lenient parse mode.

Every format codec accepts ``lenient=False, diagnostics=None`` keyword
arguments.  In strict mode (the default) a malformed entry aborts the
whole parse, exactly as before.  In lenient mode individually broken
entries are *skipped* and a :class:`ParseDiagnostic` is recorded for
each one, so the caller can salvage the healthy majority of a damaged
artifact while still accounting for every drop — the graceful
degradation the collection pipeline's quarantine report builds on.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ReproError

#: Exception types a lenient parse may swallow for one entry.  Anything
#: else (programming errors, keyboard interrupts) always propagates.
SALVAGEABLE = (ReproError, UnicodeDecodeError, ValueError)


@dataclass(frozen=True)
class ParseDiagnostic:
    """One skipped entry: where it was, what was wrong."""

    source: str
    message: str
    error_class: str

    def as_dict(self) -> dict[str, str]:
        return {"source": self.source, "message": self.message, "error_class": self.error_class}


@dataclass
class DiagnosticLog:
    """Accumulates the diagnostics of one lenient parse."""

    diagnostics: list[ParseDiagnostic] = field(default_factory=list)

    def record(self, source: str, problem: BaseException | str) -> None:
        if isinstance(problem, BaseException):
            message = str(problem) or problem.__class__.__name__
            error_class = problem.__class__.__name__
        else:
            message = problem
            error_class = "ParseDiagnostic"
        self.diagnostics.append(
            ParseDiagnostic(source=source, message=message, error_class=error_class)
        )

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[ParseDiagnostic]:
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def as_dicts(self) -> list[dict[str, str]]:
        return [d.as_dict() for d in self.diagnostics]


@contextmanager
def salvage(lenient: bool, log: DiagnosticLog | None, source: str):
    """Skip-and-record one entry's errors when ``lenient``, else re-raise."""
    try:
        yield
    except SALVAGEABLE as exc:
        if not lenient:
            raise
        if log is not None:
            log.record(source, exc)
