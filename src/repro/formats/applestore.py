"""Apple root store directory reader/writer.

Apple publishes its trust anchors in the open-source ``Security``
project as a ``certificates/roots`` directory of DER files.  Trust
context (usage restrictions, the ``valid.apple.com`` revocation feed)
lives outside the certificate files; we model it as a sidecar
``TrustSettings.plist`` — a minimal, real plist-XML document mapping
SHA-256 fingerprints to usage strings and a ``revoked`` flag.

The artifact is a file tree: ``roots/<CN-ish name>.cer`` plus the
optional plist.  :func:`parse_apple_store` reads both back.
"""

from __future__ import annotations

import re
from xml.etree import ElementTree

from repro.errors import FormatError
from repro.formats.diagnostics import SALVAGEABLE, DiagnosticLog, salvage
from repro.obs.instrument import instrumented_codec
from repro.store.entry import TrustEntry
from repro.store.purposes import TrustLevel, TrustPurpose
from repro.x509.certificate import Certificate

_USAGE_STRINGS: dict[TrustPurpose, str] = {
    TrustPurpose.SERVER_AUTH: "kSecTrustSettingsPolicySSL",
    TrustPurpose.EMAIL_PROTECTION: "kSecTrustSettingsPolicySMIME",
    TrustPurpose.CODE_SIGNING: "kSecTrustSettingsPolicyCodeSigning",
}
_STRING_USAGES = {s: p for p, s in _USAGE_STRINGS.items()}

PLIST_PATH = "TrustSettings.plist"


def _safe_filename(cert: Certificate, used: set[str]) -> str:
    base = cert.subject.common_name or cert.fingerprint_sha256[:16]
    base = re.sub(r"[^A-Za-z0-9._-]+", "_", base) or "root"
    name = f"roots/{base}.cer"
    counter = 1
    while name in used:
        counter += 1
        name = f"roots/{base}-{counter}.cer"
    used.add(name)
    return name


def serialize_apple_store(entries: list[TrustEntry]) -> dict[str, bytes]:
    """Render entries as the Apple open-source file tree.

    By default Apple ships *no* per-root usage restrictions (the paper
    notes "specific usage restrictions are not provided by default"),
    so the plist only records entries that deviate: purpose-restricted
    roots and roots revoked via the ``valid.apple.com`` channel
    (modelled as a DISTRUSTED level for every purpose).
    """
    tree: dict[str, bytes] = {}
    used: set[str] = set()
    plist_entries: list[tuple[str, list[str], bool]] = []
    for entry in sorted(entries, key=lambda e: e.fingerprint):
        tree[_safe_filename(entry.certificate, used)] = entry.certificate.der
        trusted = [p for p, lv in entry.trust if lv is TrustLevel.TRUSTED]
        distrusted = [p for p, lv in entry.trust if lv is TrustLevel.DISTRUSTED]
        revoked = bool(distrusted) and not trusted
        default_trust = set(trusted) == set(_USAGE_STRINGS) and not distrusted
        if not default_trust:
            usages = [_USAGE_STRINGS[p] for p in trusted if p in _USAGE_STRINGS]
            plist_entries.append((entry.fingerprint, usages, revoked))
    if plist_entries:
        tree[PLIST_PATH] = _render_plist(plist_entries)
    return tree


def _render_plist(rows: list[tuple[str, list[str], bool]]) -> bytes:
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<!DOCTYPE plist PUBLIC "-//Apple//DTD PLIST 1.0//EN"'
        ' "http://www.apple.com/DTDs/PropertyList-1.0.dtd">',
        '<plist version="1.0">',
        "<dict>",
    ]
    for fingerprint, usages, revoked in rows:
        lines.append(f"  <key>{fingerprint}</key>")
        lines.append("  <dict>")
        lines.append("    <key>trustSettings</key>")
        lines.append("    <array>")
        for usage in usages:
            lines.append(f"      <string>{usage}</string>")
        lines.append("    </array>")
        lines.append("    <key>revoked</key>")
        lines.append(f"    <{'true' if revoked else 'false'}/>")
        lines.append("  </dict>")
    lines.append("</dict>")
    lines.append("</plist>")
    return "\n".join(lines).encode("utf-8")


@instrumented_codec("apple-store")
def parse_apple_store(
    tree: dict[str, bytes],
    *,
    lenient: bool = False,
    diagnostics: DiagnosticLog | None = None,
) -> list[TrustEntry]:
    """Read an Apple root directory tree back into trust entries.

    Roots without a plist entry get Apple's default: trusted for all
    purposes (the multi-purpose behaviour Section 5.2 critiques).

    In lenient mode a broken ``TrustSettings.plist`` degrades to the
    default-trust behaviour (recorded) and an unparseable ``.cer`` file
    is skipped while the rest of the directory is still collected.
    """
    settings: dict[str, tuple[list[str], bool]] = {}
    if PLIST_PATH in tree:
        try:
            settings = _parse_plist(tree[PLIST_PATH])
        except SALVAGEABLE as exc:
            if not lenient:
                raise
            if diagnostics is not None:
                diagnostics.record(PLIST_PATH, exc)
    entries: list[TrustEntry] = []
    for path, data in sorted(tree.items()):
        if not path.endswith(".cer"):
            continue
        with salvage(lenient, diagnostics, path):
            cert = Certificate.from_der(data)
            setting = settings.get(cert.fingerprint_sha256)
            if setting is None:
                trust = {p: TrustLevel.TRUSTED for p in _USAGE_STRINGS}
            else:
                usages, revoked = setting
                if revoked:
                    trust = {p: TrustLevel.DISTRUSTED for p in _USAGE_STRINGS}
                else:
                    trust = {}
                    for usage in usages:
                        purpose = _STRING_USAGES.get(usage)
                        if purpose is None:
                            raise FormatError(f"unknown trust setting {usage!r} in {PLIST_PATH}")
                        trust[purpose] = TrustLevel.TRUSTED
            entries.append(TrustEntry.make(cert, purposes=trust))
    entries.sort(key=lambda e: e.fingerprint)
    return entries


def _parse_plist(data: bytes) -> dict[str, tuple[list[str], bool]]:
    try:
        root = ElementTree.fromstring(data.decode("utf-8"))
    except ElementTree.ParseError as exc:
        raise FormatError(f"malformed TrustSettings.plist: {exc}") from exc
    if root.tag != "plist" or len(root) != 1 or root[0].tag != "dict":
        raise FormatError("unexpected plist structure")
    result: dict[str, tuple[list[str], bool]] = {}
    top = list(root[0])
    for key_el, dict_el in zip(top[0::2], top[1::2]):
        if key_el.tag != "key" or dict_el.tag != "dict":
            raise FormatError("unexpected plist entry structure")
        fingerprint = key_el.text or ""
        usages: list[str] = []
        revoked = False
        inner = list(dict_el)
        for inner_key, inner_value in zip(inner[0::2], inner[1::2]):
            if inner_key.text == "trustSettings":
                usages = [el.text or "" for el in inner_value]
            elif inner_key.text == "revoked":
                revoked = inner_value.tag == "true"
        result[fingerprint] = (usages, revoked)
    return result
