"""Java KeyStore (JKS) reader/writer — the real binary format.

OpenJDK's ``cacerts`` file is a JKS keystore containing only
trusted-certificate entries.  The on-disk layout:

.. code-block:: text

    u4  magic          0xFEEDFEED
    u4  version        2
    u4  entry count
    per entry:
        u4  tag        1 = private key, 2 = trusted certificate
        UTF alias      (Java modified-UTF8, u2 length prefix)
        u8  creation   milliseconds since the Unix epoch
        UTF cert type  "X.509"
        u4  cert length
        ..  cert DER
    20B SHA-1 digest over password-bytes || "Mighty Aphrodite" || all of
        the above

The integrity digest keys on the store password encoded as UTF-16BE;
``keytool``'s default password is ``changeit``.  We implement exactly
that scheme so output is byte-compatible with real JKS tooling.
"""

from __future__ import annotations

import hashlib
import struct
from datetime import datetime, timezone

from repro.errors import FormatError
from repro.formats.diagnostics import SALVAGEABLE, DiagnosticLog
from repro.obs.instrument import instrumented_codec
from repro.store.entry import TrustEntry
from repro.store.purposes import TrustLevel, TrustPurpose
from repro.x509.certificate import Certificate

_MAGIC = 0xFEEDFEED
_VERSION = 2
_TRUSTED_CERT_TAG = 2
_SALT = b"Mighty Aphrodite"
DEFAULT_PASSWORD = "changeit"


def _password_bytes(password: str) -> bytes:
    """JKS hashes the password as UTF-16BE code units."""
    return password.encode("utf-16-be")


def _write_utf(text: str) -> bytes:
    """Java DataOutput.writeUTF: u2 length + modified UTF-8 (ASCII here)."""
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise FormatError("JKS UTF string too long")
    return struct.pack(">H", len(data)) + data


def serialize_jks(
    entries: list[TrustEntry],
    *,
    password: str = DEFAULT_PASSWORD,
    creation_time: datetime | None = None,
) -> bytes:
    """Render trust entries as a JKS ``cacerts`` keystore.

    JKS has no trust-context vocabulary — inclusion *is* trust — so only
    the certificates are stored; aliases follow keytool's
    ``<label> [jdk]`` convention.
    """
    moment = creation_time or datetime(2000, 1, 1, tzinfo=timezone.utc)
    millis = int(moment.timestamp() * 1000)

    body = bytearray()
    body += struct.pack(">III", _MAGIC, _VERSION, len(entries))
    for index, entry in enumerate(sorted(entries, key=lambda e: e.fingerprint)):
        cert = entry.certificate
        label = (cert.subject.common_name or f"root{index}").lower().replace(" ", "")
        alias = f"{label} [jdk]"
        body += struct.pack(">I", _TRUSTED_CERT_TAG)
        body += _write_utf(alias)
        body += struct.pack(">Q", millis)
        body += _write_utf("X.509")
        body += struct.pack(">I", len(cert.der))
        body += cert.der
    digest = hashlib.sha1(_password_bytes(password) + _SALT + bytes(body)).digest()
    return bytes(body) + digest


@instrumented_codec("jks")
def parse_jks(
    data: bytes,
    *,
    password: str = DEFAULT_PASSWORD,
    lenient: bool = False,
    diagnostics: DiagnosticLog | None = None,
) -> list[TrustEntry]:
    """Parse a JKS keystore; verifies the integrity digest.

    Every certificate becomes a trust entry trusted for the three
    purposes the Java root program vouches for (TLS server auth, email
    signing, code signing) because JKS cannot say anything finer.

    In lenient mode a digest mismatch is recorded rather than fatal, an
    entry with unparseable DER is skipped, and a truncated store yields
    the entries salvaged before the damage.
    """

    def record(source: str, problem) -> None:
        if diagnostics is not None:
            diagnostics.record(source, problem)

    if len(data) < 32:
        if not lenient:
            raise FormatError("JKS file too short")
        record("jks", "JKS file too short")
        return []
    body, digest = data[:-20], data[-20:]
    expected = hashlib.sha1(_password_bytes(password) + _SALT + body).digest()
    if digest != expected:
        if not lenient:
            raise FormatError("JKS integrity digest mismatch (wrong password or corrupt file)")
        record("jks", "JKS integrity digest mismatch (wrong password or corrupt file)")

    offset = 0

    def read(fmt: str):
        nonlocal offset
        size = struct.calcsize(fmt)
        if offset + size > len(body):
            raise FormatError("truncated JKS structure")
        values = struct.unpack_from(fmt, body, offset)
        offset += size
        return values if len(values) > 1 else values[0]

    def read_utf() -> str:
        nonlocal offset
        length = read(">H")
        if offset + length > len(body):
            raise FormatError("truncated JKS UTF string")
        text = body[offset : offset + length].decode("utf-8")
        offset += length
        return text

    try:
        magic, version, count = read(">III")
        if magic != _MAGIC:
            raise FormatError(f"bad JKS magic 0x{magic:08X}")
        if version != _VERSION:
            raise FormatError(f"unsupported JKS version {version}")
    except FormatError as exc:
        if not lenient:
            raise
        record("jks header", exc)
        return []

    entries: list[TrustEntry] = []
    for number in range(count):
        try:
            tag = read(">I")
            if tag != _TRUSTED_CERT_TAG:
                # Unknown entry layout: nothing after this point can be
                # located reliably, so lenient mode keeps what it has.
                raise FormatError(f"unsupported JKS entry tag {tag} (only trusted certs)")
            read_utf()  # alias
            read(">Q")  # creation time
            cert_type = read_utf()
            if cert_type != "X.509":
                raise FormatError(f"unsupported JKS certificate type {cert_type!r}")
            length = read(">I")
            if offset + length > len(body):
                raise FormatError("truncated JKS certificate")
            der = body[offset : offset + length]
            offset += length
        except FormatError as exc:
            if not lenient:
                raise
            record(f"jks entry #{number}", exc)
            break
        try:
            cert = Certificate.from_der(der)
        except SALVAGEABLE as exc:
            if not lenient:
                raise
            record(f"jks entry #{number}", exc)
            continue
        entries.append(
            TrustEntry.make(
                cert,
                purposes={
                    TrustPurpose.SERVER_AUTH: TrustLevel.TRUSTED,
                    TrustPurpose.EMAIL_PROTECTION: TrustLevel.TRUSTED,
                    TrustPurpose.CODE_SIGNING: TrustLevel.TRUSTED,
                },
            )
        )
    if offset != len(body):
        if not lenient:
            raise FormatError(f"{len(body) - offset} trailing bytes in JKS body")
        record("jks", f"{len(body) - offset} trailing bytes in JKS body")
    entries.sort(key=lambda e: e.fingerprint)
    return entries
