"""NSS ``certdata.txt`` reader/writer (PKCS#11 object text format).

``certdata.txt`` is a line-oriented serialization of PKCS#11 objects.
Two object classes matter for root stores:

- ``CKO_CERTIFICATE`` objects carry the raw DER (``CKA_VALUE``) plus
  extracted fields (label, issuer, serial).
- ``CKO_NSS_TRUST`` objects carry the trust context: per-purpose trust
  levels (``CKA_TRUST_SERVER_AUTH`` et al.), identified by SHA-1/MD5
  hashes and issuer+serial, and — since NSS 3.53 — the partial-distrust
  attribute ``CKA_NSS_SERVER_DISTRUST_AFTER``.

This module implements a faithful subset of the grammar used by the
real file: typed attribute lines, ``MULTILINE_OCTAL`` blobs, comments,
and the trust constant vocabulary.  Output parses back byte-identically
(modulo the free-text header comment).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from datetime import datetime, timezone

from repro.errors import FormatError
from repro.formats.diagnostics import DiagnosticLog, salvage
from repro.obs.instrument import instrumented_codec
from repro.store.entry import TrustEntry
from repro.store.purposes import TrustLevel, TrustPurpose
from repro.x509.certificate import Certificate

#: CKA_TRUST_* attribute name per purpose.
_PURPOSE_ATTRS: dict[TrustPurpose, str] = {
    TrustPurpose.SERVER_AUTH: "CKA_TRUST_SERVER_AUTH",
    TrustPurpose.CLIENT_AUTH: "CKA_TRUST_CLIENT_AUTH",
    TrustPurpose.EMAIL_PROTECTION: "CKA_TRUST_EMAIL_PROTECTION",
    TrustPurpose.CODE_SIGNING: "CKA_TRUST_CODE_SIGNING",
}
_ATTR_PURPOSES = {attr: purpose for purpose, attr in _PURPOSE_ATTRS.items()}

_LEVEL_CONSTANTS: dict[TrustLevel, str] = {
    TrustLevel.TRUSTED: "CKT_NSS_TRUSTED_DELEGATOR",
    TrustLevel.MUST_VERIFY: "CKT_NSS_MUST_VERIFY_TRUST",
    TrustLevel.DISTRUSTED: "CKT_NSS_NOT_TRUSTED",
}
_CONSTANT_LEVELS = {constant: level for level, constant in _LEVEL_CONSTANTS.items()}

_HEADER = """\
#
# Certificate "trust anchors" database --- synthesized by repro.formats.certdata
#
# This file follows the layout of Mozilla NSS certdata.txt: a list of
# PKCS#11 objects, each a block of attribute lines terminated by a blank
# line.  CKO_CERTIFICATE objects carry certificate DER; CKO_NSS_TRUST
# objects carry the trust context.
#
BEGINDATA
"""


def _octal_multiline(data: bytes, per_line: int = 16) -> str:
    """Render bytes in certdata's backslash-octal MULTILINE_OCTAL form."""
    lines = []
    for start in range(0, len(data), per_line):
        chunk = data[start : start + per_line]
        lines.append("".join(f"\\{byte:03o}" for byte in chunk))
    return "\n".join(lines)


def _parse_octal(lines: list[str]) -> bytes:
    """Parse backslash-octal lines back into bytes."""
    out = bytearray()
    for line in lines:
        parts = line.strip().split("\\")
        for part in parts:
            if not part:
                continue
            try:
                out.append(int(part, 8))
            except ValueError as exc:
                raise FormatError(f"bad octal escape {part!r} in certdata") from exc
    return bytes(out)


def _distrust_timestamp(moment: datetime) -> bytes:
    """NSS encodes distrust-after as an ASCII "YYMMDDHHMMSSZ" blob."""
    return moment.astimezone(timezone.utc).strftime("%y%m%d%H%M%SZ").encode("ascii")


def _parse_distrust_timestamp(blob: bytes) -> datetime:
    text = blob.decode("ascii")
    parsed = datetime.strptime(text, "%y%m%d%H%M%SZ")
    if parsed.year >= 2050:
        parsed = parsed.replace(year=parsed.year - 100)
    return parsed.replace(tzinfo=timezone.utc)


def serialize_certdata(entries: list[TrustEntry]) -> str:
    """Render trust entries as a complete ``certdata.txt`` document."""
    chunks = [_HEADER]
    for entry in sorted(entries, key=lambda e: e.fingerprint):
        cert = entry.certificate
        label = cert.subject.common_name or cert.subject.rfc4514()
        issuer_der = cert.issuer.encode()
        serial_der = _serial_der(cert)

        chunks.append("# Certificate object\n")
        chunks.append("CKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\n")
        chunks.append("CKA_TOKEN CK_BBOOL CK_TRUE\n")
        chunks.append("CKA_PRIVATE CK_BBOOL CK_FALSE\n")
        chunks.append("CKA_MODIFIABLE CK_BBOOL CK_FALSE\n")
        chunks.append(f'CKA_LABEL UTF8 "{label}"\n')
        chunks.append("CKA_CERTIFICATE_TYPE CK_CERTIFICATE_TYPE CKC_X_509\n")
        chunks.append(_blob("CKA_SUBJECT", cert.subject.encode()))
        chunks.append(_blob("CKA_ID", b"0"))
        chunks.append(_blob("CKA_ISSUER", issuer_der))
        chunks.append(_blob("CKA_SERIAL_NUMBER", serial_der))
        chunks.append(_blob("CKA_VALUE", cert.der))
        chunks.append("\n")

        chunks.append("# Trust object\n")
        chunks.append("CKA_CLASS CK_OBJECT_CLASS CKO_NSS_TRUST\n")
        chunks.append("CKA_TOKEN CK_BBOOL CK_TRUE\n")
        chunks.append("CKA_PRIVATE CK_BBOOL CK_FALSE\n")
        chunks.append("CKA_MODIFIABLE CK_BBOOL CK_FALSE\n")
        chunks.append(f'CKA_LABEL UTF8 "{label}"\n')
        chunks.append(_blob("CKA_CERT_SHA1_HASH", hashlib.sha1(cert.der).digest()))
        chunks.append(_blob("CKA_CERT_MD5_HASH", hashlib.md5(cert.der).digest()))
        chunks.append(_blob("CKA_ISSUER", issuer_der))
        chunks.append(_blob("CKA_SERIAL_NUMBER", serial_der))
        if entry.distrust_after is not None:
            chunks.append(
                _blob("CKA_NSS_SERVER_DISTRUST_AFTER", _distrust_timestamp(entry.distrust_after))
            )
        else:
            chunks.append("CKA_NSS_SERVER_DISTRUST_AFTER CK_BBOOL CK_FALSE\n")
        trust_map = entry.trust_map
        for purpose, attr in _PURPOSE_ATTRS.items():
            level = trust_map.get(purpose)
            constant = _LEVEL_CONSTANTS[level] if level else "CKT_NSS_MUST_VERIFY_TRUST"
            chunks.append(f"{attr} CK_TRUST {constant}\n")
        chunks.append("CKA_TRUST_STEP_UP_APPROVED CK_BBOOL CK_FALSE\n")
        chunks.append("\n")
    return "".join(chunks)


def _serial_der(cert: Certificate) -> bytes:
    from repro.asn1 import encode_integer

    return encode_integer(cert.serial_number)


def _blob(attr: str, data: bytes) -> str:
    return f"{attr} MULTILINE_OCTAL\n{_octal_multiline(data)}\nEND\n"


@dataclass
class _RawObject:
    """One parsed PKCS#11 object: attribute name -> (type, value)."""

    attributes: dict[str, tuple[str, object]] = field(default_factory=dict)

    @property
    def object_class(self) -> str | None:
        entry = self.attributes.get("CKA_CLASS")
        return str(entry[1]) if entry else None

    def blob(self, attr: str) -> bytes | None:
        entry = self.attributes.get(attr)
        if entry and entry[0] == "MULTILINE_OCTAL":
            assert isinstance(entry[1], bytes)
            return entry[1]
        return None

    def text(self, attr: str) -> str | None:
        entry = self.attributes.get(attr)
        if entry and entry[0] == "UTF8":
            return str(entry[1])
        return None


def _parse_objects(
    text: str,
    *,
    lenient: bool = False,
    log: DiagnosticLog | None = None,
) -> list[_RawObject]:
    """Tokenize certdata text into raw PKCS#11 objects.

    In lenient mode, malformed attribute lines and bad octal blobs are
    dropped (the enclosing object keeps its healthy attributes) and an
    unterminated MULTILINE_OCTAL ends tokenization with whatever was
    assembled so far.
    """
    objects: list[_RawObject] = []
    current: _RawObject | None = None
    lines = text.splitlines()
    index = 0
    began = False
    while index < len(lines):
        line = lines[index].rstrip()
        index += 1
        if not line or line.startswith("#"):
            if not line and current is not None and current.attributes:
                objects.append(current)
                current = None
            continue
        if line == "BEGINDATA":
            began = True
            continue
        if not began:
            continue
        parts = line.split(None, 2)
        if len(parts) < 2:
            if not lenient:
                raise FormatError(f"malformed certdata line: {line!r}")
            if log is not None:
                log.record(f"certdata line {index}", f"malformed certdata line: {line!r}")
            continue
        attr, attr_type = parts[0], parts[1]
        if current is None:
            current = _RawObject()
        if attr_type == "MULTILINE_OCTAL":
            blob_lines: list[str] = []
            while index < len(lines) and lines[index].strip() != "END":
                blob_lines.append(lines[index])
                index += 1
            if index >= len(lines):
                if not lenient:
                    raise FormatError(f"unterminated MULTILINE_OCTAL for {attr}")
                if log is not None:
                    log.record(f"certdata {attr}", f"unterminated MULTILINE_OCTAL for {attr}")
                break
            index += 1  # consume END
            try:
                current.attributes[attr] = ("MULTILINE_OCTAL", _parse_octal(blob_lines))
            except FormatError as exc:
                if not lenient:
                    raise
                if log is not None:
                    log.record(f"certdata {attr}", exc)
        elif attr_type == "UTF8":
            value = parts[2] if len(parts) > 2 else '""'
            current.attributes[attr] = ("UTF8", value.strip('"'))
        else:
            value = parts[2] if len(parts) > 2 else ""
            current.attributes[attr] = (attr_type, value)
    if current is not None and current.attributes:
        objects.append(current)
    return objects


@instrumented_codec("certdata")
def parse_certdata(
    text: str,
    *,
    lenient: bool = False,
    diagnostics: DiagnosticLog | None = None,
) -> list[TrustEntry]:
    """Parse a ``certdata.txt`` document into trust entries.

    Certificates and trust objects are joined on the SHA-1 hash (the
    same join NSS itself performs).  A certificate without a trust
    object is ignored; a trust object without a certificate is an error
    because this library always emits both.

    In lenient mode an individually malformed object (bad DER, missing
    hash, unknown trust constant, broken distrust timestamp) is skipped
    and recorded instead of failing the document.
    """
    certificates: dict[bytes, Certificate] = {}
    trust_objects: list[_RawObject] = []
    for number, obj in enumerate(_parse_objects(text, lenient=lenient, log=diagnostics)):
        cls = obj.object_class
        if cls == "CKO_CERTIFICATE":
            with salvage(lenient, diagnostics, f"certdata certificate object #{number}"):
                der = obj.blob("CKA_VALUE")
                if der is None:
                    raise FormatError("certificate object without CKA_VALUE")
                cert = Certificate.from_der(der)
                certificates[hashlib.sha1(der).digest()] = cert
        elif cls == "CKO_NSS_TRUST":
            trust_objects.append(obj)

    entries: list[TrustEntry] = []
    for number, obj in enumerate(trust_objects):
        with salvage(lenient, diagnostics, f"certdata trust object #{number}"):
            sha1 = obj.blob("CKA_CERT_SHA1_HASH")
            if sha1 is None:
                raise FormatError("trust object without CKA_CERT_SHA1_HASH")
            cert = certificates.get(sha1)
            if cert is None:
                raise FormatError(
                    f"trust object references unknown certificate sha1={sha1.hex()}"
                )
            trust: dict[TrustPurpose, TrustLevel] = {}
            for attr, purpose in _ATTR_PURPOSES.items():
                entry = obj.attributes.get(attr)
                if entry is None:
                    continue
                constant = str(entry[1])
                level = _CONSTANT_LEVELS.get(constant)
                if level is None:
                    raise FormatError(f"unknown trust constant {constant!r} for {attr}")
                if level is not TrustLevel.MUST_VERIFY:
                    trust[purpose] = level
            distrust_after = None
            blob = obj.blob("CKA_NSS_SERVER_DISTRUST_AFTER")
            if blob is not None:
                distrust_after = _parse_distrust_timestamp(blob)
            entries.append(
                TrustEntry(
                    certificate=cert,
                    trust=tuple(trust.items()),
                    distrust_after=distrust_after,
                )
            )
    entries.sort(key=lambda e: e.fingerprint)
    return entries
