"""ASN.1 tag constants and tag arithmetic.

DER identifiers octets encode three things: a *class* (universal,
application, context-specific, private), a *constructed* bit, and a tag
*number*.  This module exposes the universal tag numbers used by X.509
and helpers to compose/decompose identifier octets.  Tag numbers above
30 (high-tag-number form) are supported for completeness even though
X.509 never uses them.
"""

from __future__ import annotations

from enum import IntEnum

# Tag class bits (bits 8-7 of the identifier octet).
CLASS_UNIVERSAL = 0x00
CLASS_APPLICATION = 0x40
CLASS_CONTEXT = 0x80
CLASS_PRIVATE = 0xC0

CLASS_MASK = 0xC0
CONSTRUCTED = 0x20
TAG_NUMBER_MASK = 0x1F
HIGH_TAG = 0x1F


class UniversalTag(IntEnum):
    """Universal class tag numbers relevant to X.509 and PKCS structures."""

    BOOLEAN = 0x01
    INTEGER = 0x02
    BIT_STRING = 0x03
    OCTET_STRING = 0x04
    NULL = 0x05
    OBJECT_IDENTIFIER = 0x06
    ENUMERATED = 0x0A
    UTF8_STRING = 0x0C
    SEQUENCE = 0x10
    SET = 0x11
    NUMERIC_STRING = 0x12
    PRINTABLE_STRING = 0x13
    T61_STRING = 0x14
    IA5_STRING = 0x16
    UTC_TIME = 0x17
    GENERALIZED_TIME = 0x18
    VISIBLE_STRING = 0x1A
    UNIVERSAL_STRING = 0x1C
    BMP_STRING = 0x1E


#: Identifier octets for the constructed universal types (as seen on the wire).
SEQUENCE_TAG = UniversalTag.SEQUENCE | CONSTRUCTED  # 0x30
SET_TAG = UniversalTag.SET | CONSTRUCTED  # 0x31

#: String-ish universal tags that carry directory-name text.
STRING_TAGS = frozenset(
    {
        UniversalTag.UTF8_STRING,
        UniversalTag.NUMERIC_STRING,
        UniversalTag.PRINTABLE_STRING,
        UniversalTag.T61_STRING,
        UniversalTag.IA5_STRING,
        UniversalTag.VISIBLE_STRING,
        UniversalTag.UNIVERSAL_STRING,
        UniversalTag.BMP_STRING,
    }
)


def context_tag(number: int, constructed: bool = True) -> int:
    """Return the identifier octet for a context-specific tag ``[number]``.

    X.509 uses context tags for TBSCertificate version ``[0]``, issuer/subject
    unique ids ``[1]``/``[2]``, extensions ``[3]``, and within GeneralName.
    Only low-tag-number form (``number < 31``) is representable in one octet.
    """
    if not 0 <= number < HIGH_TAG:
        raise ValueError(f"context tag number out of single-octet range: {number}")
    octet = CLASS_CONTEXT | number
    if constructed:
        octet |= CONSTRUCTED
    return octet


def tag_class(identifier: int) -> int:
    """Extract the class bits from an identifier octet."""
    return identifier & CLASS_MASK


def tag_number(identifier: int) -> int:
    """Extract the low-form tag number from an identifier octet."""
    return identifier & TAG_NUMBER_MASK


def is_constructed(identifier: int) -> bool:
    """True when the identifier octet has the constructed bit set."""
    return bool(identifier & CONSTRUCTED)


def describe_tag(identifier: int) -> str:
    """Human-readable description of an identifier octet, for diagnostics."""
    cls = tag_class(identifier)
    number = tag_number(identifier)
    shape = "constructed" if is_constructed(identifier) else "primitive"
    if cls == CLASS_UNIVERSAL:
        try:
            name = UniversalTag(number).name
        except ValueError:
            name = f"UNIVERSAL {number}"
        return f"{name} ({shape})"
    if cls == CLASS_CONTEXT:
        return f"[{number}] ({shape})"
    if cls == CLASS_APPLICATION:
        return f"APPLICATION {number} ({shape})"
    return f"PRIVATE {number} ({shape})"
