"""Object identifier value type and the OID registry used by X.509.

:class:`ObjectIdentifier` is an immutable, hashable dotted-arc value with
DER content-octet encoding/decoding.  The registry maps the OIDs this
library emits or recognizes to short names for pretty-printing and for
policy logic (for example, telling an MD5 signature from a SHA-256 one).
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator

from repro.errors import ASN1DecodeError, ASN1EncodeError


@total_ordering
class ObjectIdentifier:
    """An ASN.1 OBJECT IDENTIFIER, e.g. ``ObjectIdentifier("2.5.4.3")``.

    Instances are immutable and usable as dict keys.  Ordering is
    lexicographic over the arc tuple, which makes DER SET-OF sorting and
    deterministic report output straightforward.
    """

    __slots__ = ("_arcs",)

    def __init__(self, dotted: str | tuple[int, ...]):
        if isinstance(dotted, str):
            try:
                arcs = tuple(int(part) for part in dotted.split("."))
            except ValueError as exc:
                raise ASN1EncodeError(f"invalid OID string {dotted!r}") from exc
        else:
            arcs = tuple(int(a) for a in dotted)
        if len(arcs) < 2:
            raise ASN1EncodeError(f"OID needs at least two arcs: {arcs!r}")
        if arcs[0] not in (0, 1, 2):
            raise ASN1EncodeError(f"first OID arc must be 0, 1, or 2: {arcs!r}")
        if arcs[0] < 2 and arcs[1] > 39:
            raise ASN1EncodeError(f"second OID arc must be <= 39 when first is {arcs[0]}")
        if any(a < 0 for a in arcs):
            raise ASN1EncodeError(f"OID arcs must be non-negative: {arcs!r}")
        self._arcs = arcs

    @property
    def arcs(self) -> tuple[int, ...]:
        """The OID as a tuple of integer arcs."""
        return self._arcs

    @property
    def dotted(self) -> str:
        """The OID in dotted-decimal notation."""
        return ".".join(str(a) for a in self._arcs)

    @property
    def name(self) -> str:
        """Registered short name, or the dotted string when unregistered."""
        return OID_NAMES.get(self, self.dotted)

    def encode_content(self) -> bytes:
        """Encode the OID's DER content octets (no tag or length)."""
        out = bytearray()
        first = self._arcs[0] * 40 + self._arcs[1]
        for arc in (first, *self._arcs[2:]):
            out.extend(_encode_base128(arc))
        return bytes(out)

    @classmethod
    def decode_content(cls, content: bytes) -> "ObjectIdentifier":
        """Decode DER content octets into an :class:`ObjectIdentifier`."""
        if not content:
            raise ASN1DecodeError("empty OID content")
        arcs: list[int] = []
        for value in _iter_base128(content):
            if not arcs:
                if value < 40:
                    arcs.extend((0, value))
                elif value < 80:
                    arcs.extend((1, value - 40))
                else:
                    arcs.extend((2, value - 80))
            else:
                arcs.append(value)
        return cls(tuple(arcs))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectIdentifier):
            return self._arcs == other._arcs
        return NotImplemented

    def __lt__(self, other: "ObjectIdentifier") -> bool:
        if isinstance(other, ObjectIdentifier):
            return self._arcs < other._arcs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._arcs)

    def __repr__(self) -> str:
        return f"ObjectIdentifier({self.dotted!r})"

    def __str__(self) -> str:
        return self.name


def _encode_base128(value: int) -> bytes:
    """Encode one arc in base-128 with continuation bits (DER style)."""
    if value < 0x80:
        return bytes([value])
    chunks = []
    while value:
        chunks.append(value & 0x7F)
        value >>= 7
    chunks.reverse()
    return bytes([c | 0x80 for c in chunks[:-1]] + [chunks[-1]])


def _iter_base128(content: bytes) -> Iterator[int]:
    """Yield base-128 values from OID content octets, validating padding."""
    value = 0
    in_progress = False
    for index, octet in enumerate(content):
        if not in_progress and octet == 0x80:
            raise ASN1DecodeError("non-minimal base-128 arc encoding", offset=index)
        value = (value << 7) | (octet & 0x7F)
        in_progress = bool(octet & 0x80)
        if not in_progress:
            yield value
            value = 0
    if in_progress:
        raise ASN1DecodeError("truncated base-128 arc at end of OID content")


# --------------------------------------------------------------------------
# Registry: OIDs used across X.509, PKIX, and the root store formats.
# --------------------------------------------------------------------------

# Distinguished name attribute types (X.520).
COMMON_NAME = ObjectIdentifier("2.5.4.3")
SURNAME = ObjectIdentifier("2.5.4.4")
SERIAL_NUMBER_ATTR = ObjectIdentifier("2.5.4.5")
COUNTRY_NAME = ObjectIdentifier("2.5.4.6")
LOCALITY_NAME = ObjectIdentifier("2.5.4.7")
STATE_OR_PROVINCE = ObjectIdentifier("2.5.4.8")
STREET_ADDRESS = ObjectIdentifier("2.5.4.9")
ORGANIZATION_NAME = ObjectIdentifier("2.5.4.10")
ORGANIZATIONAL_UNIT = ObjectIdentifier("2.5.4.11")
EMAIL_ADDRESS = ObjectIdentifier("1.2.840.113549.1.9.1")
DOMAIN_COMPONENT = ObjectIdentifier("0.9.2342.19200300.100.1.25")

# Public key algorithms.
RSA_ENCRYPTION = ObjectIdentifier("1.2.840.113549.1.1.1")
EC_PUBLIC_KEY = ObjectIdentifier("1.2.840.10045.2.1")

# Named curves.
SECP256R1 = ObjectIdentifier("1.2.840.10045.3.1.7")
SECP384R1 = ObjectIdentifier("1.3.132.0.34")

# Signature algorithms.
MD5_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.4")
SHA1_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.5")
SHA256_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.11")
SHA384_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.12")
ECDSA_WITH_SHA256 = ObjectIdentifier("1.2.840.10045.4.3.2")
ECDSA_WITH_SHA384 = ObjectIdentifier("1.2.840.10045.4.3.3")

# Digest algorithms (for DigestInfo).
MD5 = ObjectIdentifier("1.2.840.113549.2.5")
SHA1 = ObjectIdentifier("1.3.14.3.2.26")
SHA256 = ObjectIdentifier("2.16.840.1.101.3.4.2.1")
SHA384 = ObjectIdentifier("2.16.840.1.101.3.4.2.2")

# Certificate extensions.
SUBJECT_KEY_IDENTIFIER = ObjectIdentifier("2.5.29.14")
KEY_USAGE = ObjectIdentifier("2.5.29.15")
SUBJECT_ALT_NAME = ObjectIdentifier("2.5.29.17")
BASIC_CONSTRAINTS = ObjectIdentifier("2.5.29.19")
NAME_CONSTRAINTS = ObjectIdentifier("2.5.29.30")
CERTIFICATE_POLICIES = ObjectIdentifier("2.5.29.32")
AUTHORITY_KEY_IDENTIFIER = ObjectIdentifier("2.5.29.35")
EXTENDED_KEY_USAGE = ObjectIdentifier("2.5.29.37")

# Extended key usage purposes.
EKU_SERVER_AUTH = ObjectIdentifier("1.3.6.1.5.5.7.3.1")
EKU_CLIENT_AUTH = ObjectIdentifier("1.3.6.1.5.5.7.3.2")
EKU_CODE_SIGNING = ObjectIdentifier("1.3.6.1.5.5.7.3.3")
EKU_EMAIL_PROTECTION = ObjectIdentifier("1.3.6.1.5.5.7.3.4")
EKU_TIME_STAMPING = ObjectIdentifier("1.3.6.1.5.5.7.3.8")
EKU_OCSP_SIGNING = ObjectIdentifier("1.3.6.1.5.5.7.3.9")
EKU_ANY = ObjectIdentifier("2.5.29.37.0")

# Microsoft CTL (authroot.stl) attribute OIDs (szOID_CERT_PROP_ID prefix space).
MS_CTL_SIGNER = ObjectIdentifier("1.3.6.1.4.1.311.10.1")
MS_EKU_FRIENDLY_NAME = ObjectIdentifier("1.3.6.1.4.1.311.10.11.11")
MS_DISALLOWED_FILETIME = ObjectIdentifier("1.3.6.1.4.1.311.10.11.104")
MS_DISALLOWED_EKU = ObjectIdentifier("1.3.6.1.4.1.311.10.11.122")
MS_NOTBEFORE_FILETIME = ObjectIdentifier("1.3.6.1.4.1.311.10.11.126")
MS_EKU_RESTRICTIONS = ObjectIdentifier("1.3.6.1.4.1.311.10.11.9")

# Certificate policy used by the simulated Baseline-Requirements CAs.
ANY_POLICY = ObjectIdentifier("2.5.29.32.0")
BR_DOMAIN_VALIDATED = ObjectIdentifier("2.23.140.1.2.1")
BR_ORGANIZATION_VALIDATED = ObjectIdentifier("2.23.140.1.2.2")
BR_EXTENDED_VALIDATION = ObjectIdentifier("2.23.140.1.1")

#: Names for pretty-printing and reports.
OID_NAMES: dict[ObjectIdentifier, str] = {
    COMMON_NAME: "CN",
    SURNAME: "SN",
    SERIAL_NUMBER_ATTR: "serialNumber",
    COUNTRY_NAME: "C",
    LOCALITY_NAME: "L",
    STATE_OR_PROVINCE: "ST",
    STREET_ADDRESS: "street",
    ORGANIZATION_NAME: "O",
    ORGANIZATIONAL_UNIT: "OU",
    EMAIL_ADDRESS: "emailAddress",
    DOMAIN_COMPONENT: "DC",
    RSA_ENCRYPTION: "rsaEncryption",
    EC_PUBLIC_KEY: "ecPublicKey",
    SECP256R1: "secp256r1",
    SECP384R1: "secp384r1",
    MD5_WITH_RSA: "md5WithRSAEncryption",
    SHA1_WITH_RSA: "sha1WithRSAEncryption",
    SHA256_WITH_RSA: "sha256WithRSAEncryption",
    SHA384_WITH_RSA: "sha384WithRSAEncryption",
    ECDSA_WITH_SHA256: "ecdsa-with-SHA256",
    ECDSA_WITH_SHA384: "ecdsa-with-SHA384",
    MD5: "md5",
    SHA1: "sha1",
    SHA256: "sha256",
    SHA384: "sha384",
    SUBJECT_KEY_IDENTIFIER: "subjectKeyIdentifier",
    KEY_USAGE: "keyUsage",
    SUBJECT_ALT_NAME: "subjectAltName",
    BASIC_CONSTRAINTS: "basicConstraints",
    NAME_CONSTRAINTS: "nameConstraints",
    CERTIFICATE_POLICIES: "certificatePolicies",
    AUTHORITY_KEY_IDENTIFIER: "authorityKeyIdentifier",
    EXTENDED_KEY_USAGE: "extendedKeyUsage",
    EKU_SERVER_AUTH: "serverAuth",
    EKU_CLIENT_AUTH: "clientAuth",
    EKU_CODE_SIGNING: "codeSigning",
    EKU_EMAIL_PROTECTION: "emailProtection",
    EKU_TIME_STAMPING: "timeStamping",
    EKU_OCSP_SIGNING: "OCSPSigning",
    EKU_ANY: "anyExtendedKeyUsage",
    ANY_POLICY: "anyPolicy",
    BR_DOMAIN_VALIDATED: "domain-validated",
    BR_ORGANIZATION_VALIDATED: "organization-validated",
    BR_EXTENDED_VALIDATION: "extended-validation",
    MS_CTL_SIGNER: "msCertTrustList",
    MS_EKU_FRIENDLY_NAME: "msFriendlyName",
    MS_DISALLOWED_FILETIME: "msDisallowedFiletime",
    MS_DISALLOWED_EKU: "msDisallowedEku",
    MS_NOTBEFORE_FILETIME: "msNotBeforeFiletime",
    MS_EKU_RESTRICTIONS: "msEkuRestrictions",
}
