"""DER encoding primitives.

Functions here return complete TLV byte strings (tag, definite length,
content).  They implement the DER subset of BER: definite lengths only,
minimal integer encodings, sorted SET OF, boolean as 0x00/0xFF.
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Iterable

from repro.asn1 import tags
from repro.asn1.oid import ObjectIdentifier
from repro.errors import ASN1EncodeError


def encode_length(length: int) -> bytes:
    """Encode a definite length in the shortest DER form."""
    if length < 0:
        raise ASN1EncodeError(f"negative length: {length}")
    if length < 0x80:
        return bytes([length])
    octets = length.to_bytes((length.bit_length() + 7) // 8, "big")
    if len(octets) > 126:
        raise ASN1EncodeError("length too large for DER")
    return bytes([0x80 | len(octets)]) + octets


def encode_tlv(tag: int, content: bytes) -> bytes:
    """Assemble one TLV from an identifier octet and content octets."""
    if not 0 <= tag <= 0xFF:
        raise ASN1EncodeError(f"identifier octet out of range: {tag}")
    return bytes([tag]) + encode_length(len(content)) + content


def encode_boolean(value: bool) -> bytes:
    """Encode BOOLEAN; DER requires TRUE to be exactly 0xFF."""
    return encode_tlv(tags.UniversalTag.BOOLEAN, b"\xff" if value else b"\x00")


def encode_integer(value: int) -> bytes:
    """Encode INTEGER (two's complement, minimal octets)."""
    return encode_tlv(tags.UniversalTag.INTEGER, _integer_content(value))


def _integer_content(value: int) -> bytes:
    if value == 0:
        return b"\x00"
    length = (value.bit_length() + 8) // 8 if value > 0 else ((~value).bit_length() + 8) // 8
    length = max(length, 1)
    content = value.to_bytes(length, "big", signed=True)
    # Strip redundant leading octets that to_bytes may have produced.
    while len(content) > 1:
        if content[0] == 0x00 and not content[1] & 0x80:
            content = content[1:]
        elif content[0] == 0xFF and content[1] & 0x80:
            content = content[1:]
        else:
            break
    return content


def encode_bit_string(data: bytes, unused_bits: int = 0) -> bytes:
    """Encode BIT STRING with an explicit count of unused trailing bits."""
    if not 0 <= unused_bits <= 7:
        raise ASN1EncodeError(f"unused bit count out of range: {unused_bits}")
    if unused_bits and not data:
        raise ASN1EncodeError("unused bits require at least one content octet")
    return encode_tlv(tags.UniversalTag.BIT_STRING, bytes([unused_bits]) + data)


def encode_named_bit_string(bits: Iterable[int]) -> bytes:
    """Encode a named-bit-list BIT STRING (e.g. X.509 KeyUsage).

    ``bits`` are the positions that are set (bit 0 is the most significant
    bit of the first octet).  DER requires trailing zero bits be stripped.
    """
    positions = sorted(set(int(b) for b in bits))
    if any(p < 0 for p in positions):
        raise ASN1EncodeError("bit positions must be non-negative")
    if not positions:
        return encode_tlv(tags.UniversalTag.BIT_STRING, b"\x00")
    highest = positions[-1]
    nbytes = highest // 8 + 1
    buf = bytearray(nbytes)
    for pos in positions:
        buf[pos // 8] |= 0x80 >> (pos % 8)
    unused = 7 - (highest % 8)
    return encode_bit_string(bytes(buf), unused)


def encode_octet_string(data: bytes) -> bytes:
    """Encode OCTET STRING."""
    return encode_tlv(tags.UniversalTag.OCTET_STRING, data)


def encode_null() -> bytes:
    """Encode NULL (the ubiquitous RSA AlgorithmIdentifier parameter)."""
    return encode_tlv(tags.UniversalTag.NULL, b"")


def encode_oid(oid: ObjectIdentifier | str) -> bytes:
    """Encode OBJECT IDENTIFIER."""
    if isinstance(oid, str):
        oid = ObjectIdentifier(oid)
    return encode_tlv(tags.UniversalTag.OBJECT_IDENTIFIER, oid.encode_content())


def encode_utf8_string(text: str) -> bytes:
    """Encode UTF8String."""
    return encode_tlv(tags.UniversalTag.UTF8_STRING, text.encode("utf-8"))


def encode_printable_string(text: str) -> bytes:
    """Encode PrintableString, validating the restricted alphabet."""
    allowed = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 '()+,-./:=?")
    if not set(text) <= allowed:
        raise ASN1EncodeError(f"text not printable-string safe: {text!r}")
    return encode_tlv(tags.UniversalTag.PRINTABLE_STRING, text.encode("ascii"))


def encode_ia5_string(text: str) -> bytes:
    """Encode IA5String (ASCII)."""
    try:
        content = text.encode("ascii")
    except UnicodeEncodeError as exc:
        raise ASN1EncodeError(f"text not IA5-safe: {text!r}") from exc
    return encode_tlv(tags.UniversalTag.IA5_STRING, content)


def encode_sequence(*components: bytes) -> bytes:
    """Encode SEQUENCE from already-encoded component TLVs."""
    return encode_tlv(tags.SEQUENCE_TAG, b"".join(components))


def encode_set(*components: bytes) -> bytes:
    """Encode SET OF from component TLVs, applying DER canonical sorting."""
    return encode_tlv(tags.SET_TAG, b"".join(sorted(components)))


def encode_context(number: int, content: bytes, constructed: bool = True) -> bytes:
    """Encode a context-specific TLV ``[number]``."""
    return encode_tlv(tags.context_tag(number, constructed), content)


def encode_explicit(number: int, inner: bytes) -> bytes:
    """Encode EXPLICIT ``[number]`` wrapping of one encoded TLV."""
    return encode_context(number, inner, constructed=True)


# DER says: dates 1950-2049 use UTCTime, everything else GeneralizedTime.
_UTC_TIME_MAX_YEAR = 2049
_UTC_TIME_MIN_YEAR = 1950


def encode_time(moment: datetime) -> bytes:
    """Encode a timestamp per the X.509 DER rule (UTCTime vs GeneralizedTime)."""
    moment = _as_utc(moment)
    if _UTC_TIME_MIN_YEAR <= moment.year <= _UTC_TIME_MAX_YEAR:
        text = moment.strftime("%y%m%d%H%M%SZ")
        return encode_tlv(tags.UniversalTag.UTC_TIME, text.encode("ascii"))
    text = moment.strftime("%Y%m%d%H%M%SZ")
    return encode_tlv(tags.UniversalTag.GENERALIZED_TIME, text.encode("ascii"))


def _as_utc(moment: datetime) -> datetime:
    if moment.tzinfo is None:
        return moment.replace(tzinfo=timezone.utc)
    return moment.astimezone(timezone.utc)
