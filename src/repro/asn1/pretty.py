"""Human-readable dump of DER structures (an `openssl asn1parse` analog).

Useful in tests and examples to eyeball generated certificates and root
store artifacts without external tooling.
"""

from __future__ import annotations

from repro.asn1 import tags
from repro.asn1.decoder import Element, decode_all
from repro.errors import ASN1Error


def dump(data: bytes, indent: str = "  ") -> str:
    """Render a DER buffer as an indented tree, one line per TLV."""
    lines: list[str] = []
    for element in decode_all(data):
        _render(element, 0, lines, indent)
    return "\n".join(lines)


def _render(element: Element, depth: int, lines: list[str], indent: str) -> None:
    prefix = indent * depth
    label = tags.describe_tag(element.tag)
    summary = _summarize(element)
    lines.append(f"{prefix}{element.offset:6d}: {label} len={len(element.content)}{summary}")
    if element.is_constructed():
        try:
            children = element.children()
        except ASN1Error:
            lines.append(f"{prefix}{indent}<undecodable constructed content>")
            return
        for child in children:
            _render(child, depth + 1, lines, indent)


def _summarize(element: Element) -> str:
    """One-line value preview for primitive scalar types."""
    number = tags.tag_number(element.tag)
    cls = tags.tag_class(element.tag)
    if cls != tags.CLASS_UNIVERSAL or element.is_constructed():
        return ""
    try:
        if number == tags.UniversalTag.OBJECT_IDENTIFIER:
            return f" = {element.as_oid()}"
        if number == tags.UniversalTag.INTEGER:
            value = element.as_integer()
            if value.bit_length() > 64:
                return f" = <{value.bit_length()}-bit integer>"
            return f" = {value}"
        if number == tags.UniversalTag.BOOLEAN:
            return f" = {element.as_boolean()}"
        if number in tags.STRING_TAGS:
            text = element.as_string()
            return f" = {text!r}" if len(text) <= 60 else f" = {text[:57]!r}..."
        if number in (tags.UniversalTag.UTC_TIME, tags.UniversalTag.GENERALIZED_TIME):
            return f" = {element.as_time().isoformat()}"
        if number == tags.UniversalTag.OCTET_STRING:
            preview = element.content[:12].hex()
            suffix = "..." if len(element.content) > 12 else ""
            return f" = {preview}{suffix}"
        if number == tags.UniversalTag.BIT_STRING:
            data, unused = element.as_bit_string()
            preview = data[:12].hex()
            suffix = "..." if len(data) > 12 else ""
            return f" = ({unused} unused) {preview}{suffix}"
    except ASN1Error:
        return " = <malformed>"
    return ""
