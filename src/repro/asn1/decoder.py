"""DER decoding.

The core abstraction is :class:`Element` — one parsed TLV with lazy
access to its children — plus a cursor-style :class:`Reader` for walking
SEQUENCE bodies positionally, the way RFC 5280 structures are defined.
The decoder is strict: definite lengths only, minimal integers, and full
consumption checks, because root store artifacts must round-trip
byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone

from repro.asn1 import tags
from repro.asn1.oid import ObjectIdentifier
from repro.errors import ASN1DecodeError


@dataclass(frozen=True)
class Element:
    """One decoded TLV.

    Attributes:
        tag: the identifier octet.
        content: the content octets (no tag/length).
        offset: byte offset of the tag within the original buffer, for
            error reporting.
        encoded: the complete TLV bytes, convenient for re-embedding a
            substructure (e.g. keeping TBSCertificate bytes to verify a
            signature).
    """

    tag: int
    content: bytes
    offset: int
    encoded: bytes

    # -- shape predicates --------------------------------------------------

    def is_constructed(self) -> bool:
        return tags.is_constructed(self.tag)

    def is_universal(self, number: int) -> bool:
        return self.tag & ~tags.CONSTRUCTED == number and tags.tag_class(self.tag) == tags.CLASS_UNIVERSAL

    def is_context(self, number: int) -> bool:
        return tags.tag_class(self.tag) == tags.CLASS_CONTEXT and tags.tag_number(self.tag) == number

    # -- scalar views ------------------------------------------------------

    def as_boolean(self) -> bool:
        self._require(tags.UniversalTag.BOOLEAN, "BOOLEAN")
        if self.content == b"\x00":
            return False
        if self.content == b"\xff":
            return True
        raise ASN1DecodeError(f"non-DER BOOLEAN content {self.content.hex()}", offset=self.offset)

    def as_integer(self) -> int:
        self._require(tags.UniversalTag.INTEGER, "INTEGER")
        return _decode_integer(self.content, self.offset)

    def as_oid(self) -> ObjectIdentifier:
        self._require(tags.UniversalTag.OBJECT_IDENTIFIER, "OBJECT IDENTIFIER")
        return ObjectIdentifier.decode_content(self.content)

    def as_octet_string(self) -> bytes:
        self._require(tags.UniversalTag.OCTET_STRING, "OCTET STRING")
        return self.content

    def as_bit_string(self) -> tuple[bytes, int]:
        """Return (data, unused_bits)."""
        self._require(tags.UniversalTag.BIT_STRING, "BIT STRING")
        if not self.content:
            raise ASN1DecodeError("empty BIT STRING content", offset=self.offset)
        unused = self.content[0]
        if unused > 7:
            raise ASN1DecodeError(f"invalid unused-bit count {unused}", offset=self.offset)
        data = self.content[1:]
        if unused and not data:
            raise ASN1DecodeError("unused bits with no data", offset=self.offset)
        return data, unused

    def as_named_bits(self) -> frozenset[int]:
        """Decode a named-bit-list BIT STRING into set bit positions."""
        data, unused = self.as_bit_string()
        positions = []
        total_bits = len(data) * 8 - unused
        for pos in range(total_bits):
            if data[pos // 8] & (0x80 >> (pos % 8)):
                positions.append(pos)
        return frozenset(positions)

    def as_string(self) -> str:
        """Decode any directory-string-ish type to Python text."""
        number = tags.tag_number(self.tag)
        if tags.tag_class(self.tag) != tags.CLASS_UNIVERSAL or number not in tags.STRING_TAGS:
            raise ASN1DecodeError(
                f"expected a string type, got {tags.describe_tag(self.tag)}", offset=self.offset
            )
        if number == tags.UniversalTag.BMP_STRING:
            return self.content.decode("utf-16-be")
        if number == tags.UniversalTag.UNIVERSAL_STRING:
            return self.content.decode("utf-32-be")
        if number == tags.UniversalTag.UTF8_STRING:
            return self.content.decode("utf-8")
        return self.content.decode("latin-1")

    def as_time(self) -> datetime:
        """Decode UTCTime or GeneralizedTime to an aware UTC datetime."""
        text = self.content.decode("ascii", errors="replace")
        number = tags.tag_number(self.tag)
        try:
            if number == tags.UniversalTag.UTC_TIME:
                parsed = datetime.strptime(text, "%y%m%d%H%M%SZ")
                # UTCTime years: 50-99 => 19xx, 00-49 => 20xx (strptime's
                # pivot is 69, so fix up the 50-68 range).
                if parsed.year >= 2050:
                    parsed = parsed.replace(year=parsed.year - 100)
                return parsed.replace(tzinfo=timezone.utc)
            if number == tags.UniversalTag.GENERALIZED_TIME:
                parsed = datetime.strptime(text, "%Y%m%d%H%M%SZ")
                return parsed.replace(tzinfo=timezone.utc)
        except ValueError as exc:
            raise ASN1DecodeError(f"malformed time {text!r}", offset=self.offset) from exc
        raise ASN1DecodeError(
            f"expected a time type, got {tags.describe_tag(self.tag)}", offset=self.offset
        )

    # -- structure views ---------------------------------------------------

    def children(self) -> list["Element"]:
        """Decode the content octets as a run of TLVs (for constructed types)."""
        if not self.is_constructed():
            raise ASN1DecodeError(
                f"cannot take children of primitive {tags.describe_tag(self.tag)}",
                offset=self.offset,
            )
        return decode_all(self.content, base_offset=self.offset)

    def reader(self) -> "Reader":
        """Positional reader over this element's children."""
        return Reader(self.children(), container=self)

    def _require(self, number: int, label: str) -> None:
        if not self.is_universal(number):
            raise ASN1DecodeError(
                f"expected {label}, got {tags.describe_tag(self.tag)}", offset=self.offset
            )


def _decode_integer(content: bytes, offset: int) -> int:
    if not content:
        raise ASN1DecodeError("empty INTEGER content", offset=offset)
    if len(content) > 1:
        if content[0] == 0x00 and not content[1] & 0x80:
            raise ASN1DecodeError("non-minimal INTEGER encoding", offset=offset)
        if content[0] == 0xFF and content[1] & 0x80:
            raise ASN1DecodeError("non-minimal INTEGER encoding", offset=offset)
    return int.from_bytes(content, "big", signed=True)


def decode_tlv(data: bytes, offset: int = 0) -> tuple[Element, int]:
    """Decode one TLV starting at ``offset``; return (element, next_offset)."""
    if offset >= len(data):
        raise ASN1DecodeError("unexpected end of input", offset=offset)
    tag = data[offset]
    if tag & tags.TAG_NUMBER_MASK == tags.HIGH_TAG:
        raise ASN1DecodeError("high-tag-number form not supported", offset=offset)
    cursor = offset + 1
    if cursor >= len(data):
        raise ASN1DecodeError("missing length octet", offset=cursor)
    first = data[cursor]
    cursor += 1
    if first < 0x80:
        length = first
    elif first == 0x80:
        raise ASN1DecodeError("indefinite length not allowed in DER", offset=cursor - 1)
    else:
        nlen = first & 0x7F
        if cursor + nlen > len(data):
            raise ASN1DecodeError("truncated long-form length", offset=cursor)
        length_octets = data[cursor : cursor + nlen]
        cursor += nlen
        if length_octets[0] == 0:
            raise ASN1DecodeError("non-minimal long-form length", offset=cursor - nlen)
        length = int.from_bytes(length_octets, "big")
        if length < 0x80:
            raise ASN1DecodeError("long form used for short length", offset=cursor - nlen)
    end = cursor + length
    if end > len(data):
        raise ASN1DecodeError(
            f"content truncated: need {length} bytes, have {len(data) - cursor}", offset=cursor
        )
    element = Element(
        tag=tag,
        content=bytes(data[cursor:end]),
        offset=offset,
        encoded=bytes(data[offset:end]),
    )
    return element, end


def decode(data: bytes) -> Element:
    """Decode exactly one TLV spanning the whole buffer."""
    element, end = decode_tlv(data, 0)
    if end != len(data):
        raise ASN1DecodeError(f"{len(data) - end} trailing bytes after TLV", offset=end)
    return element


def decode_all(data: bytes, base_offset: int = 0) -> list[Element]:
    """Decode a run of back-to-back TLVs covering the whole buffer."""
    elements = []
    offset = 0
    while offset < len(data):
        element, offset = decode_tlv(data, offset)
        elements.append(
            Element(
                tag=element.tag,
                content=element.content,
                offset=base_offset + element.offset,
                encoded=element.encoded,
            )
        )
    return elements


class Reader:
    """Positional cursor over a constructed element's children.

    RFC 5280 structures are positional with optional fields; this reader
    supports "take the next element", "take it only if it matches", and
    an exhaustion check to reject trailing garbage.
    """

    def __init__(self, elements: list[Element], container: Element | None = None):
        self._elements = elements
        self._index = 0
        self._container = container

    def __len__(self) -> int:
        return len(self._elements) - self._index

    def peek(self) -> Element | None:
        """The next element without consuming it, or None when exhausted."""
        if self._index < len(self._elements):
            return self._elements[self._index]
        return None

    def next(self, description: str = "element") -> Element:
        """Consume and return the next element, or raise when exhausted."""
        element = self.peek()
        if element is None:
            where = self._container.offset if self._container else None
            raise ASN1DecodeError(f"missing {description}", offset=where)
        self._index += 1
        return element

    def take_context(self, number: int) -> Element | None:
        """Consume the next element only when it is context tag [number]."""
        element = self.peek()
        if element is not None and element.is_context(number):
            self._index += 1
            return element
        return None

    def take_universal(self, number: int) -> Element | None:
        """Consume the next element only when it is the given universal type."""
        element = self.peek()
        if element is not None and element.is_universal(number):
            self._index += 1
            return element
        return None

    def finish(self) -> None:
        """Raise unless every child has been consumed."""
        element = self.peek()
        if element is not None:
            raise ASN1DecodeError(
                f"unexpected trailing {tags.describe_tag(element.tag)}", offset=element.offset
            )
