"""From-scratch ASN.1 DER encoder/decoder.

This package implements the DER subset used by X.509 certificates and
the root store container formats (PKCS#11 certdata, Microsoft CTL,
Java keystores).  It is strict by design — definite lengths, minimal
integers, canonical SET ordering — so that artifacts produced by the
simulator round-trip byte-for-byte through the collection pipeline.

Public surface:

- :mod:`repro.asn1.encoder` — ``encode_*`` functions returning TLVs.
- :mod:`repro.asn1.decoder` — :class:`Element`, :class:`Reader`,
  :func:`decode`, :func:`decode_all`.
- :mod:`repro.asn1.oid` — :class:`ObjectIdentifier` plus the registry.
- :mod:`repro.asn1.pretty` — diagnostic tree dump.
"""

from repro.asn1.decoder import Element, Reader, decode, decode_all, decode_tlv
from repro.asn1.encoder import (
    encode_bit_string,
    encode_boolean,
    encode_context,
    encode_explicit,
    encode_ia5_string,
    encode_integer,
    encode_length,
    encode_named_bit_string,
    encode_null,
    encode_octet_string,
    encode_oid,
    encode_printable_string,
    encode_sequence,
    encode_set,
    encode_time,
    encode_tlv,
    encode_utf8_string,
)
from repro.asn1.oid import ObjectIdentifier
from repro.asn1.pretty import dump

__all__ = [
    "Element",
    "ObjectIdentifier",
    "Reader",
    "decode",
    "decode_all",
    "decode_tlv",
    "dump",
    "encode_bit_string",
    "encode_boolean",
    "encode_context",
    "encode_explicit",
    "encode_ia5_string",
    "encode_integer",
    "encode_length",
    "encode_named_bit_string",
    "encode_null",
    "encode_octet_string",
    "encode_oid",
    "encode_printable_string",
    "encode_sequence",
    "encode_set",
    "encode_time",
    "encode_tlv",
    "encode_utf8_string",
]
