"""User-Agent string synthesis and parsing.

The sampler turns the Table 1 population into concrete UA header
strings (one per agent version), and the parser recovers (os, agent)
from arbitrary UA strings using the standard precedence rules (Edg
before Chrome, OPR before Chrome, CriOS before Safari, ...).  The
Table 1 benchmark round-trips the population through both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRandom
from repro.useragents.population import POPULATION, PopulationRow

_WEBKIT = "AppleWebKit/537.36 (KHTML, like Gecko)"
_MAC = "Macintosh; Intel Mac OS X 10_15_7"
_WIN = "Windows NT 10.0; Win64; x64"
_LINUX = "X11; Linux x86_64"
_CROS = "X11; CrOS x86_64 13904.55.0"


@dataclass(frozen=True)
class ParsedUA:
    """Parser output: the (os, agent) classification of one UA string."""

    os: str
    agent: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.os, self.agent)


def synthesize(row: PopulationRow, version_index: int, rng: DeterministicRandom) -> str:
    """A realistic UA string for one version of a population row."""
    major = 88 - version_index % 12
    # Fold the version index into the build number so every version of
    # a row yields a distinct string even when the major repeats.
    build = 4000 + version_index * 13 + rng.randint(0, 12)
    patch = rng.randint(30, 200)
    chrome_ver = f"{major}.0.{build}.{patch}"
    firefox_ver = f"{86 - version_index % 10}.{version_index // 10}"
    android_ver = f"{11 - version_index % 5}"
    ios_ver = f"{14 - version_index % 3}_{version_index // 3}"

    key = (row.os, row.agent)
    if key == ("Android", "Chrome Mobile"):
        return (
            f"Mozilla/5.0 (Linux; Android {android_ver}; Pixel {3 + version_index % 4}) "
            f"{_WEBKIT} Chrome/{chrome_ver} Mobile Safari/537.36"
        )
    if key == ("Android", "Chrome Mobile WebView"):
        return (
            f"Mozilla/5.0 (Linux; Android {android_ver}; wv) "
            f"{_WEBKIT} Version/4.0 Chrome/{chrome_ver} Mobile Safari/537.36"
        )
    if key == ("Android", "Samsung Internet"):
        return (
            f"Mozilla/5.0 (Linux; Android {android_ver}; SAMSUNG SM-G99{version_index}) "
            f"{_WEBKIT} SamsungBrowser/{13 + version_index}.0 Chrome/{chrome_ver} Mobile Safari/537.36"
        )
    if key == ("Android", "Android"):
        return (
            f"Mozilla/5.0 (Linux; U; Android {android_ver}; en-us; Nexus) "
            f"AppleWebKit/534.30 (KHTML, like Gecko) Version/4.0 Mobile Safari/534.30"
        )
    if key == ("Android", "Firefox Mobile"):
        return (
            f"Mozilla/5.0 (Android {android_ver}; Mobile; rv:{firefox_ver}) "
            f"Gecko/{firefox_ver} Firefox/{firefox_ver}"
        )
    if key == ("Android", "Chrome"):
        return (
            f"Mozilla/5.0 (Linux; Android {android_ver}) "
            f"{_WEBKIT} Chrome/{chrome_ver} Safari/537.36"
        )
    if key == ("Windows", "Chrome"):
        return f"Mozilla/5.0 ({_WIN}) {_WEBKIT} Chrome/{chrome_ver} Safari/537.36"
    if key == ("Windows", "Firefox"):
        return f"Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:{firefox_ver}) Gecko/20100101 Firefox/{firefox_ver}"
    if key == ("Windows", "Electron"):
        return (
            f"Mozilla/5.0 ({_WIN}) {_WEBKIT} SomeApp/1.{version_index} "
            f"Chrome/{chrome_ver} Electron/{11 + version_index}.0.{rng.randint(0, 5)} Safari/537.36"
        )
    if key == ("Windows", "Opera"):
        return f"Mozilla/5.0 ({_WIN}) {_WEBKIT} Chrome/{chrome_ver} Safari/537.36 OPR/{74 - version_index}.0"
    if key == ("Windows", "Edge"):
        return f"Mozilla/5.0 ({_WIN}) {_WEBKIT} Chrome/{chrome_ver} Safari/537.36 Edg/{major}.0.{build // 5}.{patch % 60}"
    if key == ("Windows", "Yandex Browser"):
        return f"Mozilla/5.0 ({_WIN}) {_WEBKIT} Chrome/{chrome_ver} YaBrowser/{21 - version_index}.2.0 Safari/537.36"
    if key == ("Windows", "IE"):
        return (
            f"Mozilla/5.0 (Windows NT {6 + version_index % 2}.1; WOW64; "
            f"Trident/7.0; rv:11.{version_index}) like Gecko"
        )
    if key == ("iOS", "Mobile Safari"):
        return (
            f"Mozilla/5.0 (iPhone; CPU iPhone OS {ios_ver} like Mac OS X) "
            f"AppleWebKit/605.1.15 (KHTML, like Gecko) "
            f"Version/{14 - version_index % 3}.0.{version_index} Mobile/15E148 Safari/604.1"
        )
    if key == ("iOS", "WKWebView"):
        return (
            f"Mozilla/5.0 (iPhone; CPU iPhone OS {ios_ver} like Mac OS X) "
            f"AppleWebKit/605.1.15 (KHTML, like Gecko) Mobile/15E{148 + version_index}"
        )
    if key == ("iOS", "Chrome Mobile iOS"):
        return (
            f"Mozilla/5.0 (iPhone; CPU iPhone OS {ios_ver} like Mac OS X) "
            f"AppleWebKit/605.1.15 (KHTML, like Gecko) CriOS/{chrome_ver} Mobile/15E148 Safari/604.1"
        )
    if key == ("iOS", "Google"):
        return (
            f"Mozilla/5.0 (iPhone; CPU iPhone OS {ios_ver} like Mac OS X) "
            f"AppleWebKit/605.1.15 (KHTML, like Gecko) GSA/144.0.3{version_index} Mobile/15E148 Safari/604.1"
        )
    if key == ("Mac OS X", "Safari"):
        return (
            f"Mozilla/5.0 ({_MAC}) AppleWebKit/605.1.15 (KHTML, like Gecko) "
            f"Version/{14 - version_index % 3}.0.{version_index} Safari/605.1.15"
        )
    if key == ("Mac OS X", "Chrome"):
        return f"Mozilla/5.0 ({_MAC}) {_WEBKIT} Chrome/{chrome_ver} Safari/537.36"
    if key == ("Mac OS X", "Firefox"):
        return f"Mozilla/5.0 (Macintosh; Intel Mac OS X 10.15; rv:{firefox_ver}) Gecko/20100101 Firefox/{firefox_ver}"
    if key == ("Mac OS X", "Apple Mail"):
        return f"Mozilla/5.0 ({_MAC}) AppleWebKit/605.1.15 (KHTML, like Gecko)"
    if key == ("Mac OS X", "Electron"):
        return (
            f"Mozilla/5.0 ({_MAC}) {_WEBKIT} SomeApp/2.{version_index} "
            f"Chrome/{chrome_ver} Electron/{11 + version_index}.1.0 Safari/537.36"
        )
    if key == ("ChromeOS", "Chrome"):
        return f"Mozilla/5.0 ({_CROS}) {_WEBKIT} Chrome/{chrome_ver} Safari/537.36"
    if key == ("Linux", "Chrome"):
        return f"Mozilla/5.0 ({_LINUX}) {_WEBKIT} Chrome/{chrome_ver} Safari/537.36"
    if key == ("Linux", "Safari"):
        return f"Mozilla/5.0 ({_LINUX}) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/13.0 Safari/605.1.15"
    if key == ("Linux", "Firefox"):
        return f"Mozilla/5.0 ({_LINUX}; rv:{firefox_ver}) Gecko/20100101 Firefox/{firefox_ver}"
    if key == ("Linux", "Samsung Internet"):
        return f"Mozilla/5.0 ({_LINUX}) {_WEBKIT} SamsungBrowser/14.0 Chrome/{chrome_ver} Safari/537.36"
    if key == ("Unknown", "okhttp"):
        return f"okhttp/4.{7 + version_index}.0"
    if key == ("Unknown", "CryptoAPI"):
        return "Microsoft-CryptoAPI/10.0"
    if key == ("Unknown", "Unknown"):
        return f"device-agent-{version_index}/1.0"
    if key == ("Unknown", "API Clients"):
        clients = (
            "python-requests/2.25.1", "curl/7.68.0", "Go-http-client/1.1", "axios/0.21.1",
            "Java/11.0.10", "Wget/1.20.3", "libwww-perl/6.43", "Apache-HttpClient/4.5.13",
            "aws-sdk-go/1.36.0", "Faraday v1.3.0", "node-fetch/1.0", "GuzzleHttp/7",
            "Dalvik/2.1.0", "Ruby", "PostmanRuntime/7.26.8", "insomnia/2020.5.2",
        )
        return clients[version_index % len(clients)]
    raise ValueError(f"no template for population row {key}")


def sample_top_200(seed: str = "cdn-sample-2021-04-07") -> list[str]:
    """The 200 concrete UA strings of the simulated CDN sample."""
    rng = DeterministicRandom(seed)
    strings = []
    for row in POPULATION:
        for version_index in range(row.versions):
            strings.append(synthesize(row, version_index, rng.fork(f"{row.os}/{row.agent}/{version_index}")))
    return strings


def parse(ua: str) -> ParsedUA:
    """Classify a UA string into Table 1's (os, agent) vocabulary."""
    os_name = _classify_os(ua)
    agent = _classify_agent(ua, os_name)
    return ParsedUA(os=os_name, agent=agent)


def _classify_os(ua: str) -> str:
    if "CrOS" in ua:
        return "ChromeOS"
    if "Android" in ua:
        return "Android"
    if "iPhone" in ua or "iPad" in ua:
        return "iOS"
    if "Windows NT" in ua:
        return "Windows"
    if "Mac OS X" in ua or "Macintosh" in ua:
        return "Mac OS X"
    if "Linux" in ua or "X11" in ua:
        return "Linux"
    return "Unknown"


def _classify_agent(ua: str, os_name: str) -> str:
    # Order matters: derived browsers embed the Chrome token.
    if ua.startswith("okhttp/"):
        return "okhttp"
    if ua.startswith("Microsoft-CryptoAPI"):
        return "CryptoAPI"
    if "Electron/" in ua:
        return "Electron"
    if "Edg/" in ua or "Edge/" in ua:
        return "Edge"
    if "OPR/" in ua or "Opera" in ua:
        return "Opera"
    if "YaBrowser/" in ua:
        return "Yandex Browser"
    if "SamsungBrowser/" in ua:
        return "Samsung Internet"
    if "CriOS/" in ua:
        return "Chrome Mobile iOS"
    if "GSA/" in ua:
        return "Google"
    if "Firefox/" in ua:
        return "Firefox Mobile" if os_name == "Android" else "Firefox"
    if "Trident/" in ua or "MSIE" in ua:
        return "IE"
    if "Chrome/" in ua:
        if os_name == "Android":
            if "; wv)" in ua:
                return "Chrome Mobile WebView"
            return "Chrome Mobile" if "Mobile Safari" in ua else "Chrome"
        return "Chrome"
    if os_name == "Android" and "Version/" in ua and "Safari" in ua:
        return "Android"
    if os_name == "iOS":
        if "Version/" in ua and "Safari" in ua:
            return "Mobile Safari"
        if "AppleWebKit" in ua and "Mobile/" in ua:
            return "WKWebView"
    if os_name == "Mac OS X":
        if "Version/" in ua and "Safari" in ua:
            return "Safari"
        if "AppleWebKit" in ua:
            return "Apple Mail"
    if os_name == "Linux" and "Version/" in ua and "Safari" in ua:
        return "Safari"
    if _looks_like_api_client(ua):
        return "API Clients"
    return "Unknown"


_API_TOKENS = (
    "requests", "curl/", "Go-http-client", "axios", "Java/", "Wget/", "libwww-perl",
    "HttpClient", "aws-sdk", "Faraday", "node-fetch", "Guzzle", "Dalvik", "Ruby",
    "PostmanRuntime", "insomnia",
)


def _looks_like_api_client(ua: str) -> bool:
    return any(token in ua for token in _API_TOKENS)
