"""The top-200 user agent population (the paper's Table 1).

Table 1 is itself source data — the OS/agent/version-count mix observed
in a CDN sample — so it is encoded here verbatim.  Each row carries the
root store provider that agent resolves to (or ``None`` when the paper
marks it "no"/unknown), which drives both the coverage computation and
the Figure 2 family attribution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PopulationRow:
    """One (OS, agent) row of Table 1."""

    os: str
    agent: str
    versions: int
    #: root store provider key, or None when uncollectable
    provider: str | None

    @property
    def included(self) -> bool:
        return self.provider is not None


#: Table 1 verbatim. Versions sum to 200; included rows sum to 154 (77%).
POPULATION: tuple[PopulationRow, ...] = (
    # Android
    PopulationRow("Android", "Chrome Mobile", 48, "android"),
    PopulationRow("Android", "Samsung Internet", 2, None),
    PopulationRow("Android", "Android", 3, None),
    PopulationRow("Android", "Firefox Mobile", 1, "nss"),
    PopulationRow("Android", "Chrome Mobile WebView", 1, None),
    PopulationRow("Android", "Chrome", 1, "android"),
    # Windows
    PopulationRow("Windows", "Chrome", 23, "microsoft"),
    PopulationRow("Windows", "Firefox", 7, "nss"),
    PopulationRow("Windows", "Electron", 6, "nodejs"),
    PopulationRow("Windows", "Opera", 4, "microsoft"),
    PopulationRow("Windows", "Edge", 4, "microsoft"),
    PopulationRow("Windows", "Yandex Browser", 3, None),
    PopulationRow("Windows", "IE", 3, "microsoft"),
    # iOS
    PopulationRow("iOS", "Mobile Safari", 18, "apple"),
    PopulationRow("iOS", "WKWebView", 4, "apple"),
    PopulationRow("iOS", "Chrome Mobile iOS", 2, "apple"),
    PopulationRow("iOS", "Google", 2, None),
    # Mac OS X
    PopulationRow("Mac OS X", "Safari", 15, "apple"),
    PopulationRow("Mac OS X", "Chrome", 14, "apple"),
    PopulationRow("Mac OS X", "Firefox", 2, "nss"),
    PopulationRow("Mac OS X", "Apple Mail", 1, None),
    PopulationRow("Mac OS X", "Electron", 1, "nodejs"),
    # ChromeOS
    PopulationRow("ChromeOS", "Chrome", 8, None),
    # Linux
    PopulationRow("Linux", "Chrome", 2, None),
    PopulationRow("Linux", "Safari", 1, None),
    PopulationRow("Linux", "Firefox", 1, "nss"),
    PopulationRow("Linux", "Samsung Internet", 1, None),
    # Unknown
    PopulationRow("Unknown", "okhttp", 3, None),
    PopulationRow("Unknown", "Unknown", 2, None),
    PopulationRow("Unknown", "CryptoAPI", 1, None),
    # API clients
    PopulationRow("Unknown", "API Clients", 16, None),
)


def total_user_agents() -> int:
    return sum(row.versions for row in POPULATION)


def included_user_agents() -> int:
    return sum(row.versions for row in POPULATION if row.included)


def coverage_fraction() -> float:
    """The paper's 77.0% coverage figure."""
    return included_user_agents() / total_user_agents()


@dataclass(frozen=True)
class ImpactBreakdown:
    """A weighted-impact answer with its exclusions accounted for.

    ``fraction`` weighs affected providers over the *included* versions
    (the 154 of 200 the paper can attribute to a store); ``excluded``
    reports the remainder separately rather than silently folding it
    into either side.
    """

    fraction: float
    affected_versions: int
    included_versions: int
    excluded_versions: int
    #: provider -> versions contributed to ``affected_versions``
    by_provider: tuple[tuple[str, int], ...] = ()

    @property
    def total_versions(self) -> int:
        return self.included_versions + self.excluded_versions


def impact_breakdown(provider_outcomes: dict[str, bool]) -> ImpactBreakdown:
    """Weigh per-provider outcomes over the Table-1 version sample.

    ``provider_outcomes`` maps provider key -> affected? (True = this
    provider's agents lose the chain).  Providers absent from the
    mapping count as unaffected; rows with no provider attribution are
    the excluded remainder.
    """
    affected = 0
    included = 0
    excluded = 0
    by_provider: dict[str, int] = {}
    for row in POPULATION:
        if row.provider is None:
            excluded += row.versions
            continue
        included += row.versions
        if provider_outcomes.get(row.provider, False):
            affected += row.versions
            by_provider[row.provider] = by_provider.get(row.provider, 0) + row.versions
    return ImpactBreakdown(
        fraction=affected / included if included else 0.0,
        affected_versions=affected,
        included_versions=included,
        excluded_versions=excluded,
        by_provider=tuple(sorted(by_provider.items())),
    )


def impact_fraction(provider_outcomes: dict[str, bool]) -> float:
    """Fraction of the attributable population affected (0.0 - 1.0)."""
    return impact_breakdown(provider_outcomes).fraction
