"""UA -> root store provider -> root program attribution (Figure 2).

``attribute`` maps a parsed (os, agent) pair to the root store provider
its TLS stack consults; ``family_of`` follows a provider's
``derived_from`` edge up to its independent root program.  Together
they produce the inverted-pyramid tallies of Section 4.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.store.provider import PROVIDERS
from repro.useragents.population import POPULATION
from repro.useragents.strings import ParsedUA, parse

#: (os, agent) -> provider key.  Derived from Table 1's inclusion notes:
#: browsers that ship their own store map to it (Firefox -> nss), the
#: rest map to the platform store.
_ATTRIBUTION: dict[tuple[str, str], str | None] = {
    (row.os, row.agent): row.provider for row in POPULATION
}

#: Program of last resort for providers outside our Table 2 dataset.
_PROGRAM_OF_OS = {
    "Windows": "microsoft",
    "Mac OS X": "apple",
    "iOS": "apple",
    "Android": "android",
}


def attribute(parsed: ParsedUA) -> str | None:
    """The root store provider for a classified UA, or None when unknown."""
    key = (parsed.os, parsed.agent)
    if key in _ATTRIBUTION:
        return _ATTRIBUTION[key]
    # Fall back to the platform store for unlisted agents.
    if parsed.agent == "Firefox" or parsed.agent == "Firefox Mobile":
        return "nss"
    return _PROGRAM_OF_OS.get(parsed.os)


def family_of(provider_key: str) -> str:
    """Follow derived_from edges up to the independent root program."""
    current = provider_key
    seen = set()
    while True:
        if current in seen:
            raise ValueError(f"derivation cycle at {current!r}")
        seen.add(current)
        provider = PROVIDERS[current]
        if provider.derived_from is None:
            return current
        current = provider.derived_from


@dataclass(frozen=True)
class EcosystemShares:
    """Figure 2's headline numbers."""

    total: int
    by_family: dict[str, int]
    unattributed: int

    def share(self, family: str) -> float:
        return self.by_family.get(family, 0) / self.total


def trace_user_agents(user_agents: list[str]) -> EcosystemShares:
    """Parse, attribute, and tally a UA sample by root store family."""
    families: Counter[str] = Counter()
    unattributed = 0
    for ua in user_agents:
        provider = attribute(parse(ua))
        if provider is None:
            unattributed += 1
        else:
            families[family_of(provider)] += 1
    return EcosystemShares(
        total=len(user_agents),
        by_family=dict(families),
        unattributed=unattributed,
    )
