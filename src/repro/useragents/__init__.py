"""User agent subsystem: population, string synthesis/parsing, attribution.

Reproduces the paper's Table 1 (top-200 CDN UA coverage), Table 5
(software survey), and the UA half of Figure 2 (family shares).
"""

from repro.useragents.attribution import (
    EcosystemShares,
    attribute,
    family_of,
    trace_user_agents,
)
from repro.useragents.population import (
    POPULATION,
    ImpactBreakdown,
    PopulationRow,
    coverage_fraction,
    impact_breakdown,
    impact_fraction,
    included_user_agents,
    total_user_agents,
)
from repro.useragents.software import SOFTWARE, SoftwareEntry, SoftwareKind, surveyed_counts
from repro.useragents.strings import ParsedUA, parse, sample_top_200, synthesize

__all__ = [
    "EcosystemShares",
    "ImpactBreakdown",
    "POPULATION",
    "ParsedUA",
    "PopulationRow",
    "SOFTWARE",
    "SoftwareEntry",
    "SoftwareKind",
    "attribute",
    "coverage_fraction",
    "family_of",
    "impact_breakdown",
    "impact_fraction",
    "included_user_agents",
    "parse",
    "sample_top_200",
    "surveyed_counts",
    "synthesize",
    "total_user_agents",
    "trace_user_agents",
]
