"""The OS / TLS library / TLS client survey (the paper's Appendix A, Table 5).

A registry of the software the paper examined and whether each ships
its own root store.  The Table 5 benchmark renders this registry; the
ecosystem graph (Figure 2) uses it for the default/configured edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class SoftwareKind(Enum):
    OPERATING_SYSTEM = "os"
    TLS_LIBRARY = "library"
    TLS_CLIENT = "client"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SoftwareEntry:
    """One surveyed piece of software."""

    name: str
    kind: SoftwareKind
    ships_root_store: bool
    details: str
    #: provider key when the store is in our dataset
    provider: str | None = None


SOFTWARE: tuple[SoftwareEntry, ...] = (
    # Operating systems
    SoftwareEntry("Alpine Linux", SoftwareKind.OPERATING_SYSTEM, True, "Popular Docker image base.", "alpine"),
    SoftwareEntry("Amazon Linux", SoftwareKind.OPERATING_SYSTEM, True, "AWS base image.", "amazonlinux"),
    SoftwareEntry("Android", SoftwareKind.OPERATING_SYSTEM, True, "Most common mobile OS.", "android"),
    SoftwareEntry("ChromeOS", SoftwareKind.OPERATING_SYSTEM, True, "Excluded: no build target history.", None),
    SoftwareEntry("Debian", SoftwareKind.OPERATING_SYSTEM, True, "Base of OpenWRT/Ubuntu and others.", "debian"),
    SoftwareEntry("iOS / macOS", SoftwareKind.OPERATING_SYSTEM, True, "Common Apple root store.", "apple"),
    SoftwareEntry("Microsoft Windows", SoftwareKind.OPERATING_SYSTEM, True, "Automatic Root Updates.", "microsoft"),
    SoftwareEntry("Ubuntu", SoftwareKind.OPERATING_SYSTEM, True, "Debian-based desktop/server Linux.", "ubuntu"),
    # TLS libraries
    SoftwareEntry("AlamoFire", SoftwareKind.TLS_LIBRARY, False, "Swift HTTP library; platform trust."),
    SoftwareEntry("Botan", SoftwareKind.TLS_LIBRARY, False, "Defaults to system root store."),
    SoftwareEntry("BoringSSL", SoftwareKind.TLS_LIBRARY, False, "Google OpenSSL fork; caller supplies roots."),
    SoftwareEntry("Bouncy Castle", SoftwareKind.TLS_LIBRARY, False, "Requires configured keystore."),
    SoftwareEntry("cryptlib", SoftwareKind.TLS_LIBRARY, False, "Unknown default."),
    SoftwareEntry("GnuTLS", SoftwareKind.TLS_LIBRARY, False, "--with-default-trust-store-* at build time."),
    SoftwareEntry("JSSE", SoftwareKind.TLS_LIBRARY, True, "cacerts JKS file.", "java"),
    SoftwareEntry("LibreSSL libtls", SoftwareKind.TLS_LIBRARY, False, "TLS_DEFAULT_CA_FILE."),
    SoftwareEntry("MatrixSSL", SoftwareKind.TLS_LIBRARY, False, "No default."),
    SoftwareEntry("Mbed TLS", SoftwareKind.TLS_LIBRARY, False, "ca_path/ca_file configuration."),
    SoftwareEntry("NSS", SoftwareKind.TLS_LIBRARY, True, "certdata.txt plus code-level trust.", "nss"),
    SoftwareEntry("OkHttp", SoftwareKind.TLS_LIBRARY, False, "Uses platform TLS (JSSE etc.)."),
    SoftwareEntry("OpenSSL", SoftwareKind.TLS_LIBRARY, False, "$OPENSSLDIR/certs, distro-symlinked."),
    SoftwareEntry("RSA BSAFE", SoftwareKind.TLS_LIBRARY, False, "Unknown default."),
    SoftwareEntry("s2n", SoftwareKind.TLS_LIBRARY, False, "Defaults to system stores."),
    SoftwareEntry("SChannel", SoftwareKind.TLS_LIBRARY, False, "Uses the Windows system store."),
    SoftwareEntry("wolfSSL", SoftwareKind.TLS_LIBRARY, False, "No default."),
    SoftwareEntry("Erlang/OTP SSL", SoftwareKind.TLS_LIBRARY, False, "Unknown default."),
    SoftwareEntry("BearSSL", SoftwareKind.TLS_LIBRARY, False, "No default."),
    SoftwareEntry("NodeJS", SoftwareKind.TLS_LIBRARY, True, "src/node_root_certs.h.", "nodejs"),
    # TLS clients
    SoftwareEntry("Safari", SoftwareKind.TLS_CLIENT, False, "Uses the macOS root store."),
    SoftwareEntry("Mobile Safari", SoftwareKind.TLS_CLIENT, False, "Uses the iOS root store."),
    SoftwareEntry("Chrome", SoftwareKind.TLS_CLIENT, True, "System roots historically; Chrome Root Store in transition (excluded)."),
    SoftwareEntry("Chrome Mobile", SoftwareKind.TLS_CLIENT, False, "Uses the Android root store."),
    SoftwareEntry("Chrome Mobile iOS", SoftwareKind.TLS_CLIENT, False, "Apple policy prohibits custom stores."),
    SoftwareEntry("Edge", SoftwareKind.TLS_CLIENT, False, "Windows system certificates."),
    SoftwareEntry("Internet Explorer", SoftwareKind.TLS_CLIENT, False, "Windows certificates via SChannel."),
    SoftwareEntry("Firefox", SoftwareKind.TLS_CLIENT, True, "Uses the NSS root store.", "nss"),
    SoftwareEntry("Opera", SoftwareKind.TLS_CLIENT, False, "Own program until 2013; now Chromium/system."),
    SoftwareEntry("Electron", SoftwareKind.TLS_CLIENT, True, "Chromium + NodeJS; either store.", "nodejs"),
    SoftwareEntry("360Browser", SoftwareKind.TLS_CLIENT, True, "Excluded: no open-source history."),
    SoftwareEntry("curl", SoftwareKind.TLS_CLIENT, False, "libcurl build-time configured."),
    SoftwareEntry("wget", SoftwareKind.TLS_CLIENT, False, "wgetrc configuration; GnuTLS."),
)


def surveyed_counts() -> dict[str, tuple[int, int]]:
    """kind -> (surveyed, shipping own store)."""
    result: dict[str, tuple[int, int]] = {}
    for kind in SoftwareKind:
        entries = [s for s in SOFTWARE if s.kind is kind]
        result[str(kind)] = (len(entries), sum(1 for s in entries if s.ships_root_store))
    return result
