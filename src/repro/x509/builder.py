"""Certificate construction.

:class:`CertificateBuilder` assembles a TBSCertificate, signs it with an
RSA or EC private key, and returns a parsed :class:`Certificate`.  It
supports self-signed roots, CA-signed subordinates, and cross-signs
(same subject/key, different issuer) — the three shapes the ecosystem
simulator mints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

import hashlib

from repro.asn1 import (
    encode_bit_string,
    encode_context,
    encode_integer,
    encode_sequence,
    encode_time,
)
from repro.asn1.oid import (
    ECDSA_WITH_SHA256,
    ECDSA_WITH_SHA384,
    MD5_WITH_RSA,
    SHA1_WITH_RSA,
    SHA256_WITH_RSA,
    SHA384_WITH_RSA,
    ObjectIdentifier,
)
from repro.crypto.digests import digest_for_signature_oid
from repro.crypto.ec import ECPrivateKey
from repro.crypto.rng import DeterministicRandom
from repro.crypto.rsa import RSAPrivateKey
from repro.errors import X509Error
from repro.x509.algorithms import AlgorithmIdentifier, PublicKey, encode_spki
from repro.x509.certificate import Certificate
from repro.x509.extensions import (
    AuthorityKeyIdentifier,
    BasicConstraints,
    Extension,
    KeyUsage,
    SubjectKeyIdentifier,
)
from repro.x509.name import Name

PrivateKey = RSAPrivateKey | ECPrivateKey

#: Signature OIDs by (scheme, digest name).
_SIGNATURE_OIDS: dict[tuple[str, str], ObjectIdentifier] = {
    ("rsa", "md5"): MD5_WITH_RSA,
    ("rsa", "sha1"): SHA1_WITH_RSA,
    ("rsa", "sha256"): SHA256_WITH_RSA,
    ("rsa", "sha384"): SHA384_WITH_RSA,
    ("ecdsa", "sha256"): ECDSA_WITH_SHA256,
    ("ecdsa", "sha384"): ECDSA_WITH_SHA384,
}


def signature_oid_for(key: PrivateKey, digest_name: str) -> ObjectIdentifier:
    """The signature algorithm OID for a key type and digest name."""
    scheme = "rsa" if isinstance(key, RSAPrivateKey) else "ecdsa"
    try:
        return _SIGNATURE_OIDS[(scheme, digest_name)]
    except KeyError as exc:
        raise X509Error(f"unsupported {scheme} digest {digest_name!r}") from exc


def key_identifier(key: PublicKey) -> bytes:
    """RFC 5280 method 1 SKI: SHA-1 of the subjectPublicKey bits."""
    if hasattr(key, "encode_point"):
        bits = key.encode_point()
    else:
        bits = key.encode()
    return hashlib.sha1(bits).digest()


@dataclass
class CertificateBuilder:
    """Accumulates TBSCertificate fields, then signs.

    Typical use::

        cert = (
            CertificateBuilder()
            .subject(Name.build(common_name="Example Root CA", organization="Example"))
            .serial(1)
            .valid(from_=dt(2015, 1, 1), to=dt(2035, 1, 1))
            .public_key(key.public_key)
            .ca(True)
            .self_sign(key, "sha256")
        )
    """

    _subject: Name | None = None
    _issuer: Name | None = None
    _serial: int | None = None
    _not_before: datetime | None = None
    _not_after: datetime | None = None
    _public_key: PublicKey | None = None
    _extensions: list[Extension] = field(default_factory=list)
    _is_ca: bool | None = None

    def subject(self, name: Name) -> "CertificateBuilder":
        self._subject = name
        return self

    def issuer(self, name: Name) -> "CertificateBuilder":
        self._issuer = name
        return self

    def serial(self, serial: int) -> "CertificateBuilder":
        if serial <= 0:
            raise X509Error("serial number must be positive")
        self._serial = serial
        return self

    def valid(self, from_: datetime, to: datetime) -> "CertificateBuilder":
        if from_ >= to:
            raise X509Error("notBefore must precede notAfter")
        self._not_before = from_
        self._not_after = to
        return self

    def public_key(self, key: PublicKey) -> "CertificateBuilder":
        self._public_key = key
        return self

    def ca(self, is_ca: bool, path_length: int | None = None) -> "CertificateBuilder":
        """Attach BasicConstraints and the conventional CA KeyUsage."""
        self._is_ca = is_ca
        self._extensions.append(BasicConstraints(ca=is_ca, path_length=path_length).to_extension())
        if is_ca:
            self._extensions.append(KeyUsage.ca_usage().to_extension())
        return self

    def add_extension(self, extension: Extension) -> "CertificateBuilder":
        self._extensions.append(extension)
        return self

    # -- signing ----------------------------------------------------------

    def self_sign(
        self,
        key: PrivateKey,
        digest_name: str = "sha256",
        rng: DeterministicRandom | None = None,
    ) -> Certificate:
        """Sign with the subject's own key (issuer = subject)."""
        self._issuer = self._require(self._subject, "subject")
        if self._public_key is None:
            self._public_key = key.public_key
        return self.sign(key, digest_name, rng=rng, issuer_public_key=key.public_key)

    def sign(
        self,
        issuer_key: PrivateKey,
        digest_name: str = "sha256",
        *,
        rng: DeterministicRandom | None = None,
        issuer_public_key: PublicKey | None = None,
    ) -> Certificate:
        """Sign the assembled TBSCertificate with ``issuer_key``."""
        subject = self._require(self._subject, "subject")
        issuer = self._require(self._issuer, "issuer")
        serial = self._require(self._serial, "serial number")
        not_before = self._require(self._not_before, "notBefore")
        not_after = self._require(self._not_after, "notAfter")
        public_key = self._require(self._public_key, "public key")

        sig_oid = signature_oid_for(issuer_key, digest_name)
        if isinstance(issuer_key, RSAPrivateKey):
            algorithm = AlgorithmIdentifier.rsa_signature(sig_oid)
        else:
            algorithm = AlgorithmIdentifier.ecdsa_signature(sig_oid)

        extensions = list(self._extensions)
        extensions.append(SubjectKeyIdentifier(key_identifier(public_key)).to_extension())
        if issuer_public_key is not None and issuer != subject:
            extensions.append(
                AuthorityKeyIdentifier(key_identifier(issuer_public_key)).to_extension()
            )

        tbs = encode_sequence(
            encode_context(0, encode_integer(2)),  # version v3
            encode_integer(serial),
            algorithm.encode(),
            issuer.encode(),
            encode_sequence(encode_time(not_before), encode_time(not_after)),
            subject.encode(),
            encode_spki(public_key),
            encode_context(3, encode_sequence(*(e.encode() for e in extensions))),
        )

        digest = digest_for_signature_oid(sig_oid)
        if isinstance(issuer_key, RSAPrivateKey):
            signature = issuer_key.sign(tbs, digest)
        else:
            if rng is None:
                # Deterministic fallback: derive the nonce stream from the
                # TBS bytes so re-signing the same content is replayable.
                rng = DeterministicRandom(hashlib.sha256(tbs).digest())
            signature = issuer_key.sign(tbs, digest, rng)

        der = encode_sequence(tbs, algorithm.encode(), encode_bit_string(signature))
        return Certificate.from_der(der)

    @staticmethod
    def _require(value, label: str):
        if value is None:
            raise X509Error(f"certificate builder is missing the {label}")
        return value
