"""The parsed X.509 certificate object.

:class:`Certificate` wraps a DER buffer and exposes the fields the root
store analyses need — fingerprints, validity, key type and size,
signature digest, extensions — plus signature verification against an
issuer key.  Instances are immutable and hash/compare by SHA-256
fingerprint, which is how the whole analysis layer identifies roots.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from dataclasses import dataclass
from datetime import datetime
from functools import cached_property

from repro.asn1 import decode as decode_der
from repro.asn1.oid import BASIC_CONSTRAINTS, ObjectIdentifier
from repro.crypto.digests import digest_for_signature_oid, scheme_for_signature_oid
from repro.crypto.ec import ECPublicKey
from repro.crypto.rsa import RSAPublicKey
from repro.errors import CertificateParseError, SignatureError, X509Error
from repro.x509.algorithms import AlgorithmIdentifier, PublicKey, decode_spki, key_type
from repro.x509.extensions import Extension, TYPED_EXTENSIONS
from repro.x509.name import Name


@dataclass(frozen=True)
class Validity:
    """notBefore / notAfter window (aware UTC datetimes)."""

    not_before: datetime
    not_after: datetime

    def contains(self, moment: datetime) -> bool:
        return self.not_before <= moment <= self.not_after

    @property
    def lifetime_days(self) -> int:
        return (self.not_after - self.not_before).days


@dataclass(frozen=True)
class InternPoolStats:
    """Observability snapshot of the certificate intern pool."""

    size: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _CertificateInternPool:
    """Content-addressed pool of parsed certificates, keyed by DER bytes.

    Root stores share most of their certificates — the same NSS root
    appears in hundreds of snapshots across ten providers — so without
    interning, collection re-parses (and re-hashes) identical DER over
    and over.  The pool maps DER bytes to the one live
    :class:`Certificate` parsed from them.

    Lifetime: entries are weakly referenced, so the pool never extends a
    certificate's lifetime — it only deduplicates parses while some
    owner (a snapshot, a dataset) keeps the object alive.  Thread
    safety: all map accesses happen under one lock; a race on first
    parse can parse the same DER twice, but ``setdefault`` under the
    lock guarantees every caller receives the same canonical instance.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_der: weakref.WeakValueDictionary[bytes, "Certificate"] = (
            weakref.WeakValueDictionary()
        )
        self._hits = 0
        self._misses = 0

    def lookup(self, der: bytes) -> "Certificate | None":
        with self._lock:
            cached = self._by_der.get(der)
            if cached is not None:
                self._hits += 1
            else:
                self._misses += 1
            return cached

    def store(self, der: bytes, certificate: "Certificate") -> "Certificate":
        with self._lock:
            return self._by_der.setdefault(der, certificate)

    def stats(self) -> InternPoolStats:
        with self._lock:
            return InternPoolStats(
                size=len(self._by_der), hits=self._hits, misses=self._misses
            )

    def clear(self) -> None:
        with self._lock:
            self._by_der.clear()
            self._hits = 0
            self._misses = 0


_INTERN_POOL = _CertificateInternPool()


def certificate_intern_stats() -> InternPoolStats:
    """Size / hit / miss counters of the process-wide intern pool."""
    return _INTERN_POOL.stats()


def clear_certificate_intern_pool() -> None:
    """Drop every pooled certificate and reset the counters (benchmarks
    use this to measure cold-parse cost)."""
    _INTERN_POOL.clear()


class Certificate:
    """An immutable parsed certificate.

    Build instances with :func:`Certificate.from_der` (or via
    :class:`repro.x509.builder.CertificateBuilder`).  Identity for
    hashing and equality is the SHA-256 fingerprint of the DER bytes,
    matching how the paper identifies roots across stores.
    """

    def __init__(
        self,
        der: bytes,
        *,
        tbs_der: bytes,
        version: int,
        serial_number: int,
        signature_algorithm: AlgorithmIdentifier,
        issuer: Name,
        validity: Validity,
        subject: Name,
        public_key: PublicKey,
        extensions: tuple[Extension, ...],
    ):
        self._der = der
        self._tbs_der = tbs_der
        self.version = version
        self.serial_number = serial_number
        self.signature_algorithm = signature_algorithm
        self.issuer = issuer
        self.validity = validity
        self.subject = subject
        self.public_key = public_key
        self.extensions = extensions

    # -- construction --------------------------------------------------

    @classmethod
    def from_der(cls, der: bytes, *, intern: bool = True) -> "Certificate":
        """Parse a DER certificate.

        With ``intern=True`` (the default) identical DER bytes across
        the whole process share one parsed instance through the
        content-addressed intern pool, so a root that appears in
        hundreds of snapshots is parsed and fingerprinted exactly once.
        Pass ``intern=False`` to force a fresh parse (benchmarks do).
        """
        der = bytes(der)
        if intern:
            cached = _INTERN_POOL.lookup(der)
            if cached is not None:
                return cached
        try:
            certificate = cls._parse(der)
        except X509Error:
            raise
        except Exception as exc:  # noqa: BLE001 - normalize parse failures
            raise CertificateParseError(f"cannot parse certificate: {exc}") from exc
        if intern:
            return _INTERN_POOL.store(der, certificate)
        return certificate

    @classmethod
    def _parse(cls, der: bytes) -> "Certificate":
        outer = decode_der(der).reader()
        tbs = outer.next("tbsCertificate")
        sig_alg = AlgorithmIdentifier.decode(outer.next("signatureAlgorithm"))
        signature_bits = outer.next("signatureValue")
        signature_bits.as_bit_string()  # validate shape
        outer.finish()

        reader = tbs.reader()
        version = 0
        version_wrapper = reader.take_context(0)
        if version_wrapper is not None:
            version = version_wrapper.children()[0].as_integer()
        serial = reader.next("serialNumber").as_integer()
        tbs_sig_alg = AlgorithmIdentifier.decode(reader.next("signature"))
        if tbs_sig_alg.oid != sig_alg.oid:
            raise CertificateParseError(
                f"TBS signature algorithm {tbs_sig_alg.oid} != outer {sig_alg.oid}"
            )
        issuer = Name.decode(reader.next("issuer"))
        validity_reader = reader.next("validity").reader()
        not_before = validity_reader.next("notBefore").as_time()
        not_after = validity_reader.next("notAfter").as_time()
        validity_reader.finish()
        subject = Name.decode(reader.next("subject"))
        public_key = decode_spki(reader.next("subjectPublicKeyInfo"))
        extensions: tuple[Extension, ...] = ()
        # Skip optional issuerUniqueID [1] / subjectUniqueID [2].
        reader.take_context(1)
        reader.take_context(2)
        ext_wrapper = reader.take_context(3)
        if ext_wrapper is not None:
            ext_seq = ext_wrapper.children()[0]
            extensions = tuple(Extension.decode(e) for e in ext_seq.children())
        reader.finish()

        return cls(
            der=bytes(der),
            tbs_der=tbs.encoded,
            version=version,
            serial_number=serial,
            signature_algorithm=sig_alg,
            issuer=issuer,
            validity=Validity(not_before=not_before, not_after=not_after),
            subject=subject,
            public_key=public_key,
            extensions=extensions,
        )

    # -- identity -------------------------------------------------------

    @property
    def der(self) -> bytes:
        """The exact DER bytes this certificate was parsed from."""
        return self._der

    @property
    def tbs_der(self) -> bytes:
        """The TBSCertificate bytes (the signed payload)."""
        return self._tbs_der

    @cached_property
    def fingerprint_sha256(self) -> str:
        return hashlib.sha256(self._der).hexdigest()

    @cached_property
    def fingerprint_sha1(self) -> str:
        return hashlib.sha1(self._der).hexdigest()

    @cached_property
    def fingerprint_md5(self) -> str:
        return hashlib.md5(self._der).hexdigest()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Certificate):
            return self._der == other._der
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.fingerprint_sha256)

    def __repr__(self) -> str:
        return f"<Certificate {self.subject.rfc4514()!r} sha256={self.fingerprint_sha256[:16]}>"

    # -- analysis-facing properties --------------------------------------

    @property
    def key_type(self) -> str:
        """"rsa" or "ec"."""
        return key_type(self.public_key)

    @property
    def key_bits(self) -> int:
        """Modulus size for RSA, field size for EC."""
        return self.public_key.bits

    @property
    def signature_digest(self) -> str:
        """Digest name of the signature algorithm ("md5", "sha1", ...)."""
        return digest_for_signature_oid(self.signature_algorithm.oid).name

    def is_expired(self, at: datetime) -> bool:
        return at > self.validity.not_after

    def is_self_issued(self) -> bool:
        """Subject equals issuer (true for virtually all roots)."""
        return self.subject == self.issuer

    @property
    def is_ca(self) -> bool:
        """True when BasicConstraints marks this certificate as a CA."""
        bc = self.extension_value(BASIC_CONSTRAINTS)
        return bool(bc and bc.ca)

    # -- extensions -------------------------------------------------------

    def extension(self, oid: ObjectIdentifier) -> Extension | None:
        """The raw extension with the given OID, or None."""
        for ext in self.extensions:
            if ext.oid == oid:
                return ext
        return None

    def extension_value(self, oid: ObjectIdentifier):
        """The typed extension value for a known OID, or None when absent."""
        ext = self.extension(oid)
        if ext is None:
            return None
        decoder = TYPED_EXTENSIONS.get(oid)
        if decoder is None:
            raise X509Error(f"no typed decoder for extension {oid}")
        return decoder(ext)

    # -- verification -----------------------------------------------------

    def verify_signature(self, issuer_key: PublicKey) -> None:
        """Verify this certificate's signature with ``issuer_key``.

        Raises :class:`~repro.errors.SignatureError` on mismatch.
        """
        digest = digest_for_signature_oid(self.signature_algorithm.oid)
        scheme = scheme_for_signature_oid(self.signature_algorithm.oid)
        signature = self._signature_bytes()
        if scheme == "rsa":
            if not isinstance(issuer_key, RSAPublicKey):
                raise SignatureError("RSA signature but issuer key is not RSA")
            issuer_key.verify(signature, self._tbs_der, digest)
        elif scheme == "ecdsa":
            if not isinstance(issuer_key, ECPublicKey):
                raise SignatureError("ECDSA signature but issuer key is not EC")
            issuer_key.verify(signature, self._tbs_der, digest)
        else:  # pragma: no cover - registry only has rsa/ecdsa
            raise SignatureError(f"unsupported signature scheme {scheme}")

    def _signature_bytes(self) -> bytes:
        outer = decode_der(self._der).reader()
        outer.next()
        outer.next()
        data, unused = outer.next().as_bit_string()
        if unused:
            raise SignatureError("signature BIT STRING has unused bits")
        return data
