"""X.509 v3 extensions.

Each extension type knows how to encode its value octets and how to
decode itself from a generic :class:`Extension`.  The set implemented
here is exactly what root certificates and the paper's analyses need:
BasicConstraints, KeyUsage, ExtendedKeyUsage, Subject/Authority Key
Identifier, SubjectAltName, CertificatePolicies, and NameConstraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.asn1 import (
    Element,
    decode as decode_der,
    encode_boolean,
    encode_context,
    encode_ia5_string,
    encode_integer,
    encode_named_bit_string,
    encode_octet_string,
    encode_oid,
    encode_sequence,
)
from repro.asn1 import tags
from repro.asn1.oid import (
    AUTHORITY_KEY_IDENTIFIER,
    BASIC_CONSTRAINTS,
    CERTIFICATE_POLICIES,
    EXTENDED_KEY_USAGE,
    KEY_USAGE,
    NAME_CONSTRAINTS,
    SUBJECT_ALT_NAME,
    SUBJECT_KEY_IDENTIFIER,
    ObjectIdentifier,
)
from repro.errors import X509Error


@dataclass(frozen=True)
class Extension:
    """A raw extension: OID, criticality, and DER value octets."""

    oid: ObjectIdentifier
    critical: bool
    value: bytes  # the content of the OCTET STRING wrapper

    def encode(self) -> bytes:
        components = [encode_oid(self.oid)]
        if self.critical:  # DEFAULT FALSE must be omitted in DER
            components.append(encode_boolean(True))
        components.append(encode_octet_string(self.value))
        return encode_sequence(*components)

    @classmethod
    def decode(cls, element: Element) -> "Extension":
        reader = element.reader()
        oid = reader.next("extnID").as_oid()
        critical = False
        flag = reader.take_universal(tags.UniversalTag.BOOLEAN)
        if flag is not None:
            critical = flag.as_boolean()
        value = reader.next("extnValue").as_octet_string()
        reader.finish()
        return cls(oid=oid, critical=critical, value=value)


@dataclass(frozen=True)
class BasicConstraints:
    """CA flag and optional path length."""

    ca: bool
    path_length: int | None = None

    OID = BASIC_CONSTRAINTS

    def to_extension(self, critical: bool = True) -> Extension:
        components = []
        if self.ca:  # DEFAULT FALSE
            components.append(encode_boolean(True))
        if self.path_length is not None:
            components.append(encode_integer(self.path_length))
        return Extension(self.OID, critical, encode_sequence(*components))

    @classmethod
    def from_extension(cls, extension: Extension) -> "BasicConstraints":
        if extension.oid != cls.OID:
            raise X509Error(f"not a BasicConstraints extension: {extension.oid}")
        reader = decode_der(extension.value).reader()
        ca = False
        flag = reader.take_universal(tags.UniversalTag.BOOLEAN)
        if flag is not None:
            ca = flag.as_boolean()
        path_length = None
        length = reader.take_universal(tags.UniversalTag.INTEGER)
        if length is not None:
            path_length = length.as_integer()
        reader.finish()
        return cls(ca=ca, path_length=path_length)


class KeyUsageBit(IntEnum):
    """Named bits of the KeyUsage BIT STRING."""

    DIGITAL_SIGNATURE = 0
    NON_REPUDIATION = 1
    KEY_ENCIPHERMENT = 2
    DATA_ENCIPHERMENT = 3
    KEY_AGREEMENT = 4
    KEY_CERT_SIGN = 5
    CRL_SIGN = 6
    ENCIPHER_ONLY = 7
    DECIPHER_ONLY = 8


@dataclass(frozen=True)
class KeyUsage:
    """The KeyUsage extension as a set of named bits."""

    bits: frozenset[KeyUsageBit]

    OID = KEY_USAGE

    @classmethod
    def ca_usage(cls) -> "KeyUsage":
        """The conventional root CA usage: certSign + cRLSign."""
        return cls(frozenset({KeyUsageBit.KEY_CERT_SIGN, KeyUsageBit.CRL_SIGN}))

    def to_extension(self, critical: bool = True) -> Extension:
        return Extension(self.OID, critical, encode_named_bit_string(int(b) for b in self.bits))

    @classmethod
    def from_extension(cls, extension: Extension) -> "KeyUsage":
        if extension.oid != cls.OID:
            raise X509Error(f"not a KeyUsage extension: {extension.oid}")
        positions = decode_der(extension.value).as_named_bits()
        return cls(frozenset(KeyUsageBit(p) for p in positions if p <= 8))

    def allows(self, bit: KeyUsageBit) -> bool:
        return bit in self.bits


@dataclass(frozen=True)
class ExtendedKeyUsage:
    """The EKU extension as an ordered tuple of purpose OIDs."""

    purposes: tuple[ObjectIdentifier, ...]

    OID = EXTENDED_KEY_USAGE

    def to_extension(self, critical: bool = False) -> Extension:
        return Extension(
            self.OID, critical, encode_sequence(*(encode_oid(p) for p in self.purposes))
        )

    @classmethod
    def from_extension(cls, extension: Extension) -> "ExtendedKeyUsage":
        if extension.oid != cls.OID:
            raise X509Error(f"not an ExtendedKeyUsage extension: {extension.oid}")
        purposes = tuple(child.as_oid() for child in decode_der(extension.value).children())
        return cls(purposes=purposes)


@dataclass(frozen=True)
class SubjectKeyIdentifier:
    """SKI: an opaque key-derived identifier (we use SHA-1 of the SPKI key bits)."""

    digest: bytes

    OID = SUBJECT_KEY_IDENTIFIER

    def to_extension(self) -> Extension:
        return Extension(self.OID, False, encode_octet_string(self.digest))

    @classmethod
    def from_extension(cls, extension: Extension) -> "SubjectKeyIdentifier":
        if extension.oid != cls.OID:
            raise X509Error(f"not a SubjectKeyIdentifier extension: {extension.oid}")
        return cls(digest=decode_der(extension.value).as_octet_string())


@dataclass(frozen=True)
class AuthorityKeyIdentifier:
    """AKI restricted to the keyIdentifier [0] choice."""

    key_identifier: bytes

    OID = AUTHORITY_KEY_IDENTIFIER

    def to_extension(self) -> Extension:
        inner = encode_context(0, self.key_identifier, constructed=False)
        return Extension(self.OID, False, encode_sequence(inner))

    @classmethod
    def from_extension(cls, extension: Extension) -> "AuthorityKeyIdentifier":
        if extension.oid != cls.OID:
            raise X509Error(f"not an AuthorityKeyIdentifier extension: {extension.oid}")
        reader = decode_der(extension.value).reader()
        key_id = reader.take_context(0)
        if key_id is None:
            raise X509Error("AKI without keyIdentifier is not supported")
        return cls(key_identifier=key_id.content)


@dataclass(frozen=True)
class SubjectAltName:
    """SAN restricted to dNSName [2] entries (all this library emits)."""

    dns_names: tuple[str, ...]

    OID = SUBJECT_ALT_NAME

    def to_extension(self, critical: bool = False) -> Extension:
        names = [
            encode_context(2, name.encode("ascii"), constructed=False)
            for name in self.dns_names
        ]
        return Extension(self.OID, critical, encode_sequence(*names))

    @classmethod
    def from_extension(cls, extension: Extension) -> "SubjectAltName":
        if extension.oid != cls.OID:
            raise X509Error(f"not a SubjectAltName extension: {extension.oid}")
        names = []
        for child in decode_der(extension.value).children():
            if child.is_context(2):
                names.append(child.content.decode("ascii"))
        return cls(dns_names=tuple(names))


@dataclass(frozen=True)
class CertificatePolicies:
    """Policy OIDs only (no qualifiers)."""

    policy_oids: tuple[ObjectIdentifier, ...]

    OID = CERTIFICATE_POLICIES

    def to_extension(self, critical: bool = False) -> Extension:
        infos = [encode_sequence(encode_oid(p)) for p in self.policy_oids]
        return Extension(self.OID, critical, encode_sequence(*infos))

    @classmethod
    def from_extension(cls, extension: Extension) -> "CertificatePolicies":
        if extension.oid != cls.OID:
            raise X509Error(f"not a CertificatePolicies extension: {extension.oid}")
        oids = []
        for info in decode_der(extension.value).children():
            reader = info.reader()
            oids.append(reader.next("policyIdentifier").as_oid())
        return cls(policy_oids=tuple(oids))


@dataclass(frozen=True)
class NameConstraints:
    """Permitted/excluded dNSName subtrees (the super-CA constraint tool)."""

    permitted_dns: tuple[str, ...] = field(default=())
    excluded_dns: tuple[str, ...] = field(default=())

    OID = NAME_CONSTRAINTS

    def to_extension(self, critical: bool = True) -> Extension:
        components = []
        if self.permitted_dns:
            components.append(encode_context(0, _encode_subtrees(self.permitted_dns)))
        if self.excluded_dns:
            components.append(encode_context(1, _encode_subtrees(self.excluded_dns)))
        return Extension(self.OID, critical, encode_sequence(*components))

    @classmethod
    def from_extension(cls, extension: Extension) -> "NameConstraints":
        if extension.oid != cls.OID:
            raise X509Error(f"not a NameConstraints extension: {extension.oid}")
        reader = decode_der(extension.value).reader()
        permitted: tuple[str, ...] = ()
        excluded: tuple[str, ...] = ()
        branch = reader.take_context(0)
        if branch is not None:
            permitted = _decode_subtrees(branch)
        branch = reader.take_context(1)
        if branch is not None:
            excluded = _decode_subtrees(branch)
        reader.finish()
        return cls(permitted_dns=permitted, excluded_dns=excluded)


def _encode_subtrees(names: tuple[str, ...]) -> bytes:
    """GeneralSubtrees content (sequence of GeneralSubtree with dNSName base)."""
    out = []
    for name in names:
        base = encode_context(2, name.encode("ascii"), constructed=False)
        out.append(encode_sequence(base))
    return b"".join(out)


def _decode_subtrees(branch: Element) -> tuple[str, ...]:
    names = []
    for subtree in branch.children():
        base = subtree.children()[0]
        if base.is_context(2):
            names.append(base.content.decode("ascii"))
    return tuple(names)


#: Decoders by OID, used by :meth:`Certificate.extension_value`.
TYPED_EXTENSIONS = {
    BasicConstraints.OID: BasicConstraints.from_extension,
    KeyUsage.OID: KeyUsage.from_extension,
    ExtendedKeyUsage.OID: ExtendedKeyUsage.from_extension,
    SubjectKeyIdentifier.OID: SubjectKeyIdentifier.from_extension,
    AuthorityKeyIdentifier.OID: AuthorityKeyIdentifier.from_extension,
    SubjectAltName.OID: SubjectAltName.from_extension,
    CertificatePolicies.OID: CertificatePolicies.from_extension,
    NameConstraints.OID: NameConstraints.from_extension,
}
