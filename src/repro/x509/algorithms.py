"""AlgorithmIdentifier and SubjectPublicKeyInfo encode/decode.

Bridges the crypto layer's key objects to their X.509 wire forms.  A
parsed key comes back as either :class:`~repro.crypto.rsa.RSAPublicKey`
or :class:`~repro.crypto.ec.ECPublicKey`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asn1 import (
    Element,
    decode as decode_der,
    encode_bit_string,
    encode_null,
    encode_oid,
    encode_sequence,
)
from repro.asn1.oid import EC_PUBLIC_KEY, RSA_ENCRYPTION, ObjectIdentifier
from repro.crypto.ec import CURVES_BY_OID, ECPublicKey
from repro.crypto.rsa import RSAPublicKey
from repro.errors import X509Error

PublicKey = RSAPublicKey | ECPublicKey


@dataclass(frozen=True)
class AlgorithmIdentifier:
    """SEQUENCE { algorithm OID, parameters ANY OPTIONAL }."""

    oid: ObjectIdentifier
    parameters: bytes | None = None  # already-encoded TLV, or None for absent

    @classmethod
    def rsa_signature(cls, oid: ObjectIdentifier) -> "AlgorithmIdentifier":
        """RSA signature algorithms carry an explicit NULL parameter."""
        return cls(oid=oid, parameters=encode_null())

    @classmethod
    def ecdsa_signature(cls, oid: ObjectIdentifier) -> "AlgorithmIdentifier":
        """ECDSA signature algorithms omit parameters."""
        return cls(oid=oid, parameters=None)

    def encode(self) -> bytes:
        components = [encode_oid(self.oid)]
        if self.parameters is not None:
            components.append(self.parameters)
        return encode_sequence(*components)

    @classmethod
    def decode(cls, element: Element) -> "AlgorithmIdentifier":
        reader = element.reader()
        oid = reader.next("algorithm oid").as_oid()
        params = reader.peek()
        if params is not None:
            reader.next()
            parameters = params.encoded
        else:
            parameters = None
        reader.finish()
        return cls(oid=oid, parameters=parameters)


def encode_spki(key: PublicKey) -> bytes:
    """Encode SubjectPublicKeyInfo for an RSA or EC public key."""
    if isinstance(key, RSAPublicKey):
        algorithm = AlgorithmIdentifier(RSA_ENCRYPTION, encode_null()).encode()
        return encode_sequence(algorithm, encode_bit_string(key.encode()))
    if isinstance(key, ECPublicKey):
        algorithm = AlgorithmIdentifier(EC_PUBLIC_KEY, encode_oid(key.curve.oid)).encode()
        return encode_sequence(algorithm, encode_bit_string(key.encode_point()))
    raise X509Error(f"unsupported public key type {type(key).__name__}")


def decode_spki(element: Element) -> PublicKey:
    """Decode SubjectPublicKeyInfo into a crypto-layer key object."""
    reader = element.reader()
    algorithm = AlgorithmIdentifier.decode(reader.next("algorithm"))
    key_bits = reader.next("subjectPublicKey")
    reader.finish()
    data, unused = key_bits.as_bit_string()
    if unused:
        raise X509Error("subjectPublicKey BIT STRING has unused bits")
    if algorithm.oid == RSA_ENCRYPTION:
        return RSAPublicKey.decode(data)
    if algorithm.oid == EC_PUBLIC_KEY:
        if algorithm.parameters is None:
            raise X509Error("EC key missing named-curve parameters")
        curve_oid = decode_der(algorithm.parameters).as_oid()
        curve = CURVES_BY_OID.get(curve_oid)
        if curve is None:
            raise X509Error(f"unsupported named curve {curve_oid}")
        return ECPublicKey.decode_point(curve, data)
    raise X509Error(f"unsupported public key algorithm {algorithm.oid}")


def key_type(key: PublicKey) -> str:
    """"rsa" or "ec" — used by hygiene metrics and reports."""
    if isinstance(key, RSAPublicKey):
        return "rsa"
    if isinstance(key, ECPublicKey):
        return "ec"
    raise X509Error(f"unsupported public key type {type(key).__name__}")
