"""X.501 distinguished names.

A :class:`Name` is an ordered sequence of (attribute-type OID, value)
pairs — we model each RDN as a single attribute, which covers every
certificate this library mints and the overwhelming majority of real
roots.  Names are hashable so they can key issuer/subject lookups in
chain building and in the NSS trust-object matching logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asn1 import (
    Element,
    encode_oid,
    encode_printable_string,
    encode_sequence,
    encode_set,
    encode_utf8_string,
)
from repro.asn1.oid import (
    COMMON_NAME,
    COUNTRY_NAME,
    LOCALITY_NAME,
    ORGANIZATION_NAME,
    ORGANIZATIONAL_UNIT,
    STATE_OR_PROVINCE,
    ObjectIdentifier,
)
from repro.errors import X509Error

_PRINTABLE = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 '()+,-./:=?")


@dataclass(frozen=True)
class NameAttribute:
    """One AttributeTypeAndValue."""

    oid: ObjectIdentifier
    value: str

    def encode(self) -> bytes:
        """Encode as a single-attribute RelativeDistinguishedName (SET)."""
        if set(self.value) <= _PRINTABLE:
            value_der = encode_printable_string(self.value)
        else:
            value_der = encode_utf8_string(self.value)
        atv = encode_sequence(encode_oid(self.oid), value_der)
        return encode_set(atv)

    def __str__(self) -> str:
        return f"{self.oid.name}={self.value}"


@dataclass(frozen=True)
class Name:
    """An ordered distinguished name."""

    attributes: tuple[NameAttribute, ...]

    @classmethod
    def build(
        cls,
        common_name: str | None = None,
        organization: str | None = None,
        organizational_unit: str | None = None,
        country: str | None = None,
        state: str | None = None,
        locality: str | None = None,
    ) -> "Name":
        """Convenience constructor in conventional C/ST/L/O/OU/CN order."""
        parts: list[NameAttribute] = []
        if country:
            parts.append(NameAttribute(COUNTRY_NAME, country))
        if state:
            parts.append(NameAttribute(STATE_OR_PROVINCE, state))
        if locality:
            parts.append(NameAttribute(LOCALITY_NAME, locality))
        if organization:
            parts.append(NameAttribute(ORGANIZATION_NAME, organization))
        if organizational_unit:
            parts.append(NameAttribute(ORGANIZATIONAL_UNIT, organizational_unit))
        if common_name:
            parts.append(NameAttribute(COMMON_NAME, common_name))
        if not parts:
            raise X509Error("a Name needs at least one attribute")
        return cls(attributes=tuple(parts))

    def encode(self) -> bytes:
        """Encode RDNSequence."""
        return encode_sequence(*(attr.encode() for attr in self.attributes))

    @classmethod
    def decode(cls, element: Element) -> "Name":
        """Decode an RDNSequence element."""
        attributes: list[NameAttribute] = []
        for rdn in element.children():
            for atv in rdn.children():
                reader = atv.reader()
                oid = reader.next("attribute type").as_oid()
                value = reader.next("attribute value").as_string()
                reader.finish()
                attributes.append(NameAttribute(oid, value))
        return cls(attributes=tuple(attributes))

    def get(self, oid: ObjectIdentifier) -> str | None:
        """First value of the given attribute type, or None."""
        for attr in self.attributes:
            if attr.oid == oid:
                return attr.value
        return None

    @property
    def common_name(self) -> str | None:
        return self.get(COMMON_NAME)

    @property
    def organization(self) -> str | None:
        return self.get(ORGANIZATION_NAME)

    @property
    def country(self) -> str | None:
        return self.get(COUNTRY_NAME)

    def rfc4514(self) -> str:
        """Render like ``CN=Example Root CA, O=Example, C=US``."""
        return ", ".join(str(attr) for attr in reversed(self.attributes))

    def __str__(self) -> str:
        return self.rfc4514()
