"""From-scratch X.509 certificate layer.

Parses and builds version-3 certificates with the extension set that
root stores and the paper's analyses exercise.  See
:class:`repro.x509.certificate.Certificate` for the parsed object and
:class:`repro.x509.builder.CertificateBuilder` for minting.
"""

from repro.x509.algorithms import AlgorithmIdentifier, PublicKey, decode_spki, encode_spki
from repro.x509.builder import CertificateBuilder, PrivateKey, key_identifier, signature_oid_for
from repro.x509.certificate import (
    Certificate,
    InternPoolStats,
    Validity,
    certificate_intern_stats,
    clear_certificate_intern_pool,
)
from repro.x509.extensions import (
    AuthorityKeyIdentifier,
    BasicConstraints,
    CertificatePolicies,
    ExtendedKeyUsage,
    Extension,
    KeyUsage,
    KeyUsageBit,
    NameConstraints,
    SubjectAltName,
    SubjectKeyIdentifier,
)
from repro.x509.name import Name, NameAttribute

__all__ = [
    "AlgorithmIdentifier",
    "AuthorityKeyIdentifier",
    "BasicConstraints",
    "Certificate",
    "CertificateBuilder",
    "CertificatePolicies",
    "ExtendedKeyUsage",
    "Extension",
    "InternPoolStats",
    "KeyUsage",
    "KeyUsageBit",
    "Name",
    "NameAttribute",
    "NameConstraints",
    "PrivateKey",
    "PublicKey",
    "SubjectAltName",
    "SubjectKeyIdentifier",
    "Validity",
    "certificate_intern_stats",
    "clear_certificate_intern_pool",
    "decode_spki",
    "encode_spki",
    "key_identifier",
    "signature_oid_for",
]
